//! # hypertap-workloads — the guest workloads of the paper's evaluation
//!
//! Four macro workloads drive the fault-injection campaign (paper
//! §VIII-A2):
//!
//! * [`hanoi`] — the "Tower of Hanoi" recursive program (CPU-bound,
//!   single task);
//! * [`make`] — serial (`make -j1`) and parallel (`make -j2`) compilation
//!   of a libxml-sized source tree (process creation + file I/O);
//! * [`http`] — an HTTP server fed by an external ApacheBench-style load
//!   generator (interrupt-driven network I/O).
//!
//! And a UnixBench-style micro-benchmark suite ([`unixbench`]) reproduces
//! the performance-overhead measurements of Fig. 7.
//!
//! Workloads are [`hypertap_guestos::program::UserProgram`]s: they act only
//! through the syscall ABI, so everything they do generates the same
//! architectural footprint (context switches, syscall gates, device I/O) a
//! real workload would.

pub mod hanoi;
pub mod http;
pub mod make;
pub mod unixbench;

use hypertap_guestos::program::{ScriptProgram, UserOp, UserProgram};
use hypertap_guestos::syscalls::Sysno;

/// A process that sleeps nearly forever (spam fodder, parents, parked
/// shells).
pub fn idle_program(sleep_ns: u64) -> Box<dyn UserProgram> {
    Box::new(ScriptProgram::new(
        vec![
            UserOp::sys(Sysno::Nanosleep, &[sleep_ns]),
            UserOp::sys(Sysno::Nanosleep, &[sleep_ns]),
            UserOp::sys(Sysno::Nanosleep, &[sleep_ns]),
        ],
        0,
    ))
}

/// A process that burns CPU in a loop forever (idle-spinner spam variant).
pub fn busy_program(chunk_ns: u64) -> Box<dyn UserProgram> {
    Box::new(hypertap_guestos::program::FnProgram(
        move |_v: &hypertap_guestos::program::UserView<'_>| UserOp::Compute(chunk_ns),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_guestos::program::UserView;
    use hypertap_hvsim::clock::SimTime;

    #[test]
    fn idle_sleeps_then_exits() {
        let mut p = idle_program(1_000);
        let v =
            UserView { last_ret: 0, now: SimTime::ZERO, pid: 2, uid: 1000, euid: 1000, procs: &[] };
        assert_eq!(p.next_op(&v), UserOp::sys(Sysno::Nanosleep, &[1_000]));
    }

    #[test]
    fn busy_never_stops() {
        let mut p = busy_program(500);
        let v =
            UserView { last_ret: 0, now: SimTime::ZERO, pid: 2, uid: 1000, euid: 1000, procs: &[] };
        for _ in 0..10 {
            assert_eq!(p.next_op(&v), UserOp::Compute(500));
        }
    }
}
