//! The `make -jN` workload: (parallel) compilation of a libxml-sized tree.
//!
//! A coordinator ("make") spawns one compile job per source file, keeping at
//! most `jobs` in flight, and reaps them with `waitpid` — exactly the
//! process-creation + file-I/O mix of a real build. Each compile job
//! ("cc1") opens its source, reads it in chunks, computes, writes the object
//! file, and exits. When the build finishes the coordinator starts a fresh
//! one, so the workload runs for the whole experiment.

use hypertap_guestos::kernel::Kernel;
use hypertap_guestos::program::{ProgId, UserOp, UserProgram, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::snap::{SnapReader, SnapWriter};

/// One compile job: open → read×4 → compute → write → close → exit.
#[derive(Debug, Default)]
pub struct CompileJob {
    stage: u32,
}

impl CompileJob {
    /// A fresh job.
    pub fn new() -> Self {
        CompileJob::default()
    }
}

impl UserProgram for CompileJob {
    fn next_op(&mut self, view: &UserView<'_>) -> UserOp {
        self.stage += 1;
        match self.stage {
            1 => UserOp::sys(Sysno::Open, &[7]),
            2..=5 => UserOp::sys(Sysno::Read, &[view.last_ret, 8192]),
            6 => UserOp::Compute(18_000_000), // ~18 ms of cc1 work
            7 => UserOp::sys(Sysno::Write, &[0, 16384]),
            8 => UserOp::sys(Sysno::Close, &[0]),
            _ => UserOp::Exit(0),
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut w = SnapWriter::new();
        w.varint(self.stage as u64);
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = SnapReader::new(bytes);
        let stage = r.varint().map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())?;
        self.stage = u32::try_from(stage).map_err(|_| "cc1 stage overflow".to_string())?;
        Ok(())
    }
}

/// The `make` coordinator.
#[derive(Debug)]
pub struct Make {
    job_prog: u64,
    jobs: u64,
    files_per_build: u64,
    spawned: u64,
    reaped: u64,
    in_flight: u64,
    builds_completed: u64,
}

impl Make {
    /// A coordinator running `jobs` compile jobs in parallel over
    /// `files_per_build` files. `job_prog` is the registered [`CompileJob`]
    /// program id.
    pub fn new(job_prog: ProgId, jobs: u64, files_per_build: u64) -> Self {
        Make {
            job_prog: job_prog.0,
            jobs,
            files_per_build,
            spawned: 0,
            reaped: 0,
            in_flight: 0,
            builds_completed: 0,
        }
    }
}

impl UserProgram for Make {
    fn next_op(&mut self, _view: &UserView<'_>) -> UserOp {
        if self.reaped >= self.files_per_build {
            // Build done; start over.
            self.builds_completed += 1;
            self.spawned = 0;
            self.reaped = 0;
            return UserOp::Emit("make-build".into(), format!("{}", self.builds_completed));
        }
        if self.spawned < self.files_per_build && self.in_flight < self.jobs {
            self.spawned += 1;
            self.in_flight += 1;
            return UserOp::sys(Sysno::Spawn, &[self.job_prog, u64::MAX]);
        }
        // All slots busy (or all files spawned): wait for a child.
        self.reaped += 1;
        self.in_flight = self.in_flight.saturating_sub(1);
        UserOp::sys(Sysno::Waitpid, &[])
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // job_prog / jobs / files_per_build are recipe state.
        let mut w = SnapWriter::new();
        w.varint(self.spawned);
        w.varint(self.reaped);
        w.varint(self.in_flight);
        w.varint(self.builds_completed);
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = SnapReader::new(bytes);
        let spawned = r.varint().map_err(|e| e.to_string())?;
        let reaped = r.varint().map_err(|e| e.to_string())?;
        let in_flight = r.varint().map_err(|e| e.to_string())?;
        let builds_completed = r.varint().map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())?;
        if spawned > self.files_per_build || reaped > self.files_per_build {
            return Err("make progress exceeds files_per_build".to_string());
        }
        self.spawned = spawned;
        self.reaped = reaped;
        self.in_flight = in_flight;
        self.builds_completed = builds_completed;
        Ok(())
    }
}

/// Registers `make -jN` into a kernel and returns the init program id.
pub fn install(kernel: &mut Kernel, jobs: u64, files_per_build: u64) -> ProgId {
    let job = kernel.register_program("cc1", Box::new(|| Box::new(CompileJob::new())));
    let job_raw = job.0;
    kernel.register_program(
        if jobs > 1 { "make-j2" } else { "make-j1" },
        Box::new(move || Box::new(Make::new(ProgId(job_raw), jobs, files_per_build))),
    )
}

/// The generic "run program X as a user child" init program: spawns the
/// workload under uid 1000 on its first step, then idles reaping children.
/// Serializable, so a snapshot can capture a guest mid-campaign.
#[derive(Debug)]
pub struct SpawnerInit {
    workload: u64,
    started: bool,
}

impl SpawnerInit {
    /// An init that spawns `workload` once and then reaps.
    pub fn new(workload: ProgId) -> Self {
        SpawnerInit { workload: workload.0, started: false }
    }
}

impl UserProgram for SpawnerInit {
    fn next_op(&mut self, _view: &UserView<'_>) -> UserOp {
        if !self.started {
            self.started = true;
            UserOp::sys(Sysno::Spawn, &[self.workload, 1000])
        } else {
            UserOp::sys(Sysno::Waitpid, &[])
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut w = SnapWriter::new();
        w.boolean(self.started);
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = SnapReader::new(bytes);
        self.started = r.boolean().map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())
    }
}

/// A generic "run program X as a user child" init: spawns the workload under
/// uid 1000 and then idles (reaping as needed). Used by every experiment
/// that wants init to stay out of the way.
pub fn install_init_running(kernel: &mut Kernel, workload: ProgId) -> ProgId {
    let w = workload.0;
    kernel.register_program("init", Box::new(move || Box::new(SpawnerInit::new(ProgId(w)))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_hvsim::clock::SimTime;

    fn view(ret: u64) -> UserView<'static> {
        UserView { last_ret: ret, now: SimTime::ZERO, pid: 2, uid: 1000, euid: 1000, procs: &[] }
    }

    #[test]
    fn compile_job_sequence() {
        let mut j = CompileJob::new();
        assert_eq!(j.next_op(&view(0)), UserOp::sys(Sysno::Open, &[7]));
        assert_eq!(j.next_op(&view(3)), UserOp::sys(Sysno::Read, &[3, 8192]));
        for _ in 0..3 {
            assert!(matches!(j.next_op(&view(3)), UserOp::Syscall(Sysno::Read, _)));
        }
        assert!(matches!(j.next_op(&view(0)), UserOp::Compute(_)));
        assert!(matches!(j.next_op(&view(0)), UserOp::Syscall(Sysno::Write, _)));
        assert!(matches!(j.next_op(&view(0)), UserOp::Syscall(Sysno::Close, _)));
        assert_eq!(j.next_op(&view(0)), UserOp::Exit(0));
    }

    #[test]
    fn serial_make_alternates_spawn_and_wait() {
        let mut m = Make::new(ProgId(5), 1, 3);
        assert_eq!(m.next_op(&view(0)), UserOp::sys(Sysno::Spawn, &[5, u64::MAX]));
        assert_eq!(m.next_op(&view(10)), UserOp::sys(Sysno::Waitpid, &[]));
        assert_eq!(m.next_op(&view(10)), UserOp::sys(Sysno::Spawn, &[5, u64::MAX]));
        assert_eq!(m.next_op(&view(11)), UserOp::sys(Sysno::Waitpid, &[]));
        assert_eq!(m.next_op(&view(11)), UserOp::sys(Sysno::Spawn, &[5, u64::MAX]));
        assert_eq!(m.next_op(&view(12)), UserOp::sys(Sysno::Waitpid, &[]));
        // Build complete.
        assert!(matches!(m.next_op(&view(12)), UserOp::Emit(tag, _) if tag == "make-build"));
        // And the next build starts.
        assert!(matches!(m.next_op(&view(0)), UserOp::Syscall(Sysno::Spawn, _)));
    }

    #[test]
    fn parallel_make_keeps_two_in_flight() {
        let mut m = Make::new(ProgId(5), 2, 4);
        assert!(matches!(m.next_op(&view(0)), UserOp::Syscall(Sysno::Spawn, _)));
        assert!(matches!(m.next_op(&view(0)), UserOp::Syscall(Sysno::Spawn, _)));
        assert!(matches!(m.next_op(&view(0)), UserOp::Syscall(Sysno::Waitpid, _)));
        assert!(matches!(m.next_op(&view(0)), UserOp::Syscall(Sysno::Spawn, _)));
    }
}
