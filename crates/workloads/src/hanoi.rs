//! The "Tower of Hanoi" workload: a recursive, CPU-bound program.
//!
//! The classic single-task compute workload from the paper's fault-injection
//! campaign. Each simulated "move" costs a small compute burst; every 256th
//! move writes a progress line (a little kernel/file activity, as a real
//! program logging to stdout would generate). When a tower completes the
//! program starts over, so the workload runs for the whole experiment.

use hypertap_guestos::program::{UserOp, UserProgram, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::snap::{SnapReader, SnapWriter};

/// Tower of Hanoi as a user program.
#[derive(Debug)]
pub struct Hanoi {
    /// Number of disks in the tower.
    pub disks: u32,
    per_move_ns: u64,
    moves_done: u64,
    total_moves: u64,
    towers_completed: u64,
    emit_done: bool,
}

impl Hanoi {
    /// A tower of `disks` disks, costing `per_move_ns` per move.
    pub fn new(disks: u32, per_move_ns: u64) -> Self {
        Hanoi {
            disks,
            per_move_ns,
            moves_done: 0,
            total_moves: (1u64 << disks) - 1,
            towers_completed: 0,
            emit_done: false,
        }
    }

    /// The paper-scale default: 2^18 - 1 moves per tower at ~1.5 µs each
    /// (~0.4 s of guest CPU per tower).
    pub fn paper_default() -> Self {
        Hanoi::new(18, 1_500)
    }
}

impl UserProgram for Hanoi {
    fn next_op(&mut self, _view: &UserView<'_>) -> UserOp {
        if self.moves_done >= self.total_moves {
            self.moves_done = 0;
            self.towers_completed += 1;
            self.emit_done = true;
        }
        if self.emit_done {
            self.emit_done = false;
            return UserOp::Emit("hanoi-tower".into(), format!("{}", self.towers_completed));
        }
        self.moves_done += 1;
        if self.moves_done.is_multiple_of(256) {
            // Progress logging: a small write.
            UserOp::sys(Sysno::Write, &[1, 64])
        } else {
            UserOp::Compute(self.per_move_ns)
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // disks / per_move_ns / total_moves are recipe state.
        let mut w = SnapWriter::new();
        w.varint(self.moves_done);
        w.varint(self.towers_completed);
        w.boolean(self.emit_done);
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = SnapReader::new(bytes);
        let moves_done = r.varint().map_err(|e| e.to_string())?;
        let towers_completed = r.varint().map_err(|e| e.to_string())?;
        let emit_done = r.boolean().map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())?;
        if moves_done > self.total_moves {
            return Err(format!(
                "hanoi moves_done {moves_done} exceeds tower size {}",
                self.total_moves
            ));
        }
        self.moves_done = moves_done;
        self.towers_completed = towers_completed;
        self.emit_done = emit_done;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_hvsim::clock::SimTime;

    fn view() -> UserView<'static> {
        UserView { last_ret: 0, now: SimTime::ZERO, pid: 2, uid: 1000, euid: 1000, procs: &[] }
    }

    #[test]
    fn emits_after_each_tower_and_restarts() {
        let mut h = Hanoi::new(3, 100); // 7 moves
        let mut ops = Vec::new();
        for _ in 0..17 {
            ops.push(h.next_op(&view()));
        }
        let emits = ops
            .iter()
            .filter(|o| matches!(o, UserOp::Emit(tag, _) if tag == "hanoi-tower"))
            .count();
        assert_eq!(emits, 2, "7 moves + emit, twice, in 16 ops");
    }

    #[test]
    fn mostly_compute_with_periodic_writes() {
        let mut h = Hanoi::new(10, 100); // 1023 moves
        let mut writes = 0;
        let mut computes = 0;
        for _ in 0..1023 {
            match h.next_op(&view()) {
                UserOp::Compute(_) => computes += 1,
                UserOp::Syscall(Sysno::Write, _) => writes += 1,
                _ => {}
            }
        }
        assert_eq!(writes, 3, "every 256th move writes");
        assert_eq!(computes, 1020);
    }
}
