//! Regression tests for the workload drivers: every UnixBench-style
//! benchmark must run to completion on a bare (unmonitored) stack, and the
//! macro workloads must keep making progress indefinitely.

use hypertap_guestos::kernel::{Kernel, KernelConfig};
use hypertap_guestos::program::{FnProgram, UserOp, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::exit::{ExitAction, VmExit};
use hypertap_hvsim::machine::{Hypervisor, Machine, RunExit, VmConfig, VmState};
use hypertap_workloads::unixbench::{self, Ubench};

struct NoHv;
impl Hypervisor for NoHv {
    fn handle_exit(&mut self, _vm: &mut VmState, _exit: &VmExit) -> ExitAction {
        ExitAction::Resume
    }
}

fn run_driver(bench: Ubench) -> SimTime {
    let mut m = Machine::new(VmConfig::new(2, 512 << 20), NoHv);
    let mut k = Kernel::new(KernelConfig::new(2));
    let driver = unixbench::install(&mut k, bench);
    let driver_raw = driver.0;
    let init = k.register_program(
        "init",
        Box::new(move || {
            let mut started = false;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                if !started {
                    started = true;
                    UserOp::sys(Sysno::Spawn, &[driver_raw, 0])
                } else {
                    UserOp::sys(Sysno::Waitpid, &[])
                }
            }))
        }),
    );
    k.set_init_program(init);
    let exit = m.run_until(&mut k, SimTime::from_secs(600));
    assert_eq!(exit, RunExit::Shutdown, "{bench} must power off when done");
    m.vm().now()
}

/// Every suite member completes, and in a sane amount of simulated time.
#[test]
fn all_unixbench_drivers_complete() {
    for bench in Ubench::suite() {
        let t = run_driver(bench);
        assert!(t > SimTime::from_millis(5), "{bench} finished suspiciously fast: {t}");
        assert!(t < SimTime::from_secs(30), "{bench} took too long: {t}");
    }
}

/// The macro workloads (hanoi / make / http) loop forever, emitting
/// progress markers — the property the fault-injection campaign relies on.
type ProgInstaller = Box<dyn Fn(&mut Kernel) -> hypertap_guestos::program::ProgId>;

#[test]
fn macro_workloads_make_continuous_progress() {
    let cases: Vec<(&str, ProgInstaller)> = vec![
        (
            "hanoi-tower",
            Box::new(|k: &mut Kernel| {
                k.register_program(
                    "hanoi",
                    Box::new(|| Box::new(hypertap_workloads::hanoi::Hanoi::new(12, 1_500))),
                )
            }),
        ),
        ("make-build", Box::new(|k: &mut Kernel| hypertap_workloads::make::install(k, 2, 6))),
    ];
    for (tag, install) in cases {
        let mut m = Machine::new(VmConfig::new(2, 512 << 20), NoHv);
        let mut k = Kernel::new(KernelConfig::new(2));
        let w = install(&mut k);
        let init = hypertap_workloads::make::install_init_running(&mut k, w);
        k.set_init_program(init);
        m.run_until(&mut k, SimTime::from_secs(5));
        let marks = k.drain_all_mailboxes().iter().filter(|(_, e)| e.tag == tag).count();
        assert!(marks >= 2, "{tag}: expected repeated progress, got {marks}");
    }
}
