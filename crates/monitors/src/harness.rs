//! Assembly harness: a monitored VM in a few lines.
//!
//! [`TapVmBuilder`] wires together the standard stack: a [`Machine`] whose
//! hypervisor is the HyperTap-enabled [`Kvm`] with the full interception
//! engine set installed, a simulated guest [`Kernel`], a host timer driving
//! the Event Multiplexer's periodic auditors, and whichever monitors the
//! caller selects.

use crate::goshd::{Goshd, GoshdConfig};
use crate::hrkd::Hrkd;
use crate::ninja::hninja::HNinja;
use crate::ninja::htninja::HtNinja;
use crate::ninja::rules::NinjaRules;
use hypertap_core::intercept::{
    FastSyscallEngine, IntSyscallEngine, IoEngine, ProcessSwitchEngine, ThreadSwitchEngine,
    TssIntegrityEngine,
};
use hypertap_core::kvm::Kvm;
use hypertap_core::prelude::{Finding, VmId};
use hypertap_guestos::kernel::{Kernel, KernelConfig};
use hypertap_guestos::layout;
use hypertap_hvsim::clock::{Duration, SimTime};
use hypertap_hvsim::machine::{Machine, RunExit, VmConfig};

/// Which interception engines to install.
#[derive(Debug, Clone, Copy)]
pub struct EngineSelection {
    /// CR3-load interception (process switches).
    pub process_switch: bool,
    /// TSS write-protection (thread switches).
    pub thread_switch: bool,
    /// TSS-relocation integrity checking.
    pub tss_integrity: bool,
    /// Exception-bitmap syscall interception (`INT 0x80`).
    pub int_syscall: bool,
    /// WRMSR + execute-protection syscall interception (`SYSENTER`).
    pub fast_syscall: bool,
    /// I/O access decoding.
    pub io: bool,
    /// Fine-grained memory watching (§VI-D); frames are watched explicitly
    /// at runtime (e.g. by [`crate::integrity::KernelIntegrity`]).
    pub fine_grained: bool,
}

impl EngineSelection {
    /// Everything on (the default).
    pub fn all() -> Self {
        EngineSelection {
            process_switch: true,
            thread_switch: true,
            tss_integrity: true,
            int_syscall: true,
            fast_syscall: true,
            io: true,
            fine_grained: true,
        }
    }

    /// Only what context-switch monitors (GOSHD, HRKD) need.
    pub fn context_switch_only() -> Self {
        EngineSelection {
            process_switch: true,
            thread_switch: true,
            tss_integrity: false,
            int_syscall: false,
            fast_syscall: false,
            io: false,
            fine_grained: false,
        }
    }

    /// Nothing at all (unmonitored baseline for overhead measurements).
    pub fn none() -> Self {
        EngineSelection {
            process_switch: false,
            thread_switch: false,
            tss_integrity: false,
            int_syscall: false,
            fast_syscall: false,
            io: false,
            fine_grained: false,
        }
    }
}

impl Default for EngineSelection {
    fn default() -> Self {
        EngineSelection::all()
    }
}

/// Builder for a monitored VM.
pub struct TapVmBuilder {
    vcpus: usize,
    memory: u64,
    kernel_cfg: Option<KernelConfig>,
    engines: EngineSelection,
    em_tick: Duration,
    goshd: Option<GoshdConfig>,
    hrkd: bool,
    hrkd_period: Option<Duration>,
    htninja: Option<NinjaRules>,
    htninja_pause: bool,
    hninja: Option<(NinjaRules, Duration)>,
    tlb: Option<bool>,
    metrics: bool,
    flight: Option<bool>,
    flight_capacity: Option<usize>,
    batched: Option<bool>,
    vm_id: VmId,
}

impl TapVmBuilder {
    /// Starts from the paper's default guest: 2 vCPUs, 1 GiB RAM,
    /// non-preemptible kernel, all engines installed, no monitors.
    pub fn new() -> Self {
        TapVmBuilder {
            vcpus: 2,
            memory: 1 << 30,
            kernel_cfg: None,
            engines: EngineSelection::all(),
            em_tick: Duration::from_millis(1),
            goshd: None,
            hrkd: false,
            hrkd_period: None,
            htninja: None,
            htninja_pause: false,
            hninja: None,
            tlb: None,
            metrics: false,
            flight: None,
            flight_capacity: None,
            batched: None,
            vm_id: VmId(0),
        }
    }

    /// Tags the hypervisor with an explicit VM id — stamped into every
    /// forwarded event (and therefore every recorded trace), which is how
    /// fleet members stay distinguishable after aggregation.
    pub fn vm_id(mut self, id: VmId) -> Self {
        self.vm_id = id;
        self
    }

    /// Sets the vCPU count.
    pub fn vcpus(mut self, n: usize) -> Self {
        self.vcpus = n;
        self
    }

    /// Sets guest-physical memory size.
    pub fn memory(mut self, bytes: u64) -> Self {
        self.memory = bytes;
        self
    }

    /// Supplies a custom kernel configuration (vCPU count is overridden to
    /// match the machine's).
    pub fn kernel(mut self, cfg: KernelConfig) -> Self {
        self.kernel_cfg = Some(cfg);
        self
    }

    /// Chooses which interception engines to install.
    pub fn engines(mut self, sel: EngineSelection) -> Self {
        self.engines = sel;
        self
    }

    /// Sets the Event Multiplexer's host-timer period (drives `on_tick`).
    pub fn em_tick(mut self, period: Duration) -> Self {
        self.em_tick = period;
        self
    }

    /// Registers GOSHD.
    pub fn goshd(mut self, cfg: GoshdConfig) -> Self {
        self.goshd = Some(cfg);
        self
    }

    /// Registers HRKD (manual cross-validation; see
    /// [`TapVmBuilder::hrkd_periodic`] for automatic checks).
    pub fn hrkd(mut self) -> Self {
        self.hrkd = true;
        self
    }

    /// Registers HRKD with periodic automatic VMI cross-validation.
    pub fn hrkd_periodic(mut self, period: Duration) -> Self {
        self.hrkd = true;
        self.hrkd_period = Some(period);
        self
    }

    /// Registers HT-Ninja.
    pub fn htninja(mut self, rules: NinjaRules) -> Self {
        self.htninja = Some(rules);
        self
    }

    /// Registers HT-Ninja with pause-on-detect enforcement.
    pub fn htninja_pausing(mut self, rules: NinjaRules) -> Self {
        self.htninja = Some(rules);
        self.htninja_pause = true;
        self
    }

    /// Registers H-Ninja (hypervisor-level passive VMI poller).
    pub fn hninja(mut self, rules: NinjaRules, interval: Duration) -> Self {
        self.hninja = Some((rules, interval));
        self
    }

    /// Enables or disables the simulator's per-vCPU software TLB. When not
    /// called, the TLB is on unless the `HYPERTAP_NO_TLB` environment
    /// variable is set — the knob the determinism checks use to diff
    /// experiment output with and without translation caching.
    pub fn tlb(mut self, enabled: bool) -> Self {
        self.tlb = Some(enabled);
        self
    }

    /// Enables host-side metrics instrumentation (pipeline spans, EM
    /// dispatch-latency histogram). Off by default; purely host-side either
    /// way — the metrics-on/off replay conformance pair proves the
    /// simulated event stream is byte-identical.
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Enables or disables the EM's flight recorder (on by default).
    /// Retention is purely host-side: event ordinals advance identically
    /// either way, which the flight-on/off replay conformance pair proves.
    pub fn flight(mut self, enabled: bool) -> Self {
        self.flight = Some(enabled);
        self
    }

    /// Sets the flight-recorder ring capacity (records retained).
    pub fn flight_capacity(mut self, records: usize) -> Self {
        self.flight_capacity = Some(records);
        self
    }

    /// Selects the Event Forwarder's batched ring path or the per-event
    /// fallback. When not called, batching is on unless the
    /// `HYPERTAP_NO_BATCH` environment variable is set — the knob the
    /// `BATCHED_OFF` conformance pair uses to prove both paths produce
    /// bit-identical streams.
    pub fn batched(mut self, enabled: bool) -> Self {
        self.batched = Some(enabled);
        self
    }

    /// Builds the monitored VM (guest not yet booted; it boots on the first
    /// step of [`TapVm::run_for`]).
    pub fn build(self) -> TapVm {
        let tlb_enabled = self.tlb.unwrap_or_else(|| std::env::var_os("HYPERTAP_NO_TLB").is_none());
        let mut machine = Machine::new(
            VmConfig::new(self.vcpus, self.memory).with_tlb(tlb_enabled),
            Kvm::with_vm_id(self.vm_id),
        );
        {
            let (vm, kvm) = machine.parts_mut();
            kvm.set_metrics_enabled(self.metrics);
            kvm.set_batched(
                self.batched.unwrap_or_else(|| std::env::var_os("HYPERTAP_NO_BATCH").is_none()),
            );
            if let Some(on) = self.flight {
                kvm.em.flight_mut().set_enabled(on);
            }
            if let Some(cap) = self.flight_capacity {
                kvm.em.flight_mut().set_capacity(cap);
            }
            if self.engines.process_switch {
                kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
            }
            if self.engines.thread_switch {
                kvm.install(vm, Box::new(ThreadSwitchEngine::new()));
            }
            if self.engines.tss_integrity {
                kvm.install(vm, Box::new(TssIntegrityEngine::new()));
            }
            if self.engines.int_syscall {
                kvm.install(vm, Box::new(IntSyscallEngine::new()));
            }
            if self.engines.fast_syscall {
                kvm.install(vm, Box::new(FastSyscallEngine::new()));
            }
            if self.engines.io {
                kvm.install(vm, Box::new(IoEngine::new()));
            }
            if self.engines.fine_grained {
                kvm.install(vm, Box::new(hypertap_core::intercept::FineGrainedEngine::new()));
            }
            vm.register_host_timer(self.em_tick);

            let profile = layout::os_profile();
            if let Some(cfg) = self.goshd {
                kvm.em.register(Box::new(Goshd::new(self.vcpus, cfg)));
            }
            if self.hrkd {
                let mut hrkd = Hrkd::new(profile.clone(), layout::KERNEL_TEXT);
                if let Some(p) = self.hrkd_period {
                    hrkd = hrkd.with_periodic_check(p);
                }
                kvm.em.register(Box::new(hrkd));
            }
            if let Some(rules) = self.htninja {
                let mut n = HtNinja::new(profile.clone(), rules, self.vcpus);
                if self.htninja_pause {
                    n = n.with_pause_on_detect();
                }
                kvm.em.register(Box::new(n));
            }
            if let Some((rules, interval)) = self.hninja {
                kvm.em.register(Box::new(HNinja::new(profile, rules, interval)));
            }
        }
        let kcfg = match self.kernel_cfg {
            Some(mut c) => {
                c.vcpus = self.vcpus;
                c
            }
            None => KernelConfig::new(self.vcpus),
        };
        TapVm { machine, kernel: Kernel::new(kcfg) }
    }
}

impl Default for TapVmBuilder {
    fn default() -> Self {
        TapVmBuilder::new()
    }
}

/// A monitored VM: machine (with the HyperTap hypervisor) plus guest kernel.
pub struct TapVm {
    /// The simulated machine; its hypervisor is the [`Kvm`] model.
    pub machine: Machine<Kvm>,
    /// The guest kernel (configure programs/modules before running).
    pub kernel: Kernel,
}

impl TapVm {
    /// Starts a builder.
    pub fn builder() -> TapVmBuilder {
        TapVmBuilder::new()
    }

    /// Runs the guest for `d` more simulated time (from the current clock).
    ///
    /// `d == Duration::ZERO` is a documented no-op: the run loop is never
    /// entered, the guest does not step (so a fresh VM does **not** boot),
    /// and [`RunExit::Deadline`] is returned immediately. Callers that
    /// compute durations should treat a zero result as a bug in their
    /// arithmetic — a debug assertion flags it so the mistake surfaces in
    /// tests instead of as silently-skipped boot assertions downstream.
    pub fn run_for(&mut self, d: Duration) -> RunExit {
        debug_assert!(
            d > Duration::ZERO,
            "TapVm::run_for(Duration::ZERO) is a no-op: the guest cannot step and a \
             fresh VM will not boot; pass a positive duration"
        );
        if d == Duration::ZERO {
            return RunExit::Deadline;
        }
        let deadline = self.machine.vm().now() + d;
        self.machine.run_until(&mut self.kernel, deadline)
    }

    /// Runs the guest until an absolute simulated time.
    pub fn run_until(&mut self, deadline: SimTime) -> RunExit {
        self.machine.run_until(&mut self.kernel, deadline)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.machine.vm().now()
    }

    /// Drains every finding the monitors produced so far.
    pub fn drain_findings(&mut self) -> Vec<Finding> {
        self.machine.hypervisor_mut().em.drain_findings()
    }

    /// Convenience accessor for a registered auditor by type.
    pub fn auditor<A: hypertap_core::audit::Auditor + 'static>(&self) -> Option<&A> {
        self.machine.hypervisor().em.auditor::<A>()
    }

    /// Mutable accessor for a registered auditor by type.
    pub fn auditor_mut<A: hypertap_core::audit::Auditor + 'static>(&mut self) -> Option<&mut A> {
        self.machine.hypervisor_mut().em.auditor_mut::<A>()
    }

    /// Serializes the flight recorder into a versioned `.htfr` dump —
    /// the payload written to disk when something in the pipeline fails.
    pub fn flight_dump(&self, reason: &str) -> Vec<u8> {
        self.machine.hypervisor().em.flight().dump_bytes(reason)
    }

    /// Takes a full metrics snapshot of the monitored VM: simulator counters
    /// (exit reasons, simulated exit cost, TLB), the Event Forwarder and
    /// pipeline spans, and every EM delivery/findings counter.
    pub fn metrics_snapshot(&self) -> hypertap_core::metrics::MetricsRegistry {
        let mut reg = hypertap_core::metrics::MetricsRegistry::new();
        hypertap_core::metrics::collect_vm(&mut reg, self.machine.vm());
        self.machine.hypervisor().collect_metrics(&mut reg);
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_build() {
        let vm = TapVm::builder().build();
        assert_eq!(vm.machine.vm().vcpu_count(), 2);
        assert_eq!(vm.machine.hypervisor().engine_names().len(), 7);
    }

    #[test]
    fn engine_selection_respected() {
        let vm = TapVm::builder().engines(EngineSelection::context_switch_only()).build();
        let names = vm.machine.hypervisor().engine_names();
        assert!(names.contains(&"process-switch"));
        assert!(names.contains(&"thread-switch"));
        assert!(!names.contains(&"fast-syscall"));
        let none = TapVm::builder().engines(EngineSelection::none()).build();
        assert!(none.machine.hypervisor().engine_names().is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "run_for(Duration::ZERO) is a no-op")]
    fn run_for_zero_is_flagged_in_debug() {
        let mut vm = TapVm::builder().build();
        vm.run_for(Duration::ZERO);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn run_for_zero_is_a_no_op_in_release() {
        let mut vm = TapVm::builder().build();
        let before = vm.now();
        assert_eq!(vm.run_for(Duration::ZERO), RunExit::Deadline);
        assert_eq!(vm.now(), before, "zero duration must not advance time");
        assert!(!vm.kernel.is_booted(), "zero duration must not step (or boot) the guest");
    }

    #[test]
    fn run_for_positive_duration_boots_and_advances() {
        let mut vm = TapVm::builder().build();
        vm.run_for(Duration::from_millis(50));
        assert!(vm.kernel.is_booted());
        assert!(vm.now() >= SimTime::from_millis(50));
    }

    #[test]
    fn flight_knobs_configure_the_recorder() {
        let on = TapVm::builder().flight_capacity(16).build();
        let flight = &on.machine.hypervisor().em;
        assert!(flight.flight().is_enabled(), "flight recorder is on by default");
        assert_eq!(flight.flight().capacity(), 16);

        let mut off = TapVm::builder().flight(false).build();
        assert!(!off.machine.hypervisor().em.flight().is_enabled());
        off.run_for(Duration::from_millis(10));
        assert!(off.machine.hypervisor().em.flight().is_empty(), "disabled ring retains nothing");
        // Ordinals still advance so provenance is unchanged by the knob.
        assert!(off.machine.hypervisor().em.flight().next_ref().0 > 0);
        let dump = off.flight_dump("smoke");
        assert!(hypertap_core::prelude::FlightDump::decode(&dump).is_ok());
    }

    #[test]
    fn batched_knob_reaches_the_forwarder() {
        let default = TapVm::builder().build();
        assert!(default.machine.hypervisor().batched(), "batching is on by default");
        let mut off = TapVm::builder().batched(false).build();
        assert!(!off.machine.hypervisor().batched());
        off.run_for(Duration::from_millis(10));
        assert_eq!(
            off.machine.hypervisor().pipeline_stats(),
            hypertap_core::prelude::PipelineStats::default(),
            "fallback path must not touch the ring"
        );
        let mut on = TapVm::builder().batched(true).build();
        on.run_for(Duration::from_millis(10));
        let stats = on.machine.hypervisor().pipeline_stats();
        assert!(stats.batches > 0 && stats.events > 0);
    }

    #[test]
    fn monitors_register() {
        let vm = TapVm::builder()
            .goshd(GoshdConfig::paper_default())
            .hrkd()
            .htninja(NinjaRules::new())
            .hninja(NinjaRules::new(), Duration::from_millis(4))
            .build();
        assert!(vm.auditor::<Goshd>().is_some());
        assert!(vm.auditor::<Hrkd>().is_some());
        assert!(vm.auditor::<HtNinja>().is_some());
        assert!(vm.auditor::<HNinja>().is_some());
    }

    #[test]
    fn metrics_snapshot_covers_every_layer() {
        let mut vm =
            TapVm::builder().metrics(true).goshd(GoshdConfig::paper_default()).hrkd().build();
        vm.run_for(Duration::from_millis(50));
        let reg = vm.metrics_snapshot();
        // Simulator layer: exit reasons + always-on TLB gauges.
        assert!(reg
            .entries()
            .iter()
            .any(|e| e.name == "hypertap_vm_exits_total" && e.value.as_counter().unwrap_or(0) > 0));
        assert!(reg.find("hypertap_tlb_hit_rate", &[]).is_some());
        // Event Forwarder + pipeline spans.
        assert!(reg.find("hypertap_ef_forwarded_events_total", &[]).is_some());
        assert!(reg.find("hypertap_pipeline_ns", &[("stage", "decode")]).is_some());
        // EM layer, per-auditor series.
        assert!(reg.find("hypertap_em_delivered_total", &[("auditor", "goshd")]).is_some());
        // The snapshot survives both exporters.
        let back = hypertap_core::metrics::MetricsRegistry::from_json(&reg.to_json()).unwrap();
        assert_eq!(back, reg);
        assert!(reg.to_prometheus().contains("# TYPE hypertap_tlb_hits_total counter"));
    }
}
