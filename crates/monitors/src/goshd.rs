//! Guest OS Hang Detection (GOSHD) — paper §VII-A.
//!
//! The guest OS is *hung* on a vCPU when it ceases to schedule tasks there.
//! GOSHD subscribes to HyperTap's context-switch events (process switches
//! from CR3 loads, thread switches from `TSS.RSP0` writes — the
//! `CR_ACCESS`/`EPT_VIOLATION` mechanisms guarantee no switch is missed) and
//! declares a vCPU hung when no switch arrives for a threshold period. The
//! paper sets the threshold to **twice the profiled maximum scheduling time
//! slice** to stay conservative.
//!
//! Because vCPUs are monitored independently, GOSHD distinguishes **partial
//! hangs** (a proper subset of vCPUs hung — invisible to heartbeat-style
//! detectors, whose heartbeat task keeps running on a healthy vCPU) from
//! **full hangs**.

use hypertap_core::audit::{Auditor, Finding, FindingSink, Severity};
use hypertap_core::event::{Event, EventClass, EventMask, EventRef};
use hypertap_hvsim::clock::{Duration, SimTime};
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use hypertap_hvsim::vcpu::VcpuId;
use std::any::Any;

/// GOSHD configuration.
#[derive(Debug, Clone)]
pub struct GoshdConfig {
    /// Hang threshold: declare a vCPU hung after this long without a
    /// context switch. The paper uses 2 × the profiled maximum time slice
    /// (4 s for their SUSE guest).
    pub threshold: Duration,
}

impl Default for GoshdConfig {
    fn default() -> Self {
        GoshdConfig::paper_default()
    }
}

impl GoshdConfig {
    /// The paper's configuration: profiled maximum slice of 2 s, threshold
    /// of twice that.
    pub fn paper_default() -> Self {
        GoshdConfig { threshold: Duration::from_secs(4) }
    }

    /// Derives the threshold from a profiled maximum scheduling slice.
    pub fn from_profiled_slice(max_slice: Duration) -> Self {
        GoshdConfig { threshold: max_slice.saturating_mul(2) }
    }
}

/// Whether an alarm covers part or all of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HangScope {
    /// At least one vCPU is hung, at least one is healthy.
    Partial,
    /// Every vCPU is hung.
    Full,
}

/// One hang alarm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangAlarm {
    /// The newly hung vCPU.
    pub vcpu: VcpuId,
    /// When GOSHD raised the alarm.
    pub detected_at: SimTime,
    /// The last context switch observed on that vCPU.
    pub last_switch: SimTime,
    /// Scope at detection time.
    pub scope: HangScope,
}

/// The GOSHD auditor.
#[derive(Debug)]
pub struct Goshd {
    threshold: Duration,
    last_switch: Vec<Option<SimTime>>,
    /// Ref of the last switch event per vCPU — the exit a hang alarm's
    /// provenance points at ("silent since exit #n").
    last_switch_ref: Vec<Option<EventRef>>,
    baseline: Option<SimTime>,
    /// Ref of the first event GOSHD saw; fallback provenance for a vCPU
    /// that never switched at all.
    baseline_ref: Option<EventRef>,
    hung: Vec<bool>,
    alarms: Vec<HangAlarm>,
}

impl Goshd {
    /// Creates GOSHD for a machine with `vcpus` vCPUs.
    pub fn new(vcpus: usize, config: GoshdConfig) -> Self {
        Goshd {
            threshold: config.threshold,
            last_switch: vec![None; vcpus],
            last_switch_ref: vec![None; vcpus],
            baseline: None,
            baseline_ref: None,
            hung: vec![false; vcpus],
            alarms: Vec::new(),
        }
    }

    /// All alarms raised so far, in order.
    pub fn alarms(&self) -> &[HangAlarm] {
        &self.alarms
    }

    /// The first alarm, if any (detection latency measurements use this).
    pub fn first_alarm(&self) -> Option<&HangAlarm> {
        self.alarms.first()
    }

    /// Whether the given vCPU is currently flagged hung.
    pub fn is_hung(&self, vcpu: VcpuId) -> bool {
        self.hung.get(vcpu.0).copied().unwrap_or(false)
    }

    /// Current machine-level scope, if any vCPU is hung.
    pub fn scope(&self) -> Option<HangScope> {
        let hung = self.hung.iter().filter(|h| **h).count();
        if hung == 0 {
            None
        } else if hung == self.hung.len() {
            Some(HangScope::Full)
        } else {
            Some(HangScope::Partial)
        }
    }

    /// Time at which the hang became full (all vCPUs flagged), if it did.
    pub fn full_hang_at(&self) -> Option<SimTime> {
        if self.scope() == Some(HangScope::Full) {
            self.alarms.last().map(|a| a.detected_at)
        } else {
            None
        }
    }

    fn effective_last(&self, vcpu: usize) -> Option<SimTime> {
        self.last_switch[vcpu].or(self.baseline)
    }
}

impl Auditor for Goshd {
    fn name(&self) -> &str {
        "goshd"
    }

    fn subscriptions(&self) -> EventMask {
        EventMask::only(EventClass::ProcessSwitch).with(EventClass::ThreadSwitch)
    }

    fn on_event(&mut self, _vm: &mut VmState, event: &Event, sink: &mut dyn FindingSink) {
        if self.baseline.is_none() {
            self.baseline = Some(event.time);
            self.baseline_ref = sink.current_ref();
        }
        let v = event.vcpu.0;
        if v < self.last_switch.len() {
            self.last_switch[v] = Some(event.time);
            self.last_switch_ref[v] = sink.current_ref().or(self.last_switch_ref[v]);
            // Note: the paper's GOSHD does not auto-clear alarms; a
            // recovered vCPU stays flagged for the operator. We keep that
            // latched behaviour.
        }
    }

    fn on_tick(&mut self, _vm: &mut VmState, now: SimTime, sink: &mut dyn FindingSink) {
        if self.baseline.is_none() {
            self.baseline = Some(now);
            return;
        }
        // Flag every newly hung vCPU first, then classify: the scope of a
        // simultaneous hang is a property of the whole tick, not of the
        // flagging order. (Classifying inside the loop mislabeled the
        // first alarm of an all-vCPUs-at-once hang as Partial.)
        let mut newly_hung = Vec::new();
        for v in 0..self.last_switch.len() {
            if self.hung[v] {
                continue;
            }
            let Some(last) = self.effective_last(v) else { continue };
            if now.saturating_since(last) > self.threshold {
                self.hung[v] = true;
                newly_hung.push((v, last));
            }
        }
        if newly_hung.is_empty() {
            return;
        }
        let scope = self.scope().expect("at least one vCPU was just flagged");
        for (v, last) in newly_hung {
            self.alarms.push(HangAlarm {
                vcpu: VcpuId(v),
                detected_at: now,
                last_switch: last,
                scope,
            });
            sink.note_transition("goshd", format!("vcpu{v} liveness: live -> hung"));
            // The alarm's cause is the last switch exit on that vCPU — the
            // event whose missing successor crossed the threshold. A vCPU
            // that never switched points at GOSHD's first observed exit.
            let provenance: Vec<EventRef> =
                self.last_switch_ref[v].or(self.baseline_ref).into_iter().collect();
            sink.report(
                Finding::new(
                    "goshd",
                    now,
                    Severity::Alert,
                    format!("vcpu{v} hung: no context switch since {last} ({scope:?} hang)"),
                )
                .with_provenance(provenance),
            );
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.varint(self.last_switch.len() as u64);
        for i in 0..self.last_switch.len() {
            w.opt_varint(self.last_switch[i].map(|t| t.as_nanos()));
            w.opt_varint(self.last_switch_ref[i].map(|r| r.0));
            w.boolean(self.hung[i]);
        }
        w.opt_varint(self.baseline.map(|t| t.as_nanos()));
        w.opt_varint(self.baseline_ref.map(|r| r.0));
        w.varint(self.alarms.len() as u64);
        for a in &self.alarms {
            w.varint(a.vcpu.0 as u64);
            w.varint(a.detected_at.as_nanos());
            w.varint(a.last_switch.as_nanos());
            w.byte(match a.scope {
                HangScope::Partial => 0,
                HangScope::Full => 1,
            });
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        let start = r.offset();
        let n = r.count(1 << 10, "goshd vcpu slots")?;
        if n != self.last_switch.len() {
            return Err(SnapError::BadValue { offset: start, what: "goshd vcpu count" });
        }
        for i in 0..n {
            self.last_switch[i] = r.opt_varint()?.map(SimTime::from_nanos);
            self.last_switch_ref[i] = r.opt_varint()?.map(EventRef);
            self.hung[i] = r.boolean()?;
        }
        self.baseline = r.opt_varint()?.map(SimTime::from_nanos);
        self.baseline_ref = r.opt_varint()?.map(EventRef);
        let n = r.count(1 << 16, "goshd alarms")?;
        self.alarms = Vec::with_capacity(n);
        for _ in 0..n {
            let vcpu = VcpuId(r.varint()? as usize);
            let detected_at = SimTime::from_nanos(r.varint()?);
            let last_switch = SimTime::from_nanos(r.varint()?);
            let start = r.offset();
            let scope = match r.byte()? {
                0 => HangScope::Partial,
                1 => HangScope::Full,
                _ => return Err(SnapError::BadValue { offset: start, what: "hang scope" }),
            };
            self.alarms.push(HangAlarm { vcpu, detected_at, last_switch, scope });
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_core::event::{EventKind, VmId};
    use hypertap_hvsim::exit::VcpuSnapshot;
    use hypertap_hvsim::machine::{Machine, VmConfig};
    use hypertap_hvsim::mem::Gpa;
    use hypertap_hvsim::vcpu::Vcpu;

    fn vm_state() -> VmState {
        struct NoHv;
        impl hypertap_hvsim::machine::Hypervisor for NoHv {
            fn handle_exit(
                &mut self,
                _vm: &mut VmState,
                _exit: &hypertap_hvsim::exit::VmExit,
            ) -> hypertap_hvsim::exit::ExitAction {
                hypertap_hvsim::exit::ExitAction::Resume
            }
        }
        Machine::new(VmConfig::new(2, 1 << 20), NoHv).into_parts().0
    }

    fn switch_event(vcpu: usize, t_ms: u64) -> Event {
        Event {
            vm: VmId(0),
            vcpu: VcpuId(vcpu),
            time: SimTime::from_millis(t_ms),
            kind: EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) },
            state: VcpuSnapshot::capture(&Vcpu::new(VcpuId(vcpu))),
        }
    }

    fn cfg_ms(ms: u64) -> GoshdConfig {
        GoshdConfig { threshold: Duration::from_millis(ms) }
    }

    #[test]
    fn healthy_vcpus_never_alarm() {
        let mut g = Goshd::new(2, cfg_ms(100));
        let mut vm = vm_state();
        let mut sink: Vec<Finding> = Vec::new();
        for t in (0..1000).step_by(50) {
            g.on_event(&mut vm, &switch_event(0, t), &mut sink);
            g.on_event(&mut vm, &switch_event(1, t), &mut sink);
            g.on_tick(&mut vm, SimTime::from_millis(t), &mut sink);
        }
        assert!(g.alarms().is_empty());
        assert_eq!(g.scope(), None);
    }

    #[test]
    fn partial_then_full_hang() {
        let mut g = Goshd::new(2, cfg_ms(100));
        let mut vm = vm_state();
        let mut sink: Vec<Finding> = Vec::new();
        // Both vCPUs healthy until t=200; vCPU 1 dies after 200, vCPU 0
        // after 500.
        for t in (0..=200).step_by(50) {
            g.on_event(&mut vm, &switch_event(0, t), &mut sink);
            g.on_event(&mut vm, &switch_event(1, t), &mut sink);
        }
        for t in (250..=500).step_by(50) {
            g.on_event(&mut vm, &switch_event(0, t), &mut sink);
        }
        for t in (0..=1000).step_by(10) {
            g.on_tick(&mut vm, SimTime::from_millis(t), &mut sink);
        }
        assert_eq!(g.alarms().len(), 2);
        let a0 = &g.alarms()[0];
        assert_eq!(a0.vcpu, VcpuId(1));
        assert_eq!(a0.scope, HangScope::Partial);
        // Detected just past last_switch + threshold.
        assert_eq!(a0.last_switch, SimTime::from_millis(200));
        assert_eq!(a0.detected_at, SimTime::from_millis(310));
        let a1 = &g.alarms()[1];
        assert_eq!(a1.vcpu, VcpuId(0));
        assert_eq!(a1.scope, HangScope::Full);
        assert_eq!(g.scope(), Some(HangScope::Full));
        assert!(g.full_hang_at().is_some());
        assert_eq!(sink.len(), 2);
        assert!(sink.iter().all(|f| f.severity == Severity::Alert));
    }

    #[test]
    fn threshold_is_exclusive() {
        let mut g = Goshd::new(1, cfg_ms(100));
        let mut vm = vm_state();
        let mut sink: Vec<Finding> = Vec::new();
        g.on_event(&mut vm, &switch_event(0, 0), &mut sink);
        g.on_tick(&mut vm, SimTime::from_millis(100), &mut sink);
        assert!(g.alarms().is_empty(), "exactly the threshold: not yet hung");
        g.on_tick(&mut vm, SimTime::from_millis(101), &mut sink);
        assert_eq!(g.alarms().len(), 1);
    }

    #[test]
    fn baseline_prevents_boot_false_alarm() {
        // No events at all: the first tick establishes the baseline, so the
        // alarm fires only a full threshold after monitoring started.
        let mut g = Goshd::new(1, cfg_ms(100));
        let mut vm = vm_state();
        let mut sink: Vec<Finding> = Vec::new();
        g.on_tick(&mut vm, SimTime::from_millis(500), &mut sink);
        assert!(g.alarms().is_empty());
        g.on_tick(&mut vm, SimTime::from_millis(550), &mut sink);
        assert!(g.alarms().is_empty());
        g.on_tick(&mut vm, SimTime::from_millis(601), &mut sink);
        assert_eq!(g.alarms().len(), 1);
    }

    /// A sink that numbers delivered events like the EM does, so auditor
    /// provenance can be tested without a full pipeline.
    #[derive(Default)]
    struct RefSink {
        findings: Vec<Finding>,
        transitions: Vec<(String, String)>,
        current: Option<EventRef>,
    }

    impl FindingSink for RefSink {
        fn report(&mut self, finding: Finding) {
            self.findings.push(finding);
        }
        fn current_ref(&self) -> Option<EventRef> {
            self.current
        }
        fn note_transition(&mut self, auditor: &str, detail: String) {
            self.transitions.push((auditor.to_owned(), detail));
        }
    }

    #[test]
    fn alarm_provenance_points_at_the_last_switch_exit() {
        let mut g = Goshd::new(2, cfg_ms(100));
        let mut vm = vm_state();
        let mut sink = RefSink::default();
        // vCPU 0 switches at refs #0 and #2, vCPU 1 only at #1, then both
        // go silent.
        for (r, (vcpu, t)) in [(0usize, 10u64), (1, 20), (0, 30)].iter().enumerate() {
            sink.current = Some(EventRef(r as u64));
            g.on_event(&mut vm, &switch_event(*vcpu, *t), &mut sink);
        }
        sink.current = None;
        g.on_tick(&mut vm, SimTime::from_millis(500), &mut sink);
        assert_eq!(sink.findings.len(), 2);
        let by_vcpu = |needle: &str| {
            sink.findings
                .iter()
                .find(|f| f.message.starts_with(needle))
                .unwrap_or_else(|| panic!("missing alarm for {needle}"))
        };
        assert_eq!(by_vcpu("vcpu0").provenance, vec![EventRef(2)]);
        assert_eq!(by_vcpu("vcpu1").provenance, vec![EventRef(1)]);
        assert!(by_vcpu("vcpu0").explain().contains("triggered by exits #2"));
        // Each flagged vCPU also produced a liveness-flip transition.
        assert_eq!(sink.transitions.len(), 2);
        assert!(sink.transitions.iter().all(|(a, d)| a == "goshd" && d.contains("live -> hung")));
    }

    #[test]
    fn never_switching_vcpu_falls_back_to_baseline_provenance() {
        let mut g = Goshd::new(2, cfg_ms(100));
        let mut vm = vm_state();
        let mut sink = RefSink::default();
        // Only vCPU 0 ever switches; vCPU 1's alarm can only cite GOSHD's
        // first observed exit.
        sink.current = Some(EventRef(4));
        g.on_event(&mut vm, &switch_event(0, 10), &mut sink);
        sink.current = None;
        g.on_tick(&mut vm, SimTime::from_millis(500), &mut sink);
        let vcpu1 = sink.findings.iter().find(|f| f.message.starts_with("vcpu1")).unwrap();
        assert_eq!(vcpu1.provenance, vec![EventRef(4)]);
    }

    #[test]
    fn config_from_profile() {
        let c = GoshdConfig::from_profiled_slice(Duration::from_secs(2));
        assert_eq!(c.threshold, Duration::from_secs(4));
        assert_eq!(GoshdConfig::paper_default().threshold, Duration::from_secs(4));
    }

    #[test]
    fn alarms_latch() {
        let mut g = Goshd::new(1, cfg_ms(100));
        let mut vm = vm_state();
        let mut sink: Vec<Finding> = Vec::new();
        g.on_event(&mut vm, &switch_event(0, 0), &mut sink);
        g.on_tick(&mut vm, SimTime::from_millis(200), &mut sink);
        assert!(g.is_hung(VcpuId(0)));
        // Late recovery does not clear the alarm, and no duplicate fires.
        g.on_event(&mut vm, &switch_event(0, 300), &mut sink);
        g.on_tick(&mut vm, SimTime::from_millis(600), &mut sink);
        assert_eq!(g.alarms().len(), 1);
    }

    #[test]
    fn simultaneous_full_hang_is_labeled_full_on_every_alarm() {
        // Regression: both vCPUs die at the same instant and cross the
        // threshold in the same tick. Flagging one at a time computed the
        // scope mid-batch, mislabeling the first alarm Partial even though
        // the machine hung whole.
        let mut g = Goshd::new(2, cfg_ms(100));
        let mut vm = vm_state();
        let mut sink: Vec<Finding> = Vec::new();
        g.on_event(&mut vm, &switch_event(0, 10), &mut sink);
        g.on_event(&mut vm, &switch_event(1, 10), &mut sink);
        // Silence from t=10ms on; one late tick sees both cross at once.
        g.on_tick(&mut vm, SimTime::from_millis(500), &mut sink);
        assert_eq!(g.alarms().len(), 2);
        for alarm in g.alarms() {
            assert_eq!(
                alarm.scope,
                HangScope::Full,
                "a simultaneous whole-machine hang must never be reported Partial: {alarm:?}"
            );
        }
        assert_eq!(g.scope(), Some(HangScope::Full));
        assert_eq!(sink.len(), 2);
        assert!(sink.iter().all(|f| f.message.contains("Full")));
    }
}
