//! Fleet membership for monitored VMs: drives a [`TapVm`] through the
//! [`FleetVm`] slice protocol of `hypertap_core::fleet`.
//!
//! A [`FleetMember`] advances its guest in fixed slices of simulated time
//! up to a campaign deadline. The slice length is part of the workload
//! configuration, identical for every worker count, so the member's event
//! stream is a pure function of the VM itself — the fleet determinism
//! contract holds by construction and is enforced by the replay crate's
//! fleet conformance suite.

use crate::harness::TapVm;
use hypertap_core::fleet::{FleetVm, SliceOutcome, VmReport};
use hypertap_core::prelude::VmId;
use hypertap_core::telemetry::VmProbe;
use hypertap_hvsim::clock::{Duration, SimTime};
use hypertap_hvsim::machine::RunExit;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};

/// A monitored VM enrolled in a fleet: a [`TapVm`] plus its campaign
/// deadline and slice length.
pub struct FleetMember {
    vm: TapVm,
    id: VmId,
    deadline: SimTime,
    slice: Duration,
    halted: bool,
    done: bool,
}

impl FleetMember {
    /// Enrolls a freshly built VM: it will run for `total` simulated time
    /// in slices of `slice` (both must be positive).
    pub fn new(vm: TapVm, id: VmId, total: Duration, slice: Duration) -> Self {
        assert!(slice > Duration::ZERO, "fleet slice must be positive");
        assert!(total > Duration::ZERO, "fleet campaign duration must be positive");
        let deadline = vm.now() + total;
        FleetMember { vm, id, deadline, slice, halted: false, done: false }
    }

    /// The member's VM id.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// Whether the guest halted (shutdown, auditor pause, or full wedge)
    /// before the campaign deadline.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The wrapped VM (e.g. to attach a trace recorder before stepping).
    pub fn vm_mut(&mut self) -> &mut TapVm {
        &mut self.vm
    }

    /// The wrapped VM, immutably.
    pub fn vm(&self) -> &TapVm {
        &self.vm
    }

    /// Serializes the member for migration: the VM's `.htsp` snapshot plus
    /// the member's own campaign progress. The slice length is workload
    /// configuration and is not captured — the restore target is enrolled
    /// with the same slice by [`FleetWorkload::build_vm`].
    ///
    /// [`FleetWorkload::build_vm`]: hypertap_core::fleet::FleetWorkload::build_vm
    pub fn snapshot_member(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapWriter::new();
        w.bytes(&self.vm.snapshot()?);
        w.varint(self.deadline.as_nanos());
        w.boolean(self.halted);
        w.boolean(self.done);
        Ok(w.into_bytes())
    }

    /// Restores a [`FleetMember::snapshot_member`] blob into this member,
    /// which must be freshly built from the same workload recipe.
    pub fn restore_member(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        let vm_bytes = r.bytes()?.to_vec();
        self.vm.restore(&vm_bytes)?;
        self.deadline = SimTime::from_nanos(r.varint()?);
        self.halted = r.boolean()?;
        self.done = r.boolean()?;
        r.finish()
    }
}

impl FleetVm for FleetMember {
    fn step_slice(&mut self) -> SliceOutcome {
        if self.done {
            return SliceOutcome::Done;
        }
        let before = self.vm.now();
        let wall = if self.vm.machine.hypervisor().em.flight().is_enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let target = (before + self.slice).min(self.deadline);
        match self.vm.run_until(target) {
            // The guest powered off (Sysno::Reboot) or an auditor paused
            // the VM: its campaign is over.
            RunExit::Shutdown | RunExit::Paused => {
                self.halted = true;
                self.done = true;
            }
            // Every vCPU halted with nothing pending and no forward
            // progress possible — a wedged guest also ends its campaign.
            RunExit::AllIdle if self.vm.now() == before => {
                self.halted = true;
                self.done = true;
            }
            _ => {
                if self.vm.now() >= self.deadline {
                    self.done = true;
                }
            }
        }
        if let Some(wall) = wall {
            // One span per slice regardless of worker count, so the ring's
            // record count stays deterministic; only the duration is wall
            // clock, and durations are never exported as metrics.
            let ns = wall.elapsed().as_nanos() as u64;
            self.vm.machine.hypervisor_mut().em.flight_mut().note_span(
                "fleet-slice",
                before,
                ns,
                self.id.0,
            );
        }
        if self.done {
            SliceOutcome::Done
        } else {
            SliceOutcome::Running
        }
    }

    fn finish(&mut self) -> VmReport {
        VmReport {
            vm: self.id,
            findings: self.vm.drain_findings(),
            stats: self.vm.machine.hypervisor().em.stats(),
            metrics: self.vm.metrics_snapshot(),
            halted: self.halted,
            payload: Vec::new(),
        }
    }

    fn flight_dump(&mut self, reason: &str) -> Option<Vec<u8>> {
        Some(self.vm.flight_dump(reason))
    }

    fn snapshot(&mut self) -> Option<Vec<u8>> {
        self.snapshot_member().ok()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.restore_member(bytes).map_err(|e| e.to_string())
    }

    fn telemetry_probe(&mut self) -> Option<VmProbe> {
        let em = &self.vm.machine.hypervisor().em;
        Some(VmProbe {
            now_ns: self.vm.now().as_nanos(),
            events_in: em.stats().events_in,
            pending_findings: em.pending_findings() as u64,
            container_backlog: em.container_backlog(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goshd::GoshdConfig;
    use hypertap_guestos::program::{FnProgram, UserOp, UserView};
    use hypertap_guestos::syscalls::Sysno;

    fn member(total_ms: u64, slice_ms: u64, reboot: bool) -> FleetMember {
        let id = VmId(3);
        let mut vm = TapVm::builder().vm_id(id).goshd(GoshdConfig::paper_default()).build();
        if reboot {
            let prog = vm.kernel.register_program(
                "suicide",
                Box::new(|| {
                    let mut n = 0u32;
                    Box::new(FnProgram(move |_v: &UserView<'_>| {
                        n += 1;
                        if n > 50 {
                            UserOp::sys(Sysno::Reboot, &[])
                        } else {
                            UserOp::Compute(10_000)
                        }
                    }))
                }),
            );
            vm.kernel.set_init_program(prog);
        }
        FleetMember::new(vm, id, Duration::from_millis(total_ms), Duration::from_millis(slice_ms))
    }

    #[test]
    fn slices_until_deadline_and_reports() {
        let mut m = member(20, 4, false);
        let mut slices = 0;
        while m.step_slice() == SliceOutcome::Running {
            slices += 1;
            assert!(slices < 100, "member must terminate");
        }
        assert!(!m.halted());
        assert!(m.vm().now() >= SimTime::from_millis(20));
        let report = m.finish();
        assert_eq!(report.vm, VmId(3));
        assert!(report.stats.events_in > 0, "a live guest produces events");
        assert!(!report.halted);
    }

    #[test]
    fn guest_reboot_halts_the_member_mid_campaign() {
        let mut m = member(500, 5, true);
        let mut slices = 0u32;
        while m.step_slice() == SliceOutcome::Running {
            slices += 1;
            assert!(slices < 200, "rebooting guest must end early");
        }
        assert!(m.halted(), "reboot must be classified as a halt");
        assert!(m.vm().now() < SimTime::from_millis(500), "halt happened before the deadline");
        let report = m.finish();
        assert!(report.halted);
    }

    #[test]
    fn events_are_tagged_with_the_member_vm_id() {
        let m = member(10, 10, false);
        assert_eq!(m.vm().machine.hypervisor().vm_id(), VmId(3));
    }
}
