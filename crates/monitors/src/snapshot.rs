//! `.htsp` — whole-machine snapshots of a monitored VM.
//!
//! The snapshot is the newest member of the HTRC codec family: a `HTSP`
//! magic, a varint version, then three layer sections in boot order —
//! guest kernel, machine, hypervisor — each serialized by the layer that
//! owns the state (`Kernel::save_state`, `VmState::save_state`,
//! `Kvm::save_state`). Everything deterministic is captured: vCPU register
//! files, guest memory (RLE zero-page compression), EPT and tracked paging
//! structures, device/clock/timer state, pending IRQs, per-vCPU TLBs,
//! interception-engine state, the Event Multiplexer's routing/sequence
//! counters and findings, auditor state machines, and the flight-recorder
//! ring. Host-side wall-clock instrumentation (metric spans, dispatch
//! latencies) is deliberately absent — the metrics-on/off conformance pair
//! proves it cannot influence the stream.
//!
//! # Restore contract
//!
//! [`TapVm::restore`] targets a VM **freshly built from the same recipe**
//! (same builder calls, same registered programs/modules/auditors, same
//! engine selection). Recipe state — factories, closures, profiles, cost
//! models, thresholds — is never serialized; the codec validates roster
//! congruence (names, counts, vCPU counts, knob settings) and fails with a
//! structured [`SnapError`] on any mismatch. Section order matters: the
//! kernel section is decoded first so a booted guest re-registers its
//! device topology on the I/O bus before the machine section loads each
//! device's state back into it.
//!
//! # Determinism
//!
//! `snapshot → restore → run ≡ run`, bit-for-bit: findings, provenance
//! [`EventRef`](hypertap_core::event::EventRef)s, HTRC trace bytes and
//! merged metrics counters all match an uninterrupted run. The replay
//! crate's `SNAPSHOT_CYCLE` conformance pair and the snapshot equivalence
//! proptests enforce this.

use crate::harness::TapVm;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};

/// Magic bytes opening every `.htsp` snapshot.
pub const HTSP_MAGIC: &[u8; 4] = b"HTSP";

/// Current `.htsp` format version.
pub const HTSP_VERSION: u64 = 1;

impl TapVm {
    /// Serializes the whole monitored VM into a versioned `.htsp` blob.
    ///
    /// # Errors
    ///
    /// Fails with [`SnapError::Unsupported`] when the VM holds state that
    /// cannot be captured: a live task running a closure-backed program,
    /// or an EM with asynchronous audit containers attached.
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapWriter::new();
        w.raw(HTSP_MAGIC);
        w.varint(HTSP_VERSION);
        self.kernel.save_state(&mut w)?;
        self.machine.vm().save_state(&mut w);
        self.machine.hypervisor().save_state(&mut w)?;
        Ok(w.into_bytes())
    }

    /// Restores a snapshot produced by [`TapVm::snapshot`] into this VM,
    /// which must have been freshly built from the same recipe.
    ///
    /// # Errors
    ///
    /// Returns a structured [`SnapError`] on malformed input, a version
    /// skew, or a recipe mismatch. The VM may be partially overwritten on
    /// error and must be discarded — never run a VM whose restore failed.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        if r.take(4)? != HTSP_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.varint()?;
        if version != HTSP_VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        let (vm, kvm) = self.machine.parts_mut();
        self.kernel.restore_state(&mut r, &mut vm.io)?;
        vm.load_state(&mut r)?;
        kvm.restore_state(&mut r)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goshd::GoshdConfig;
    use crate::ninja::rules::NinjaRules;
    use hypertap_hvsim::clock::Duration;
    use hypertap_hvsim::machine::VmLifecycle;

    fn monitored_vm() -> TapVm {
        TapVm::builder()
            .vcpus(2)
            .memory(1 << 28)
            .goshd(GoshdConfig::paper_default())
            .hrkd()
            .htninja(NinjaRules::new())
            .hninja(NinjaRules::new(), Duration::from_millis(4))
            .build()
    }

    #[test]
    fn snapshot_restore_snapshot_is_byte_stable() {
        let mut vm = monitored_vm();
        vm.run_for(Duration::from_millis(30));
        let bytes = vm.snapshot().expect("running VM snapshots");
        let mut fresh = monitored_vm();
        fresh.restore(&bytes).expect("snapshot restores into same recipe");
        assert_eq!(fresh.machine.vm().lifecycle(), VmLifecycle::Running);
        let again = fresh.snapshot().expect("restored VM snapshots");
        assert_eq!(bytes, again, "restore must reproduce the exact serialized state");
    }

    #[test]
    fn uninit_vm_roundtrips() {
        let vm = monitored_vm();
        let bytes = vm.snapshot().expect("unbooted VM snapshots");
        let mut fresh = monitored_vm();
        fresh.restore(&bytes).expect("restores");
        assert_eq!(fresh.machine.vm().lifecycle(), VmLifecycle::Uninit);
        assert!(!fresh.kernel.is_booted());
        assert_eq!(fresh.snapshot().unwrap(), bytes);
    }

    #[test]
    fn restored_vm_continues_identically() {
        // The equivalence contract in miniature (the replay crate proves it
        // at scale): run 30 ms, snapshot, run both the original and the
        // restored copy 30 ms more — findings and counters must agree.
        let mut a = monitored_vm();
        a.run_for(Duration::from_millis(30));
        let bytes = a.snapshot().unwrap();
        let mut b = monitored_vm();
        b.restore(&bytes).unwrap();
        a.run_for(Duration::from_millis(30));
        b.run_for(Duration::from_millis(30));
        assert_eq!(a.now(), b.now());
        assert_eq!(a.drain_findings(), b.drain_findings());
        assert_eq!(
            a.machine.hypervisor().em.stats(),
            b.machine.hypervisor().em.stats(),
            "delivery counters must continue identically"
        );
        assert_eq!(
            a.machine.hypervisor().forwarded_events(),
            b.machine.hypervisor().forwarded_events()
        );
        assert_eq!(a.snapshot().unwrap(), b.snapshot().unwrap());
    }

    #[test]
    fn bad_magic_and_version_skew_are_structured_errors() {
        let vm = monitored_vm();
        let bytes = vm.snapshot().unwrap();
        let mut fresh = monitored_vm();
        assert_eq!(fresh.restore(b"NOPE"), Err(SnapError::BadMagic));
        let mut skewed = bytes.clone();
        skewed[4] = 99; // the version varint
        assert_eq!(fresh.restore(&skewed), Err(SnapError::UnsupportedVersion(99)));
        assert!(fresh.restore(&bytes[..3]).is_err(), "truncated magic must error");
    }

    #[test]
    fn recipe_mismatch_is_rejected() {
        let mut vm = monitored_vm();
        vm.run_for(Duration::from_millis(10));
        let bytes = vm.snapshot().unwrap();
        // Wrong vCPU count.
        let mut other = TapVm::builder().vcpus(3).memory(1 << 28).build();
        assert!(other.restore(&bytes).is_err());
        // Wrong auditor roster (no monitors registered).
        let mut bare = TapVm::builder().vcpus(2).memory(1 << 28).build();
        assert!(bare.restore(&bytes).is_err());
    }
}
