//! Hypervisor-level event-rate counters for out-of-band failure detection —
//! the paper's §VII-D pointer to Vigilant-style monitors (its reference
//! 21): "failure detection based on machine learning can be applied to the
//! events and states logged by HyperTap".
//!
//! The auditor aggregates the unified event stream into fixed-width
//! intervals of per-class, per-vCPU counts — exactly "the counters it
//! provides (different types of events and states, which directly reflect
//! the operations of guest VMs)". A pluggable classifier consumes the
//! interval vectors; the built-in one is a simple rate-floor detector
//! (events dry up ⇒ suspicious), standing in for the learned model.

use hypertap_core::audit::{Auditor, Finding, FindingSink, Severity};
use hypertap_core::event::{Event, EventClass, EventMask};
use hypertap_hvsim::clock::{Duration, SimTime};
use hypertap_hvsim::machine::VmState;
use std::any::Any;

/// Per-interval feature vector: event counts by class, plus per-vCPU
/// context-switch counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSample {
    /// Interval end time.
    pub end: SimTime,
    /// Counts indexed by [`EventClass::ALL`] order.
    pub by_class: [u64; EventClass::ALL.len()],
    /// Context-switch events per vCPU.
    pub switches_per_vcpu: Vec<u64>,
}

impl IntervalSample {
    /// Count for one class.
    pub fn class(&self, c: EventClass) -> u64 {
        let idx = EventClass::ALL.iter().position(|x| *x == c).expect("all classes indexed");
        self.by_class[idx]
    }

    /// Total events in the interval.
    pub fn total(&self) -> u64 {
        self.by_class.iter().sum()
    }
}

/// The counter auditor.
#[derive(Debug)]
pub struct EventCounters {
    interval: Duration,
    vcpus: usize,
    current_start: Option<SimTime>,
    by_class: [u64; EventClass::ALL.len()],
    switches_per_vcpu: Vec<u64>,
    samples: Vec<IntervalSample>,
    /// Alarm when an interval's total falls below this (0 disables).
    pub min_events_per_interval: u64,
}

impl EventCounters {
    /// Creates the auditor with the given aggregation interval.
    pub fn new(interval: Duration, vcpus: usize) -> Self {
        EventCounters {
            interval,
            vcpus,
            current_start: None,
            by_class: [0; EventClass::ALL.len()],
            switches_per_vcpu: vec![0; vcpus],
            samples: Vec::new(),
            min_events_per_interval: 0,
        }
    }

    /// Enables the built-in rate-floor classifier.
    pub fn with_rate_floor(mut self, min_events: u64) -> Self {
        self.min_events_per_interval = min_events;
        self
    }

    /// Completed interval samples (the feature vectors a learned model
    /// would consume).
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    fn roll(&mut self, end: SimTime, sink: &mut dyn FindingSink) {
        let sample = IntervalSample {
            end,
            by_class: std::mem::take(&mut self.by_class),
            switches_per_vcpu: std::mem::replace(&mut self.switches_per_vcpu, vec![0; self.vcpus]),
        };
        if self.min_events_per_interval > 0 && sample.total() < self.min_events_per_interval {
            sink.report(Finding::new(
                "event-counters",
                end,
                Severity::Warning,
                format!(
                    "event rate collapsed: {} events in the last {}",
                    sample.total(),
                    self.interval
                ),
            ));
        }
        self.samples.push(sample);
    }
}

impl Auditor for EventCounters {
    fn name(&self) -> &str {
        "event-counters"
    }

    fn subscriptions(&self) -> EventMask {
        EventMask::ALL
    }

    fn on_event(&mut self, _vm: &mut VmState, event: &Event, _sink: &mut dyn FindingSink) {
        let idx =
            EventClass::ALL.iter().position(|c| *c == event.class()).expect("all classes indexed");
        self.by_class[idx] += 1;
        if matches!(event.class(), EventClass::ProcessSwitch | EventClass::ThreadSwitch) {
            if let Some(slot) = self.switches_per_vcpu.get_mut(event.vcpu.0) {
                *slot += 1;
            }
        }
    }

    fn on_tick(&mut self, _vm: &mut VmState, now: SimTime, sink: &mut dyn FindingSink) {
        let start = *self.current_start.get_or_insert(now);
        if now.saturating_since(start) >= self.interval {
            self.current_start = Some(now);
            self.roll(now, sink);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_core::event::{EventKind, VmId};
    use hypertap_hvsim::exit::VcpuSnapshot;
    use hypertap_hvsim::machine::{Machine, VmConfig};
    use hypertap_hvsim::mem::Gpa;
    use hypertap_hvsim::vcpu::{Vcpu, VcpuId};

    fn vm_state() -> VmState {
        struct NoHv;
        impl hypertap_hvsim::machine::Hypervisor for NoHv {
            fn handle_exit(
                &mut self,
                _vm: &mut VmState,
                _exit: &hypertap_hvsim::exit::VmExit,
            ) -> hypertap_hvsim::exit::ExitAction {
                hypertap_hvsim::exit::ExitAction::Resume
            }
        }
        Machine::new(VmConfig::new(2, 1 << 20), NoHv).into_parts().0
    }

    fn switch(vcpu: usize, t_ms: u64) -> Event {
        Event {
            vm: VmId(0),
            vcpu: VcpuId(vcpu),
            time: SimTime::from_millis(t_ms),
            kind: EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) },
            state: VcpuSnapshot::capture(&Vcpu::new(VcpuId(vcpu))),
        }
    }

    #[test]
    fn aggregates_per_interval_and_per_vcpu() {
        let mut c = EventCounters::new(Duration::from_millis(10), 2);
        let mut vm = vm_state();
        let mut sink: Vec<Finding> = Vec::new();
        c.on_tick(&mut vm, SimTime::from_millis(0), &mut sink);
        for t in 0..8 {
            c.on_event(&mut vm, &switch(t as usize % 2, t), &mut sink);
        }
        c.on_tick(&mut vm, SimTime::from_millis(10), &mut sink);
        assert_eq!(c.samples().len(), 1);
        let s = &c.samples()[0];
        assert_eq!(s.class(EventClass::ProcessSwitch), 8);
        assert_eq!(s.total(), 8);
        assert_eq!(s.switches_per_vcpu, vec![4, 4]);
    }

    #[test]
    fn rate_floor_alarm_fires_on_silence() {
        let mut c = EventCounters::new(Duration::from_millis(10), 2).with_rate_floor(5);
        let mut vm = vm_state();
        let mut sink: Vec<Finding> = Vec::new();
        c.on_tick(&mut vm, SimTime::from_millis(0), &mut sink);
        c.on_event(&mut vm, &switch(0, 1), &mut sink);
        c.on_tick(&mut vm, SimTime::from_millis(10), &mut sink);
        assert_eq!(sink.len(), 1, "1 event < floor of 5");
        assert!(sink[0].message.contains("collapsed"));
    }

    #[test]
    fn healthy_rate_stays_quiet() {
        let mut c = EventCounters::new(Duration::from_millis(10), 2).with_rate_floor(5);
        let mut vm = vm_state();
        let mut sink: Vec<Finding> = Vec::new();
        c.on_tick(&mut vm, SimTime::from_millis(0), &mut sink);
        for t in 0..6 {
            c.on_event(&mut vm, &switch(0, t), &mut sink);
        }
        c.on_tick(&mut vm, SimTime::from_millis(10), &mut sink);
        assert!(sink.is_empty());
    }
}
