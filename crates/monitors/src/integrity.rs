//! Kernel code-integrity monitoring — an instance of the paper's §VI-D
//! fine-grained interception and §VII-D extension sketches.
//!
//! The auditor write-protects the guest's kernel-text frames through the
//! [`FineGrainedEngine`] and treats any write to them as a code-injection
//! alarm. It demonstrates two framework properties: (1) EPT-grade
//! protection composes with the other monitors over the same unified
//! logging channel, and (2) a *blocking* auditor can do enforcement — it
//! requests suppression of the offending write, so the patch never lands.

use hypertap_core::audit::{Auditor, Finding, FindingSink, Severity};
use hypertap_core::event::{Event, EventClass, EventKind, EventMask};
use hypertap_core::intercept::FineGrainedEngine;
use hypertap_core::kvm::Kvm;
use hypertap_hvsim::ept::{AccessKind, EptPerm};
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::mem::{Gfn, Gpa, Gva};
use hypertap_hvsim::paging;
use std::any::Any;
use std::collections::BTreeSet;

/// One detected (and optionally blocked) kernel-text write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodePatchAttempt {
    /// When it happened.
    pub time: hypertap_hvsim::clock::SimTime,
    /// Where (guest-physical).
    pub gpa: Gpa,
    /// The value the attacker tried to plant, if known.
    pub value: Option<u64>,
    /// Whether the write was suppressed (blocking mode).
    pub blocked: bool,
}

/// The kernel code-integrity auditor.
#[derive(Debug)]
pub struct KernelIntegrity {
    watched: BTreeSet<u64>,
    block: bool,
    attempts: Vec<CodePatchAttempt>,
}

impl KernelIntegrity {
    /// Creates the auditor. `block` selects enforcement (suppress the
    /// write) versus detect-only.
    pub fn new(block: bool) -> Self {
        KernelIntegrity { watched: BTreeSet::new(), block, attempts: Vec::new() }
    }

    /// Protects the frame backing a kernel-text GVA. Must run after the
    /// guest has booted (so the mapping exists); typically driven from the
    /// harness once [`hypertap_guestos::kernel::Kernel::is_booted`] is true.
    ///
    /// Returns the protected frame, or `None` if the address does not
    /// translate yet.
    pub fn protect_text(
        &mut self,
        vm: &mut VmState,
        kvm: &mut Kvm,
        kernel_pd: Gpa,
        text: Gva,
    ) -> Option<Gfn> {
        let gpa = paging::walk(&vm.mem, kernel_pd, text).ok()?;
        let engine = kvm.engine_mut("fine-grained")?;
        let fine = engine.as_any_mut().downcast_mut::<FineGrainedEngine>()?;
        fine.watch_frame(vm, gpa.gfn(), EptPerm::RX);
        self.watched.insert(gpa.gfn().value());
        Some(gpa.gfn())
    }

    /// All attempts observed.
    pub fn attempts(&self) -> &[CodePatchAttempt] {
        &self.attempts
    }
}

impl Auditor for KernelIntegrity {
    fn name(&self) -> &str {
        "kernel-integrity"
    }

    fn subscriptions(&self) -> EventMask {
        EventMask::only(EventClass::Memory)
    }

    fn on_event(&mut self, _vm: &mut VmState, event: &Event, sink: &mut dyn FindingSink) {
        let EventKind::MemoryAccess { gpa, access, value, .. } = event.kind else { return };
        if access != AccessKind::Write || !self.watched.contains(&gpa.gfn().value()) {
            return;
        }
        if self.block {
            sink.request_suppress();
        }
        self.attempts.push(CodePatchAttempt { time: event.time, gpa, value, blocked: self.block });
        sink.report(Finding::new(
            "kernel-integrity",
            event.time,
            Severity::Alert,
            format!(
                "write to protected kernel text at {gpa}{}",
                if self.block { " — BLOCKED" } else { "" }
            ),
        ));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscriptions_are_memory_only() {
        let k = KernelIntegrity::new(true);
        assert!(k.subscriptions().contains(EventClass::Memory));
        assert!(!k.subscriptions().contains(EventClass::Syscall));
        assert!(k.attempts().is_empty());
    }
}
