//! Hidden Rootkit Detection (HRKD) — paper §VII-B.
//!
//! Rootkits hide processes by corrupting guest-kernel data structures (DKOM
//! unlinking, syscall hijacking, kmem patching). HRKD side-steps the entire
//! class: each time a process or thread is *scheduled*, the hardware must
//! load its PDBA into CR3 / its kernel stack into `TSS.RSP0`, and HyperTap
//! logs that — so HRKD's trusted sets of address spaces and kernel stacks
//! reflect exactly what runs, regardless of what any list claims.
//!
//! Detection is by **cross-view validation**: the trusted (architectural)
//! view is compared against untrusted views — the in-guest `ps` output or a
//! traditional VMI list walk. An entry in the trusted view missing from an
//! untrusted view is a hidden task.

use hypertap_core::audit::{Auditor, Finding, FindingSink, Severity};
use hypertap_core::derive;
use hypertap_core::event::{Event, EventClass, EventKind, EventMask, EventRef};
use hypertap_core::intercept::ProcessCounter;
use hypertap_core::profile::OsProfile;
use hypertap_core::vmi;
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::mem::{Gpa, Gva};
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

/// A cross-view discrepancy found by HRKD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HrkdReport {
    /// When the check ran.
    pub time: SimTime,
    /// Address spaces (PDBAs) running on the CPU but absent from the
    /// untrusted view.
    pub hidden_pdbas: Vec<u64>,
    /// Kernel stacks (thread identities) running on the CPU but absent from
    /// the untrusted view.
    pub hidden_kstacks: Vec<u64>,
    /// Which untrusted view was compared ("vmi" or "in-guest").
    pub compared_against: &'static str,
}

impl HrkdReport {
    /// Whether anything was hidden.
    pub fn is_clean(&self) -> bool {
        self.hidden_pdbas.is_empty() && self.hidden_kstacks.is_empty()
    }
}

/// The HRKD auditor.
#[derive(Debug)]
pub struct Hrkd {
    profile: OsProfile,
    counter: ProcessCounter,
    kstacks: BTreeSet<u64>,
    known_gva: Gva,
    first_pdba: Option<u64>,
    reports: Vec<HrkdReport>,
    check_period: Option<hypertap_hvsim::clock::Duration>,
    last_check: SimTime,
    /// Latest exit at which each PDBA was seen loaded into CR3 — the
    /// provenance a hidden-task finding cites.
    pdba_refs: BTreeMap<u64, EventRef>,
    /// Latest exit at which each kernel stack was seen loaded into
    /// `TSS.RSP0`.
    kstack_refs: BTreeMap<u64, EventRef>,
    /// Completed periodic scan epochs.
    scan_epoch: u64,
}

impl Hrkd {
    /// Creates HRKD. `known_gva` is a kernel address mapped in every live
    /// address space (the Fig. 3A validity probe); `profile` describes the
    /// guest for the untrusted VMI comparison view.
    pub fn new(profile: OsProfile, known_gva: Gva) -> Self {
        Hrkd {
            profile,
            counter: ProcessCounter::new(),
            kstacks: BTreeSet::new(),
            known_gva,
            first_pdba: None,
            reports: Vec::new(),
            check_period: None,
            last_check: SimTime::ZERO,
            pdba_refs: BTreeMap::new(),
            kstack_refs: BTreeMap::new(),
            scan_epoch: 0,
        }
    }

    /// Enables automatic periodic cross-validation against VMI.
    pub fn with_periodic_check(mut self, period: hypertap_hvsim::clock::Duration) -> Self {
        self.check_period = Some(period);
        self
    }

    /// The trusted count of live user address spaces (prunes dead PDBAs via
    /// the validity probe, excludes the kernel's own directory).
    pub fn trusted_process_count(&mut self, vm: &VmState) -> usize {
        let n = self.counter.count_valid(&vm.mem, self.known_gva);
        match self.first_pdba {
            Some(k) if self.counter.contains(Gpa::new(k)) => n - 1,
            _ => n,
        }
    }

    /// The trusted set of live user PDBAs.
    pub fn trusted_pdbas(&mut self, vm: &VmState) -> Vec<u64> {
        self.counter.count_valid(&vm.mem, self.known_gva);
        self.counter.iter().map(|g| g.value()).filter(|p| Some(*p) != self.first_pdba).collect()
    }

    /// The trusted set of live kernel stacks (threads), validated by
    /// attempting the architectural derivation chain on each: a stack whose
    /// `thread_info` no longer names a live task is pruned.
    pub fn trusted_kstacks(&mut self, vm: &VmState) -> Vec<u64> {
        let cr3 = vm.vcpu(hypertap_hvsim::vcpu::VcpuId(0)).cr3();
        let profile = &self.profile;
        let live: BTreeSet<u64> = self
            .kstacks
            .iter()
            .copied()
            .filter(|&rsp0| {
                derive::task_from_kernel_stack(&vm.mem, cr3, profile, rsp0)
                    .map(|t| t.pid != 0 && t.kstack == rsp0)
                    .unwrap_or(false)
            })
            .collect();
        self.kstacks = live.clone();
        live.into_iter().collect()
    }

    /// Cross-validates the trusted views against traditional VMI (the list
    /// walk a DKOM rootkit corrupts). Records and returns the report.
    pub fn cross_validate_vmi(&mut self, vm: &VmState, now: SimTime) -> HrkdReport {
        let cr3 = vm.vcpu(hypertap_hvsim::vcpu::VcpuId(0)).cr3();
        let (vmi_pdbas, vmi_kstacks): (BTreeSet<u64>, BTreeSet<u64>) =
            match vmi::list_tasks(&vm.mem, cr3, &self.profile, 8192) {
                Ok(tasks) => (
                    tasks.iter().filter(|t| t.pdba != 0).map(|t| t.pdba).collect(),
                    tasks.iter().map(|t| t.kstack).collect(),
                ),
                Err(_) => (BTreeSet::new(), BTreeSet::new()),
            };
        let hidden_pdbas: Vec<u64> =
            self.trusted_pdbas(vm).into_iter().filter(|p| !vmi_pdbas.contains(p)).collect();
        let hidden_kstacks: Vec<u64> =
            self.trusted_kstacks(vm).into_iter().filter(|k| !vmi_kstacks.contains(k)).collect();
        let report =
            HrkdReport { time: now, hidden_pdbas, hidden_kstacks, compared_against: "vmi" };
        self.reports.push(report.clone());
        report
    }

    /// Cross-validates the trusted process count against an in-guest view
    /// (e.g. the pid list a `ps` process obtained). A shortfall in the
    /// untrusted count reveals hiding; the report carries the trusted PDBAs
    /// that could not be matched by count.
    pub fn cross_validate_in_guest(
        &mut self,
        vm: &VmState,
        now: SimTime,
        in_guest_user_process_count: usize,
    ) -> HrkdReport {
        let trusted = self.trusted_pdbas(vm);
        let hidden = trusted.len().saturating_sub(in_guest_user_process_count);
        let report = HrkdReport {
            time: now,
            hidden_pdbas: trusted.into_iter().take(hidden).collect(),
            hidden_kstacks: Vec::new(),
            compared_against: "in-guest",
        };
        self.reports.push(report.clone());
        report
    }

    /// All recorded reports.
    pub fn reports(&self) -> &[HrkdReport] {
        &self.reports
    }

    /// Reports that found something.
    pub fn detections(&self) -> impl Iterator<Item = &HrkdReport> {
        self.reports.iter().filter(|r| !r.is_clean())
    }
}

impl Auditor for Hrkd {
    fn name(&self) -> &str {
        "hrkd"
    }

    fn subscriptions(&self) -> EventMask {
        EventMask::only(EventClass::ProcessSwitch).with(EventClass::ThreadSwitch)
    }

    fn on_event(&mut self, _vm: &mut VmState, event: &Event, sink: &mut dyn FindingSink) {
        match event.kind {
            EventKind::ProcessSwitch { new_pdba } => {
                if self.first_pdba.is_none() {
                    // The first CR3 the guest ever loads is the kernel's own
                    // directory, not a user process.
                    self.first_pdba = Some(new_pdba.value());
                }
                self.counter.observe(new_pdba);
                if let Some(r) = sink.current_ref() {
                    self.pdba_refs.insert(new_pdba.value(), r);
                }
            }
            EventKind::ThreadSwitch { kernel_stack } => {
                self.kstacks.insert(kernel_stack);
                if let Some(r) = sink.current_ref() {
                    self.kstack_refs.insert(kernel_stack, r);
                }
            }
            _ => {}
        }
    }

    fn on_tick(&mut self, vm: &mut VmState, now: SimTime, sink: &mut dyn FindingSink) {
        let Some(period) = self.check_period else { return };
        if now.saturating_since(self.last_check) < period {
            return;
        }
        self.last_check = now;
        let report = self.cross_validate_vmi(vm, now);
        self.scan_epoch += 1;
        sink.note_transition(
            "hrkd",
            format!(
                "scan epoch {}: {} hidden pdba(s), {} hidden kstack(s)",
                self.scan_epoch,
                report.hidden_pdbas.len(),
                report.hidden_kstacks.len()
            ),
        );
        if !report.is_clean() {
            // Cite the exits that put each hidden task on the CPU: the
            // scheduling events are the architectural proof of execution
            // the corrupted guest list cannot erase.
            let mut provenance: Vec<EventRef> = report
                .hidden_pdbas
                .iter()
                .filter_map(|p| self.pdba_refs.get(p).copied())
                .chain(
                    report.hidden_kstacks.iter().filter_map(|k| self.kstack_refs.get(k).copied()),
                )
                .collect();
            provenance.sort_unstable();
            provenance.dedup();
            sink.report(
                Finding::new(
                    "hrkd",
                    now,
                    Severity::Alert,
                    format!(
                        "hidden task(s): {} address space(s), {} kernel stack(s) \
                         running but absent from the guest task list",
                        report.hidden_pdbas.len(),
                        report.hidden_kstacks.len()
                    ),
                )
                .with_provenance(provenance),
            );
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        // Every collection below is a BTree set/map: iteration order is the
        // value order, so the byte stream is deterministic by construction.
        let pdbas: Vec<u64> = self.counter.iter().map(|g| g.value()).collect();
        w.varint(pdbas.len() as u64);
        for p in pdbas {
            w.varint(p);
        }
        w.varint(self.kstacks.len() as u64);
        for k in &self.kstacks {
            w.varint(*k);
        }
        w.opt_varint(self.first_pdba);
        w.varint(self.last_check.as_nanos());
        w.varint(self.scan_epoch);
        w.varint(self.pdba_refs.len() as u64);
        for (p, r) in &self.pdba_refs {
            w.varint(*p);
            w.varint(r.0);
        }
        w.varint(self.kstack_refs.len() as u64);
        for (k, r) in &self.kstack_refs {
            w.varint(*k);
            w.varint(r.0);
        }
        w.varint(self.reports.len() as u64);
        for rep in &self.reports {
            w.varint(rep.time.as_nanos());
            w.varint(rep.hidden_pdbas.len() as u64);
            for p in &rep.hidden_pdbas {
                w.varint(*p);
            }
            w.varint(rep.hidden_kstacks.len() as u64);
            for k in &rep.hidden_kstacks {
                w.varint(*k);
            }
            w.byte(match rep.compared_against {
                "vmi" => 0,
                _ => 1,
            });
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        self.counter = ProcessCounter::new();
        let n = r.count(1 << 20, "hrkd trusted pdbas")?;
        for _ in 0..n {
            self.counter.observe(Gpa::new(r.varint()?));
        }
        let n = r.count(1 << 20, "hrkd kernel stacks")?;
        self.kstacks = BTreeSet::new();
        for _ in 0..n {
            self.kstacks.insert(r.varint()?);
        }
        self.first_pdba = r.opt_varint()?;
        self.last_check = SimTime::from_nanos(r.varint()?);
        self.scan_epoch = r.varint()?;
        let n = r.count(1 << 20, "hrkd pdba refs")?;
        self.pdba_refs = BTreeMap::new();
        for _ in 0..n {
            let p = r.varint()?;
            self.pdba_refs.insert(p, EventRef(r.varint()?));
        }
        let n = r.count(1 << 20, "hrkd kstack refs")?;
        self.kstack_refs = BTreeMap::new();
        for _ in 0..n {
            let k = r.varint()?;
            self.kstack_refs.insert(k, EventRef(r.varint()?));
        }
        let n = r.count(1 << 16, "hrkd reports")?;
        self.reports = Vec::with_capacity(n);
        for _ in 0..n {
            let time = SimTime::from_nanos(r.varint()?);
            let np = r.count(1 << 20, "hidden pdbas")?;
            let mut hidden_pdbas = Vec::with_capacity(np);
            for _ in 0..np {
                hidden_pdbas.push(r.varint()?);
            }
            let nk = r.count(1 << 20, "hidden kstacks")?;
            let mut hidden_kstacks = Vec::with_capacity(nk);
            for _ in 0..nk {
                hidden_kstacks.push(r.varint()?);
            }
            let start = r.offset();
            let compared_against = match r.byte()? {
                0 => "vmi",
                1 => "in-guest",
                _ => {
                    return Err(SnapError::BadValue { offset: start, what: "hrkd comparison view" })
                }
            };
            self.reports.push(HrkdReport { time, hidden_pdbas, hidden_kstacks, compared_against });
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_core::event::VmId;
    use hypertap_hvsim::exit::VcpuSnapshot;
    use hypertap_hvsim::machine::{Machine, VmConfig};
    use hypertap_hvsim::vcpu::{Vcpu, VcpuId};

    fn vm_state() -> VmState {
        struct NoHv;
        impl hypertap_hvsim::machine::Hypervisor for NoHv {
            fn handle_exit(
                &mut self,
                _vm: &mut VmState,
                _exit: &hypertap_hvsim::exit::VmExit,
            ) -> hypertap_hvsim::exit::ExitAction {
                hypertap_hvsim::exit::ExitAction::Resume
            }
        }
        Machine::new(VmConfig::new(1, 1 << 20), NoHv).into_parts().0
    }

    fn profile() -> OsProfile {
        hypertap_guestos::layout::os_profile()
    }

    fn ev(kind: EventKind) -> Event {
        Event {
            vm: VmId(0),
            vcpu: VcpuId(0),
            time: SimTime::from_millis(1),
            kind,
            state: VcpuSnapshot::capture(&Vcpu::new(VcpuId(0))),
        }
    }

    #[test]
    fn first_pdba_is_treated_as_kernel() {
        let mut h = Hrkd::new(profile(), Gva::new(0x3000_0000));
        let mut vm = vm_state();
        let mut sink: Vec<Finding> = Vec::new();
        h.on_event(
            &mut vm,
            &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(0x5000) }),
            &mut sink,
        );
        h.on_event(
            &mut vm,
            &ev(EventKind::ProcessSwitch { new_pdba: Gpa::new(0x6000) }),
            &mut sink,
        );
        // Neither PDBA validates against the probe (no page tables exist in
        // this synthetic VM), so both are pruned — count 0 either way. The
        // point here is only the kernel-directory exclusion logic.
        assert_eq!(h.first_pdba, Some(0x5000));
    }

    #[test]
    fn kstack_events_accumulate() {
        let mut h = Hrkd::new(profile(), Gva::new(0x3000_0000));
        let mut vm = vm_state();
        let mut sink: Vec<Finding> = Vec::new();
        h.on_event(&mut vm, &ev(EventKind::ThreadSwitch { kernel_stack: 0xA000 }), &mut sink);
        h.on_event(&mut vm, &ev(EventKind::ThreadSwitch { kernel_stack: 0xB000 }), &mut sink);
        h.on_event(&mut vm, &ev(EventKind::ThreadSwitch { kernel_stack: 0xA000 }), &mut sink);
        assert_eq!(h.kstacks.len(), 2);
    }

    #[test]
    fn in_guest_count_comparison() {
        let mut h = Hrkd::new(profile(), Gva::new(0x3000_0000));
        let vm = vm_state();
        // With no observed PDBAs, any in-guest count is clean.
        let r = h.cross_validate_in_guest(&vm, SimTime::ZERO, 5);
        assert!(r.is_clean());
        assert_eq!(h.reports().len(), 1);
        assert_eq!(h.detections().count(), 0);
    }
}
