//! System-call-sequence intrusion detection — the paper's §VII-D pointer to
//! syscall-interposition security tools (its references 29–31, in the
//! spirit of Kosoresow & Hofmeyr's trace-based IDS).
//!
//! The auditor consumes HyperTap's syscall events (already intercepted for
//! HT-Ninja — unified logging means this monitor costs no additional exits)
//! and keeps a sliding window of syscall numbers per process. In the
//! **training** phase, observed n-grams populate the normal-behaviour
//! database; in the **detection** phase, a window of calls containing an
//! unseen n-gram raises an anomaly finding.
//!
//! Process identity comes from the architectural side: events are keyed by
//! the vCPU's current address space (the CR3 captured in the event's
//! trusted state snapshot), so a hidden process still gets its own trace.

use hypertap_core::audit::{Auditor, Finding, FindingSink, Severity};
use hypertap_core::event::{Event, EventClass, EventKind, EventMask};
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::machine::VmState;
use std::any::Any;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Length of the n-grams (Forrest-style short sequences).
pub const NGRAM: usize = 3;

/// One anomalous sequence observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anomaly {
    /// When the unseen sequence completed.
    pub time: SimTime,
    /// The address space (PDBA) of the offending process.
    pub pdba: u64,
    /// The unseen n-gram of syscall numbers.
    pub ngram: [u64; NGRAM],
}

/// Operating phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdsPhase {
    /// Learn n-grams into the normal database.
    Training,
    /// Flag n-grams missing from the database.
    Detecting,
}

/// The syscall-sequence IDS auditor.
#[derive(Debug)]
pub struct SyscallIds {
    phase: IdsPhase,
    normal: BTreeSet<[u64; NGRAM]>,
    windows: HashMap<u64, VecDeque<u64>>,
    anomalies: Vec<Anomaly>,
    reported: BTreeSet<(u64, [u64; NGRAM])>,
}

impl SyscallIds {
    /// A fresh IDS in training mode.
    pub fn new() -> Self {
        SyscallIds {
            phase: IdsPhase::Training,
            normal: BTreeSet::new(),
            windows: HashMap::new(),
            anomalies: Vec::new(),
            reported: BTreeSet::new(),
        }
    }

    /// Switches phase (training ↔ detecting). Switching clears the
    /// per-process windows so stale prefixes don't straddle the boundary.
    pub fn set_phase(&mut self, phase: IdsPhase) {
        self.phase = phase;
        self.windows.clear();
    }

    /// Current phase.
    pub fn phase(&self) -> IdsPhase {
        self.phase
    }

    /// Size of the learned normal database.
    pub fn normal_ngrams(&self) -> usize {
        self.normal.len()
    }

    /// Anomalies flagged so far.
    pub fn anomalies(&self) -> &[Anomaly] {
        &self.anomalies
    }
}

impl Default for SyscallIds {
    fn default() -> Self {
        SyscallIds::new()
    }
}

impl Auditor for SyscallIds {
    fn name(&self) -> &str {
        "syscall-ids"
    }

    fn subscriptions(&self) -> EventMask {
        EventMask::only(EventClass::Syscall)
    }

    fn on_event(&mut self, _vm: &mut VmState, event: &Event, sink: &mut dyn FindingSink) {
        let EventKind::Syscall { number, .. } = event.kind else { return };
        let pdba = event.state.cr3.value();
        let window = self.windows.entry(pdba).or_default();
        window.push_back(number);
        if window.len() > NGRAM {
            window.pop_front();
        }
        if window.len() < NGRAM {
            return;
        }
        let mut ngram = [0u64; NGRAM];
        for (slot, n) in ngram.iter_mut().zip(window.iter()) {
            *slot = *n;
        }
        match self.phase {
            IdsPhase::Training => {
                self.normal.insert(ngram);
            }
            IdsPhase::Detecting => {
                if !self.normal.contains(&ngram) && self.reported.insert((pdba, ngram)) {
                    self.anomalies.push(Anomaly { time: event.time, pdba, ngram });
                    sink.report(Finding::new(
                        "syscall-ids",
                        event.time,
                        Severity::Warning,
                        format!("unseen syscall sequence {ngram:?} in address space {pdba:#x}"),
                    ));
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_core::event::{SyscallGate, VmId};
    use hypertap_hvsim::exit::VcpuSnapshot;
    use hypertap_hvsim::machine::{Machine, VmConfig};
    use hypertap_hvsim::mem::Gpa;
    use hypertap_hvsim::vcpu::{Vcpu, VcpuId};

    fn vm_state() -> VmState {
        struct NoHv;
        impl hypertap_hvsim::machine::Hypervisor for NoHv {
            fn handle_exit(
                &mut self,
                _vm: &mut VmState,
                _exit: &hypertap_hvsim::exit::VmExit,
            ) -> hypertap_hvsim::exit::ExitAction {
                hypertap_hvsim::exit::ExitAction::Resume
            }
        }
        Machine::new(VmConfig::new(1, 1 << 20), NoHv).into_parts().0
    }

    fn syscall_event(pdba: u64, number: u64, t_us: u64) -> Event {
        let mut vcpu = Vcpu::new(VcpuId(0));
        vcpu.set_cr3(Gpa::new(pdba));
        Event {
            vm: VmId(0),
            vcpu: VcpuId(0),
            time: SimTime::from_micros(t_us),
            kind: EventKind::Syscall { gate: SyscallGate::Sysenter, number, args: [0; 5] },
            state: VcpuSnapshot::capture(&vcpu),
        }
    }

    fn feed(ids: &mut SyscallIds, vm: &mut VmState, pdba: u64, seq: &[u64]) -> Vec<Finding> {
        let mut sink = Vec::new();
        for (i, n) in seq.iter().enumerate() {
            ids.on_event(vm, &syscall_event(pdba, *n, i as u64), &mut sink);
        }
        sink
    }

    #[test]
    fn trains_then_accepts_normal_traces() {
        let mut ids = SyscallIds::new();
        let mut vm = vm_state();
        feed(&mut ids, &mut vm, 0x1000, &[5, 3, 4, 3, 4, 6]); // open read write read write close
        assert!(ids.normal_ngrams() >= 4);
        ids.set_phase(IdsPhase::Detecting);
        let findings = feed(&mut ids, &mut vm, 0x1000, &[5, 3, 4, 3, 4, 6]);
        assert!(findings.is_empty(), "the training trace is normal");
        assert!(ids.anomalies().is_empty());
    }

    #[test]
    fn flags_unseen_sequences() {
        let mut ids = SyscallIds::new();
        let mut vm = vm_state();
        feed(&mut ids, &mut vm, 0x1000, &[5, 3, 4, 3, 4, 6]);
        ids.set_phase(IdsPhase::Detecting);
        // An exploit-shaped trace: escalate (203) mid-file-I/O.
        let findings = feed(&mut ids, &mut vm, 0x2000, &[5, 3, 203, 4, 6]);
        assert!(!findings.is_empty());
        assert!(ids.anomalies().iter().any(|a| a.ngram.contains(&203) && a.pdba == 0x2000));
    }

    #[test]
    fn windows_are_per_address_space() {
        let mut ids = SyscallIds::new();
        let mut vm = vm_state();
        feed(&mut ids, &mut vm, 0x1000, &[1, 2, 3]);
        // Interleaved from another process: must not pollute 0x1000's window.
        ids.set_phase(IdsPhase::Training);
        feed(&mut ids, &mut vm, 0x1000, &[1, 2]);
        feed(&mut ids, &mut vm, 0x2000, &[9, 9, 9]);
        feed(&mut ids, &mut vm, 0x1000, &[3]);
        assert!(ids.normal.contains(&[1, 2, 3]));
        assert!(ids.normal.contains(&[9, 9, 9]));
        assert!(!ids.normal.contains(&[2, 9, 9]), "no cross-process n-grams");
    }

    #[test]
    fn each_anomaly_reported_once() {
        let mut ids = SyscallIds::new();
        let mut vm = vm_state();
        feed(&mut ids, &mut vm, 0x1000, &[1, 2, 3]);
        ids.set_phase(IdsPhase::Detecting);
        let first = feed(&mut ids, &mut vm, 0x1000, &[7, 7, 7]);
        let second = feed(&mut ids, &mut vm, 0x1000, &[7, 7, 7]);
        assert!(!first.is_empty());
        assert!(second.is_empty(), "duplicate anomalies are not re-reported");
    }
}
