//! # hypertap-monitors — the example auditors of the HyperTap paper
//!
//! Three monitors demonstrate the framework (paper §VII):
//!
//! * [`goshd`] — **Guest OS Hang Detection**: a reliability monitor that
//!   watches the per-vCPU stream of context-switch events and raises an
//!   alarm when a vCPU stops scheduling for longer than a threshold,
//!   distinguishing *partial* hangs (a proper subset of vCPUs) from *full*
//!   hangs.
//! * [`hrkd`] — **Hidden Rootkit Detection**: a security monitor that counts
//!   processes and threads from architectural invariants (CR3 loads,
//!   `TSS.RSP0` writes) and cross-validates the trusted counts against
//!   untrusted views (in-guest `ps`, traditional VMI); a discrepancy reveals
//!   a hidden task regardless of the hiding technique.
//! * [`ninja`] — **Privilege Escalation Detection**: three implementations
//!   of the Ninja checking rules — the original in-guest poller (O-Ninja),
//!   a hypervisor-level passive VMI poller (H-Ninja) and the HyperTap
//!   active-monitoring version (HT-Ninja) — used to demonstrate why active
//!   monitoring on architectural invariants beats passive monitoring.
//!
//! GOSHD and HRKD deliberately consume the *same* logged events
//! (context switches), demonstrating the unified-logging claim: one logging
//! phase feeds a reliability monitor and a security monitor simultaneously.

pub mod counters;
pub mod fleet;
pub mod goshd;
pub mod harness;
pub mod hrkd;
pub mod integrity;
pub mod ninja;
pub mod snapshot;
pub mod syscall_ids;

/// Glob import of the monitors.
pub mod prelude {
    pub use crate::counters::{EventCounters, IntervalSample};
    pub use crate::goshd::{Goshd, GoshdConfig, HangAlarm, HangScope};
    pub use crate::harness::{EngineSelection, TapVm, TapVmBuilder};
    pub use crate::hrkd::{Hrkd, HrkdReport};
    pub use crate::integrity::{CodePatchAttempt, KernelIntegrity};
    pub use crate::ninja::{
        hninja::HNinja, htninja::HtNinja, oninja, rules::NinjaRules, Detection,
    };
    pub use crate::snapshot::{HTSP_MAGIC, HTSP_VERSION};
    pub use crate::syscall_ids::{Anomaly, IdsPhase, SyscallIds};
}

pub use prelude::*;
