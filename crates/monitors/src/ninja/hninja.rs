//! H-Ninja: Ninja re-hosted at the hypervisor with traditional VMI.
//!
//! Moving the poller out of the guest removes the `/proc` side channel (an
//! attacker can no longer observe its schedule) and makes spamming less
//! effective (its scan is a host-side memory walk). But it remains
//! **passive** — it samples the guest's task list at an interval — and it
//! still trusts guest-kernel data, so transient attacks that finish between
//! polls and DKOM rootkits both defeat it.

use super::rules::NinjaRules;
use super::Detection;
use hypertap_core::audit::{Auditor, Finding, FindingSink, Severity};
use hypertap_core::event::{Event, EventMask};
use hypertap_core::profile::OsProfile;
use hypertap_core::vmi;
use hypertap_hvsim::clock::{Duration, SimTime};
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use hypertap_hvsim::vcpu::VcpuId;
use std::any::Any;
use std::collections::BTreeSet;

/// The H-Ninja auditor (event subscriptions: none — it polls).
#[derive(Debug)]
pub struct HNinja {
    profile: OsProfile,
    rules: NinjaRules,
    interval: Duration,
    last_check: Option<SimTime>,
    detections: Vec<Detection>,
    reported: BTreeSet<u64>,
    scans: u64,
    scan_times: Vec<SimTime>,
}

impl HNinja {
    /// Creates H-Ninja polling at `interval`.
    pub fn new(profile: OsProfile, rules: NinjaRules, interval: Duration) -> Self {
        HNinja {
            profile,
            rules,
            interval,
            last_check: None,
            detections: Vec::new(),
            reported: BTreeSet::new(),
            scans: 0,
            scan_times: Vec::new(),
        }
    }

    /// Detections so far.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Number of completed scans.
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// Times of the scans performed so far (bounded to the most recent
    /// 10,000 for long runs).
    pub fn scan_times(&self) -> &[SimTime] {
        &self.scan_times
    }

    /// Runs one scan immediately (also used by the periodic tick).
    pub fn scan(&mut self, vm: &VmState, now: SimTime) -> Vec<Detection> {
        self.scans += 1;
        if self.scan_times.len() < 10_000 {
            self.scan_times.push(now);
        }
        let cr3 = vm.vcpu(VcpuId(0)).cr3();
        let Ok(tasks) = vmi::list_tasks(&vm.mem, cr3, &self.profile, 8192) else {
            return Vec::new();
        };
        let mut found = Vec::new();
        for t in &tasks {
            let parent_uid = vmi::parent_of(&vm.mem, cr3, &self.profile, t)
                .ok()
                .flatten()
                .map(|p| p.uid)
                .unwrap_or(0);
            if self.rules.violates(t.euid, parent_uid, &t.comm) && !self.reported.contains(&t.pid) {
                self.reported.insert(t.pid);
                let d = Detection {
                    time: now,
                    pid: t.pid,
                    comm: t.comm.clone(),
                    euid: t.euid,
                    parent_uid,
                    via: "poll",
                };
                self.detections.push(d.clone());
                found.push(d);
            }
        }
        found
    }
}

impl Auditor for HNinja {
    fn name(&self) -> &str {
        "h-ninja"
    }

    fn subscriptions(&self) -> EventMask {
        EventMask::NONE
    }

    fn on_event(&mut self, _vm: &mut VmState, _event: &Event, _sink: &mut dyn FindingSink) {}

    fn on_tick(&mut self, vm: &mut VmState, now: SimTime, sink: &mut dyn FindingSink) {
        let due = match self.last_check {
            Some(last) => now.saturating_since(last) >= self.interval,
            None => true,
        };
        if !due {
            return;
        }
        self.last_check = Some(now);
        for d in self.scan(vm, now) {
            sink.report(Finding::new(
                "h-ninja",
                now,
                Severity::Alert,
                format!("privilege-escalated process pid {} ({})", d.pid, d.comm),
            ));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.opt_varint(self.last_check.map(|t| t.as_nanos()));
        w.varint(self.scans);
        w.varint(self.scan_times.len() as u64);
        for t in &self.scan_times {
            w.varint(t.as_nanos());
        }
        w.varint(self.reported.len() as u64);
        for p in &self.reported {
            w.varint(*p);
        }
        w.varint(self.detections.len() as u64);
        for d in &self.detections {
            d.save(&mut w);
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        self.last_check = r.opt_varint()?.map(SimTime::from_nanos);
        self.scans = r.varint()?;
        let n = r.count(10_000, "h-ninja scan times")?;
        self.scan_times = Vec::with_capacity(n);
        for _ in 0..n {
            self.scan_times.push(SimTime::from_nanos(r.varint()?));
        }
        let n = r.count(1 << 20, "h-ninja reported pids")?;
        self.reported = BTreeSet::new();
        for _ in 0..n {
            self.reported.insert(r.varint()?);
        }
        let n = r.count(1 << 16, "h-ninja detections")?;
        self.detections = Vec::with_capacity(n);
        for _ in 0..n {
            self.detections.push(Detection::load(&mut r)?);
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_guestos::layout;

    #[test]
    fn subscribes_to_nothing() {
        let n = HNinja::new(layout::os_profile(), NinjaRules::new(), Duration::from_millis(4));
        assert!(n.subscriptions().is_empty());
        assert_eq!(n.scans(), 0);
        assert!(n.detections().is_empty());
    }

    #[test]
    fn tick_respects_interval() {
        struct NoHv;
        impl hypertap_hvsim::machine::Hypervisor for NoHv {
            fn handle_exit(
                &mut self,
                _vm: &mut VmState,
                _exit: &hypertap_hvsim::exit::VmExit,
            ) -> hypertap_hvsim::exit::ExitAction {
                hypertap_hvsim::exit::ExitAction::Resume
            }
        }
        let mut vm = hypertap_hvsim::machine::Machine::new(
            hypertap_hvsim::machine::VmConfig::new(1, 1 << 20),
            NoHv,
        )
        .into_parts()
        .0;
        let mut n = HNinja::new(layout::os_profile(), NinjaRules::new(), Duration::from_millis(10));
        let mut sink: Vec<Finding> = Vec::new();
        for t in (0..=30).step_by(1) {
            n.on_tick(&mut vm, SimTime::from_millis(t), &mut sink);
        }
        // Scans at t=0, 10, 20, 30.
        assert_eq!(n.scans(), 4);
    }
}
