//! The three Ninjas — privilege escalation detection (paper §VII-C, §VIII-C).
//!
//! Ninja is a real-world in-guest detector that periodically scans the
//! process list for root processes whose parent is not an authorized
//! ("magic group") user. The paper builds three versions to compare
//! monitoring disciplines:
//!
//! | Version | Vantage point | Discipline | Defeated by |
//! |---|---|---|---|
//! | [`oninja`] (O-Ninja) | inside the guest | passive polling over `/proc` | transient attacks, `/proc` side channels, rootkits, spamming |
//! | [`hninja::HNinja`] (H-Ninja) | hypervisor, traditional VMI | passive polling over the task list | transient attacks, DKOM rootkits |
//! | [`htninja::HtNinja`] (HT-Ninja) | hypervisor, HyperTap | **active**, on context switches + I/O syscalls, rooted in TR/CR3 | — (within its model) |
//!
//! All three share the same checking [`rules::NinjaRules`]; only the logging
//! discipline differs — which is exactly the paper's point.

pub mod hninja;
pub mod htninja;
pub mod oninja;
pub mod rules;

use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};

/// One privilege-escalation detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// When the violation was noticed.
    pub time: SimTime,
    /// Pid of the offending process.
    pub pid: u64,
    /// Its command name.
    pub comm: String,
    /// Its effective uid (0).
    pub euid: u64,
    /// Its parent's real uid (outside the magic group).
    pub parent_uid: u64,
    /// Which check caught it ("first-switch", "io-syscall", "poll").
    pub via: &'static str,
}

impl Detection {
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        w.varint(self.time.as_nanos());
        w.varint(self.pid);
        w.string(&self.comm);
        w.varint(self.euid);
        w.varint(self.parent_uid);
        w.byte(match self.via {
            "first-switch" => 0,
            "io-syscall" => 1,
            _ => 2,
        });
    }

    pub(crate) fn load(r: &mut SnapReader<'_>) -> Result<Detection, SnapError> {
        let time = SimTime::from_nanos(r.varint()?);
        let pid = r.varint()?;
        let comm = r.string()?;
        let euid = r.varint()?;
        let parent_uid = r.varint()?;
        let start = r.offset();
        let via = match r.byte()? {
            0 => "first-switch",
            1 => "io-syscall",
            2 => "poll",
            _ => return Err(SnapError::BadValue { offset: start, what: "detection trigger" }),
        };
        Ok(Detection { time, pid, comm, euid, parent_uid, via })
    }
}
