//! O-Ninja: the original, in-guest, passive Ninja.
//!
//! Runs as an ordinary guest process: enumerate `/proc` (ascending pid, as
//! readdir does), then check each pid with a fresh `/proc/PID/stat` read,
//! then sleep for the configured interval. Because it is an in-guest
//! poller, it is subject to everything the paper throws at it: transient
//! attacks slip between polls, `/proc` leaks its own schedule (the side
//! channel of Table III), rootkits hide processes from its enumeration, and
//! spamming stretches the per-scan time past the attack's lifetime.

use super::rules::NinjaRules;
use hypertap_guestos::kernel::ProcStat;
use hypertap_guestos::program::{UserOp, UserProgram, UserView};
use hypertap_guestos::syscalls::Sysno;

/// The mailbox tag O-Ninja uses for detections.
pub const DETECT_TAG: &str = "oninja-detect";

/// Default user-space cost of checking one process (parsing its `/proc`
/// tree), calibrated so a full scan of a ~31-process system takes tens of
/// milliseconds, as the real Ninja's does.
pub const DEFAULT_PARSE_NS: u64 = 1_200_000;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    /// Issue the `/proc` enumeration.
    List,
    /// Issue the stat for pid index `i` (capturing the listing when i == 0).
    Stat(usize),
    /// Interpret the stat result for pid index `i`.
    Check(usize),
    /// Burn the per-process parse cost, then continue from pid index `next`.
    Parse(usize),
    /// Kill the flagged pid, then continue from pid index `next`.
    Kill(u64, usize),
    /// Scan finished; sleep (or rescan immediately).
    Sleep,
}

/// The O-Ninja guest program.
pub struct ONinja {
    rules: NinjaRules,
    interval_ns: u64,
    kill: bool,
    parse_ns: u64,
    trace: bool,
    scan_emitted: bool,
    phase: Phase,
    pids: Vec<(u64, String)>,
    reported: Vec<u64>,
}

impl ONinja {
    /// Creates O-Ninja with the given check interval (0 = continuous
    /// scanning) and whether to kill offenders. Per-process parse cost
    /// defaults to [`DEFAULT_PARSE_NS`].
    pub fn new(rules: NinjaRules, interval_ns: u64, kill: bool) -> Self {
        ONinja {
            rules,
            interval_ns,
            kill,
            parse_ns: DEFAULT_PARSE_NS,
            trace: false,
            scan_emitted: false,
            phase: Phase::List,
            pids: Vec::new(),
            reported: Vec::new(),
        }
    }

    /// Overrides the per-process parse cost (tests use 0 for exact op
    /// sequences).
    pub fn with_parse_cost(mut self, parse_ns: u64) -> Self {
        self.parse_ns = parse_ns;
        self
    }

    /// Emits an `oninja-scan` mailbox event at the start of every scan
    /// (used by the Fig. 6 timeline harness).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

impl UserProgram for ONinja {
    fn next_op(&mut self, view: &UserView<'_>) -> UserOp {
        loop {
            match self.phase.clone() {
                Phase::List => {
                    if self.trace && !self.scan_emitted {
                        self.scan_emitted = true;
                        return UserOp::Emit("oninja-scan".into(), String::new());
                    }
                    self.scan_emitted = false;
                    self.phase = Phase::Stat(0);
                    return UserOp::sys(Sysno::ListProcs, &[]);
                }
                Phase::Stat(i) => {
                    if i == 0 {
                        // The listing just completed: capture it. Checks run
                        // newest-process-first — the scan-position model of
                        // Ninja's sweep over /proc (see crate docs).
                        self.pids =
                            view.procs.iter().rev().map(|e| (e.pid, e.comm.clone())).collect();
                    }
                    match self.pids.get(i) {
                        Some((pid, _)) => {
                            let pid = *pid;
                            self.phase = Phase::Check(i);
                            return UserOp::sys(Sysno::ReadProcStat, &[pid]);
                        }
                        None => {
                            self.phase = Phase::Sleep;
                        }
                    }
                }
                Phase::Check(i) => {
                    let (pid, comm) = self.pids[i].clone();
                    self.phase =
                        if self.parse_ns > 0 { Phase::Parse(i + 1) } else { Phase::Stat(i + 1) };
                    if let Some(stat) = ProcStat::unpack(view.last_ret) {
                        if self.rules.violates(stat.euid, stat.parent_uid, &comm)
                            && !self.reported.contains(&pid)
                        {
                            self.reported.push(pid);
                            if self.kill {
                                self.phase = Phase::Kill(pid, i + 1);
                            }
                            return UserOp::Emit(DETECT_TAG.into(), format!("{pid}"));
                        }
                    }
                }
                Phase::Parse(next) => {
                    self.phase = Phase::Stat(next);
                    return UserOp::Compute(self.parse_ns);
                }
                Phase::Kill(pid, next) => {
                    self.phase = Phase::Stat(next);
                    return UserOp::sys(Sysno::Kill, &[pid]);
                }
                Phase::Sleep => {
                    self.phase = Phase::List;
                    if self.interval_ns > 0 {
                        return UserOp::sys(Sysno::Nanosleep, &[self.interval_ns]);
                    }
                    // Continuous mode: immediately rescan.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_guestos::kernel::pack_proc_stat;
    use hypertap_guestos::task::ProcEntry;
    use hypertap_hvsim::clock::SimTime;

    fn entry(pid: u64, euid: u64, parent_uid: u64, comm: &str) -> ProcEntry {
        ProcEntry { pid, uid: euid, euid, ppid: 1, parent_uid, comm: comm.into() }
    }

    fn view<'a>(last_ret: u64, procs: &'a [ProcEntry]) -> UserView<'a> {
        UserView { last_ret, now: SimTime::ZERO, pid: 9, uid: 0, euid: 0, procs }
    }

    #[test]
    fn scans_list_then_stats_each_pid_newest_first() {
        let mut n = ONinja::new(NinjaRules::new(), 1_000_000, false).with_parse_cost(0);
        let procs = vec![entry(1, 0, 0, "init"), entry(5, 1000, 0, "sh")];
        assert_eq!(n.next_op(&view(0, &[])), UserOp::sys(Sysno::ListProcs, &[]));
        // Newest (highest pid) first.
        assert_eq!(n.next_op(&view(2, &procs)), UserOp::sys(Sysno::ReadProcStat, &[5]));
        let stat5 = pack_proc_stat(1000, 0, 1, 0);
        assert_eq!(n.next_op(&view(stat5, &procs)), UserOp::sys(Sysno::ReadProcStat, &[1]));
        let stat1 = pack_proc_stat(0, 0, 0, 0);
        assert_eq!(n.next_op(&view(stat1, &procs)), UserOp::sys(Sysno::Nanosleep, &[1_000_000]));
        assert_eq!(n.next_op(&view(0, &procs)), UserOp::sys(Sysno::ListProcs, &[]));
    }

    #[test]
    fn parse_cost_is_charged_between_checks() {
        let mut n = ONinja::new(NinjaRules::new(), 0, false);
        let procs = vec![entry(1, 0, 0, "init")];
        let _ = n.next_op(&view(0, &[]));
        let _ = n.next_op(&view(1, &procs));
        let stat = pack_proc_stat(0, 0, 0, 0);
        assert_eq!(n.next_op(&view(stat, &procs)), UserOp::Compute(DEFAULT_PARSE_NS));
    }

    #[test]
    fn detects_escalated_process() {
        let mut n = ONinja::new(NinjaRules::new(), 0, false).with_parse_cost(0);
        let procs = vec![entry(7, 0, 1000, "evil")];
        let _ = n.next_op(&view(0, &[]));
        let _ = n.next_op(&view(1, &procs));
        let stat = pack_proc_stat(0, 1000, 0, 0);
        let op = n.next_op(&view(stat, &procs));
        assert_eq!(op, UserOp::Emit(DETECT_TAG.into(), "7".into()));
    }

    #[test]
    fn kill_mode_terminates_offender_after_reporting() {
        let mut n = ONinja::new(NinjaRules::new(), 0, true).with_parse_cost(0);
        let procs = vec![entry(7, 0, 1000, "evil")];
        let _ = n.next_op(&view(0, &[]));
        let _ = n.next_op(&view(1, &procs));
        let stat = pack_proc_stat(0, 1000, 0, 0);
        assert!(matches!(n.next_op(&view(stat, &procs)), UserOp::Emit(..)));
        assert_eq!(n.next_op(&view(0, &procs)), UserOp::sys(Sysno::Kill, &[7]));
    }

    #[test]
    fn hidden_pid_yields_no_detection() {
        let mut n = ONinja::new(NinjaRules::new(), 0, false).with_parse_cost(0);
        let procs = vec![entry(7, 0, 1000, "evil")];
        let _ = n.next_op(&view(0, &[]));
        let _ = n.next_op(&view(1, &procs));
        // The stat came back "no such pid" (hidden meanwhile).
        let op = n.next_op(&view(u64::MAX, &procs));
        // Straight back to rescan (continuous mode), no detection.
        assert_eq!(op, UserOp::sys(Sysno::ListProcs, &[]));
    }

    #[test]
    fn reports_each_pid_once() {
        let mut n = ONinja::new(NinjaRules::new(), 0, false).with_parse_cost(0);
        let procs = vec![entry(7, 0, 1000, "evil")];
        let stat = pack_proc_stat(0, 1000, 0, 0);
        let _ = n.next_op(&view(0, &[]));
        let _ = n.next_op(&view(1, &procs));
        assert!(matches!(n.next_op(&view(stat, &procs)), UserOp::Emit(..)));
        let _ = n.next_op(&view(0, &procs));
        let _ = n.next_op(&view(1, &procs));
        let op = n.next_op(&view(stat, &procs));
        assert!(!matches!(op, UserOp::Emit(..)));
    }
}
