//! Ninja's checking rules, shared verbatim by all three implementations.
//!
//! A process violates the policy when it runs with root privileges but its
//! parent process does not belong to an authorized user (Ninja's "magic"
//! group), and the executable is not on the administrator's white list of
//! legitimate setuid programs.

use std::collections::BTreeSet;

/// The rule configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NinjaRules {
    magic_uids: BTreeSet<u64>,
    whitelist: BTreeSet<String>,
}

impl NinjaRules {
    /// Default rules: only uid 0 (root itself) is in the magic group and
    /// nothing is whitelisted.
    pub fn new() -> Self {
        NinjaRules { magic_uids: BTreeSet::from([0]), whitelist: BTreeSet::new() }
    }

    /// Adds a uid to the magic group (builder style).
    pub fn with_magic_uid(mut self, uid: u64) -> Self {
        self.magic_uids.insert(uid);
        self
    }

    /// Whitelists an executable name (builder style). As the paper notes,
    /// whitelisted processes are a blind spot for every Ninja variant.
    pub fn with_whitelisted(mut self, comm: impl Into<String>) -> Self {
        self.whitelist.insert(comm.into());
        self
    }

    /// Whether a uid belongs to the magic group.
    pub fn is_magic(&self, uid: u64) -> bool {
        self.magic_uids.contains(&uid)
    }

    /// Whether an executable name is whitelisted.
    pub fn is_whitelisted(&self, comm: &str) -> bool {
        self.whitelist.contains(comm)
    }

    /// The core check: is a process with this effective uid, parent uid and
    /// command name privilege-escalated?
    pub fn violates(&self, euid: u64, parent_uid: u64, comm: &str) -> bool {
        euid == 0 && !self.is_magic(parent_uid) && !self.is_whitelisted(comm)
    }
}

impl Default for NinjaRules {
    fn default() -> Self {
        NinjaRules::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_child_of_root_is_fine() {
        let r = NinjaRules::new();
        assert!(!r.violates(0, 0, "daemon"));
    }

    #[test]
    fn root_child_of_user_is_violation() {
        let r = NinjaRules::new();
        assert!(r.violates(0, 1000, "sh"));
    }

    #[test]
    fn non_root_is_never_violation() {
        let r = NinjaRules::new();
        assert!(!r.violates(1000, 1000, "sh"));
    }

    #[test]
    fn magic_group_excuses() {
        let r = NinjaRules::new().with_magic_uid(1000);
        assert!(!r.violates(0, 1000, "sh"));
        assert!(r.violates(0, 1001, "sh"));
    }

    #[test]
    fn whitelist_excuses_by_name() {
        let r = NinjaRules::new().with_whitelisted("sudo");
        assert!(!r.violates(0, 1000, "sudo"), "the paper's setuid blind spot");
        assert!(r.violates(0, 1000, "sh"));
    }
}
