//! HT-Ninja: Ninja rebuilt on HyperTap's active monitoring.
//!
//! Two changes defeat every attack that breaks the passive versions
//! (paper §VII-C):
//!
//! 1. **Active monitoring.** A process is checked at (i) its *first context
//!    switch* — it cannot run at all without loading its PDBA into CR3 —
//!    and (ii) *every I/O-related system call* (open/read/write/lseek), so
//!    the check happens before any unauthorized file or network action.
//!    There is no polling interval to hide inside.
//! 2. **Architectural root of trust.** The checked identity is derived from
//!    the TR/TSS chain (`TSS.RSP0` → `thread_info` → `task_struct`), not
//!    from the `/proc` tree or the task list, so hiding a process from
//!    those views changes nothing.

use super::rules::NinjaRules;
use super::Detection;
use hypertap_core::audit::{Auditor, Finding, FindingSink, Severity};
use hypertap_core::derive;
use hypertap_core::event::{Event, EventClass, EventKind, EventMask, EventRef};
use hypertap_core::profile::{OsProfile, TaskView};
use hypertap_core::vmi;
use hypertap_hvsim::machine::VmState;
use hypertap_hvsim::mem::Gpa;
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use std::any::Any;
use std::collections::BTreeSet;

/// Which syscall numbers count as I/O-related (the paper lists open, read,
/// write, lseek).
fn is_io_syscall(number: u64) -> bool {
    hypertap_guestos::syscalls::Sysno::from_raw(number).map(|s| s.is_io()).unwrap_or(false)
}

/// Why an identity check fired: the interception path, when, and the
/// causal exits to cite if the check turns into a finding.
struct CheckTrigger {
    via: &'static str,
    time: hypertap_hvsim::clock::SimTime,
    provenance: Vec<EventRef>,
}

/// The HT-Ninja auditor.
#[derive(Debug)]
pub struct HtNinja {
    profile: OsProfile,
    rules: NinjaRules,
    seen_pdbas: BTreeSet<u64>,
    last_kstack: Vec<Option<u64>>,
    /// Ref of the thread-switch exit that loaded each vCPU's current
    /// kernel stack — half of a first-switch detection's provenance.
    last_kstack_ref: Vec<Option<EventRef>>,
    detections: Vec<Detection>,
    reported: BTreeSet<u64>,
    pause_on_detect: bool,
    checks: u64,
}

impl HtNinja {
    /// Creates HT-Ninja for a machine with `vcpus` vCPUs.
    pub fn new(profile: OsProfile, rules: NinjaRules, vcpus: usize) -> Self {
        HtNinja {
            profile,
            rules,
            seen_pdbas: BTreeSet::new(),
            last_kstack: vec![None; vcpus],
            last_kstack_ref: vec![None; vcpus],
            detections: Vec::new(),
            reported: BTreeSet::new(),
            pause_on_detect: false,
            checks: 0,
        }
    }

    /// Makes HT-Ninja pause the VM when it detects an escalation (the
    /// framework's enforcement hook).
    pub fn with_pause_on_detect(mut self) -> Self {
        self.pause_on_detect = true;
        self
    }

    /// Detections so far.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Number of identity checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    fn check_task(
        &mut self,
        vm: &mut VmState,
        task: &TaskView,
        cr3: Gpa,
        trigger: CheckTrigger,
        sink: &mut dyn FindingSink,
    ) {
        let CheckTrigger { via, time, provenance } = trigger;
        self.checks += 1;
        let parent_uid = vmi::parent_of(&vm.mem, cr3, &self.profile, task)
            .ok()
            .flatten()
            .map(|p| p.uid)
            .unwrap_or(0);
        if self.rules.violates(task.euid, parent_uid, &task.comm)
            && !self.reported.contains(&task.pid)
        {
            self.reported.insert(task.pid);
            self.detections.push(Detection {
                time,
                pid: task.pid,
                comm: task.comm.clone(),
                euid: task.euid,
                parent_uid,
                via,
            });
            sink.note_transition(
                "ht-ninja",
                format!(
                    "privilege track: pid {} euid {} under parent uid {parent_uid} ({via})",
                    task.pid, task.euid
                ),
            );
            sink.report(
                Finding::new(
                    "ht-ninja",
                    time,
                    Severity::Alert,
                    format!(
                        "privilege-escalated process pid {} ({}) caught via {via}",
                        task.pid, task.comm
                    ),
                )
                .with_provenance(provenance),
            );
            if self.pause_on_detect {
                vm.pause();
            }
        }
    }
}

impl Auditor for HtNinja {
    fn name(&self) -> &str {
        "ht-ninja"
    }

    fn subscriptions(&self) -> EventMask {
        EventMask::only(EventClass::ProcessSwitch)
            .with(EventClass::ThreadSwitch)
            .with(EventClass::Syscall)
    }

    fn on_event(&mut self, vm: &mut VmState, event: &Event, sink: &mut dyn FindingSink) {
        let v = event.vcpu.0;
        match event.kind {
            EventKind::ThreadSwitch { kernel_stack } if v < self.last_kstack.len() => {
                self.last_kstack[v] = Some(kernel_stack);
                self.last_kstack_ref[v] = sink.current_ref();
            }
            EventKind::ProcessSwitch { new_pdba } => {
                if !self.seen_pdbas.insert(new_pdba.value()) {
                    return; // not the first switch of this process
                }
                // First context switch: the kernel has just written the new
                // task's stack into the TSS; derive its identity from that.
                let Some(rsp0) = self.last_kstack.get(v).copied().flatten() else { return };
                // The new PDBA maps the kernel region like any other.
                if let Ok(task) =
                    derive::task_from_kernel_stack(&vm.mem, new_pdba, &self.profile, rsp0)
                {
                    // Cause chain: the TSS write that exposed the stack,
                    // then the CR3 load that put the process on the CPU.
                    let provenance: Vec<EventRef> = self
                        .last_kstack_ref
                        .get(v)
                        .copied()
                        .flatten()
                        .into_iter()
                        .chain(sink.current_ref())
                        .collect();
                    let trigger =
                        CheckTrigger { via: "first-switch", time: event.time, provenance };
                    self.check_task(vm, &task, new_pdba, trigger, sink);
                }
            }
            EventKind::Syscall { number, .. } if is_io_syscall(number) => {
                // Derive the caller from the architectural chain: TR → TSS →
                // kernel stack → thread_info → task_struct.
                if let Ok(task) = derive::current_task(vm, event.vcpu, &self.profile) {
                    let cr3 = vm.vcpu(event.vcpu).cr3();
                    let trigger = CheckTrigger {
                        via: "io-syscall",
                        time: event.time,
                        provenance: sink.current_ref().into_iter().collect(),
                    };
                    self.check_task(vm, &task, cr3, trigger, sink);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.varint(self.seen_pdbas.len() as u64);
        for p in &self.seen_pdbas {
            w.varint(*p);
        }
        w.varint(self.last_kstack.len() as u64);
        for i in 0..self.last_kstack.len() {
            w.opt_varint(self.last_kstack[i]);
            w.opt_varint(self.last_kstack_ref[i].map(|r| r.0));
        }
        w.varint(self.reported.len() as u64);
        for p in &self.reported {
            w.varint(*p);
        }
        w.varint(self.checks);
        w.varint(self.detections.len() as u64);
        for d in &self.detections {
            d.save(&mut w);
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        let n = r.count(1 << 20, "ht-ninja seen pdbas")?;
        self.seen_pdbas = BTreeSet::new();
        for _ in 0..n {
            self.seen_pdbas.insert(r.varint()?);
        }
        let start = r.offset();
        let n = r.count(1 << 10, "ht-ninja vcpu slots")?;
        if n != self.last_kstack.len() {
            return Err(SnapError::BadValue { offset: start, what: "ht-ninja vcpu count" });
        }
        for i in 0..n {
            self.last_kstack[i] = r.opt_varint()?;
            self.last_kstack_ref[i] = r.opt_varint()?.map(EventRef);
        }
        let n = r.count(1 << 20, "ht-ninja reported pids")?;
        self.reported = BTreeSet::new();
        for _ in 0..n {
            self.reported.insert(r.varint()?);
        }
        self.checks = r.varint()?;
        let n = r.count(1 << 16, "ht-ninja detections")?;
        self.detections = Vec::with_capacity(n);
        for _ in 0..n {
            self.detections.push(Detection::load(&mut r)?);
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_guestos::layout;

    #[test]
    fn subscriptions_cover_switches_and_syscalls() {
        let n = HtNinja::new(layout::os_profile(), NinjaRules::new(), 2);
        let m = n.subscriptions();
        assert!(m.contains(EventClass::ProcessSwitch));
        assert!(m.contains(EventClass::ThreadSwitch));
        assert!(m.contains(EventClass::Syscall));
        assert!(!m.contains(EventClass::Io));
    }

    #[test]
    fn io_syscall_classifier() {
        use hypertap_guestos::syscalls::Sysno;
        assert!(is_io_syscall(Sysno::Read.raw()));
        assert!(is_io_syscall(Sysno::Write.raw()));
        assert!(is_io_syscall(Sysno::Open.raw()));
        assert!(is_io_syscall(Sysno::Lseek.raw()));
        assert!(!is_io_syscall(Sysno::Getpid.raw()));
        assert!(!is_io_syscall(9999));
    }
}
