//! Criterion micro-benchmark: trusted derivation vs untrusted VMI walking.
//!
//! Compares the host-side cost of deriving the current task from the
//! architectural chain (TR → TSS → thread_info → task_struct) against a
//! full VMI task-list walk — the per-check costs behind HT-Ninja and
//! H-Ninja respectively.

use criterion::{criterion_group, criterion_main, Criterion};
use hypertap_core::{derive, vmi};
use hypertap_guestos::kernel::{Kernel, KernelConfig};
use hypertap_guestos::layout;
use hypertap_guestos::program::{FnProgram, UserOp, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::clock::{Duration, SimTime};
use hypertap_hvsim::exit::{ExitAction, VmExit};
use hypertap_hvsim::machine::{Hypervisor, Machine, VmConfig, VmState};
use hypertap_hvsim::vcpu::VcpuId;

struct NoHv;
impl Hypervisor for NoHv {
    fn handle_exit(&mut self, _vm: &mut VmState, _exit: &VmExit) -> ExitAction {
        ExitAction::Resume
    }
}

/// Boots a guest with a couple dozen processes and returns the machine.
fn booted_machine() -> (Machine<NoHv>, Kernel) {
    let mut m = Machine::new(VmConfig::new(2, 256 << 20), NoHv);
    let mut k = Kernel::new(KernelConfig::new(2));
    let idle = k
        .register_program("idle", Box::new(|| hypertap_workloads::idle_program(3_600_000_000_000)));
    let idle_raw = idle.0;
    let init = k.register_program(
        "init",
        Box::new(move || {
            let mut n = 0;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                n += 1;
                if n <= 24 {
                    UserOp::sys(Sysno::Spawn, &[idle_raw, 1000])
                } else {
                    UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000])
                }
            }))
        }),
    );
    k.set_init_program(init);
    m.run_until(&mut k, SimTime::from_millis(400));
    (m, k)
}

fn bench_derivation(c: &mut Criterion) {
    let (m, _k) = booted_machine();
    let vm = m.vm();
    let profile = layout::os_profile();
    let cr3 = vm.vcpu(VcpuId(0)).cr3();

    let mut group = c.benchmark_group("derivation");
    group.bench_function("derive_current_task", |b| {
        b.iter(|| derive::current_task(vm, VcpuId(0), &profile))
    });
    group.bench_function("vmi_list_tasks_27_procs", |b| {
        b.iter(|| vmi::list_tasks(&vm.mem, cr3, &profile, 8192))
    });
    group.finish();
    let _ = Duration::ZERO;
}

criterion_group!(benches, bench_derivation);
criterion_main!(benches);
