//! Criterion micro-benchmark: guest memory streaming through the full MMU
//! path (`CpuCtx::read_u64_gva`) with the software TLB enabled vs disabled,
//! for sequential and random GVA streams. A third `seed` arm replays the
//! pre-TLB data path (HashMap-backed frames + uncached walk per access) so
//! the before/after gap is measured on the same build.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hypertap_bench::seedpath::{self, SeedMemory};
use hypertap_hvsim::cpu::CpuCtx;
use hypertap_hvsim::ept::Ept;
use hypertap_hvsim::exit::{ExitAction, VmExit};
use hypertap_hvsim::machine::{Hypervisor, Machine, VmConfig, VmState};
use hypertap_hvsim::mem::{Gfn, Gva, PAGE_SIZE};
use hypertap_hvsim::paging::{AddressSpaceBuilder, FrameAllocator};
use hypertap_hvsim::vcpu::VcpuId;
use rand::{Rng, SeedableRng};

const MEM_SIZE: u64 = 64 << 20;
const MAPPED_PAGES: u64 = 512;

struct NoHv;
impl Hypervisor for NoHv {
    fn handle_exit(&mut self, _vm: &mut VmState, _exit: &VmExit) -> ExitAction {
        ExitAction::Resume
    }
}

fn machine(tlb: bool) -> Machine<NoHv> {
    let mut m = Machine::new(VmConfig::new(1, MEM_SIZE).with_tlb(tlb), NoHv);
    let vm = m.vm_mut();
    let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new(MEM_SIZE / PAGE_SIZE));
    let mut asb = AddressSpaceBuilder::new(&mut vm.mem, &mut falloc);
    asb.map_fresh_range(&mut vm.mem, &mut falloc, Gva::new(0), MAPPED_PAGES);
    vm.vcpu_mut(VcpuId(0)).set_cr3(asb.pdba());
    m
}

fn addresses(sequential: bool) -> Vec<Gva> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    (0..4096u64)
        .map(|i| {
            if sequential {
                Gva::new((i * 8) % (MAPPED_PAGES * PAGE_SIZE))
            } else {
                Gva::new(
                    rng.gen_range(0..MAPPED_PAGES) * PAGE_SIZE + rng.gen_range(0..PAGE_SIZE - 8),
                )
            }
        })
        .collect()
}

fn bench_mem_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem_stream");
    for (label, sequential) in [("sequential", true), ("random", false)] {
        let gvas = addresses(sequential);

        let mut seed = SeedMemory::new(MEM_SIZE);
        let seed_pdba = seedpath::seed_address_space(&mut seed, MAPPED_PAGES);
        let ept = Ept::new();
        group.bench_function(format!("{label}_seed"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for gva in &gvas {
                    acc ^= seedpath::seed_read_u64_gva(&seed, &ept, seed_pdba, *gva);
                }
                black_box(acc)
            })
        });

        for (mode, tlb) in [("tlb", true), ("walk", false)] {
            let mut m = machine(tlb);
            group.bench_function(format!("{label}_{mode}"), |b| {
                b.iter(|| {
                    let (vm, hv) = m.parts_mut();
                    let mut cpu = CpuCtx::new(vm, hv, VcpuId(0));
                    let mut acc = 0u64;
                    for gva in &gvas {
                        acc ^= cpu.read_u64_gva(*gva).unwrap();
                    }
                    black_box(acc)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mem_stream);
criterion_main!(benches);
