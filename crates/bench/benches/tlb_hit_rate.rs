//! Criterion micro-benchmark: the translation path with and without the
//! software TLB.
//!
//! Compares a raw two-level page-table walk against the per-vCPU TLB for
//! sequential (same few pages, high locality) and random (many pages,
//! conflict-prone) GVA streams, and prints the achieved hit rates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hypertap_hvsim::ept::Ept;
use hypertap_hvsim::mem::{Gfn, GuestMemory, Gva, PAGE_SIZE};
use hypertap_hvsim::paging::{self, AddressSpaceBuilder, FrameAllocator};
use hypertap_hvsim::tlb::Tlb;
use rand::{Rng, SeedableRng};

const MEM_SIZE: u64 = 64 << 20;
const MAPPED_PAGES: u64 = 512;

fn setup() -> (GuestMemory, Ept, hypertap_hvsim::mem::Gpa) {
    let mut mem = GuestMemory::new(MEM_SIZE);
    let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new(MEM_SIZE / PAGE_SIZE));
    let mut asb = AddressSpaceBuilder::new(&mut mem, &mut falloc);
    asb.map_fresh_range(&mut mem, &mut falloc, Gva::new(0), MAPPED_PAGES);
    (mem, Ept::new(), asb.pdba())
}

fn addresses(sequential: bool) -> Vec<Gva> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    (0..4096u64)
        .map(|i| {
            if sequential {
                Gva::new((i * 8) % (MAPPED_PAGES * PAGE_SIZE))
            } else {
                Gva::new(rng.gen_range(0..MAPPED_PAGES) * PAGE_SIZE + rng.gen_range(0..PAGE_SIZE))
            }
        })
        .collect()
}

fn bench_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb_hit_rate");

    for (label, sequential) in [("sequential", true), ("random", false)] {
        let gvas = addresses(sequential);

        let (mem, _ept, pdba) = setup();
        group.bench_function(format!("walk_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for gva in &gvas {
                    acc ^= paging::walk(&mem, pdba, *gva).unwrap().value();
                }
                black_box(acc)
            })
        });

        let (mut mem, ept, pdba) = setup();
        let mut tlb = Tlb::new();
        group.bench_function(format!("tlb_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for gva in &gvas {
                    acc ^= tlb.translate(&mut mem, &ept, pdba, *gva).unwrap().0.value();
                }
                black_box(acc)
            })
        });
        let s = tlb.stats();
        println!("  {label}: hit rate {:.2}% over {} lookups", s.hit_rate() * 100.0, s.lookups());
    }
    group.finish();
}

criterion_group!(benches, bench_tlb);
criterion_main!(benches);
