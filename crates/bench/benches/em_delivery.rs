//! Criterion micro-benchmark: Event Multiplexer delivery throughput.
//!
//! Measures the host-side cost of dispatching one event through the EM for
//! (a) a single synchronous auditor, (b) four synchronous auditors, and
//! (c) an audit container (thread + channel) — the deployment trade-off of
//! the paper's Fig. 2.

use criterion::{criterion_group, criterion_main, Criterion};
use hypertap_core::audit::{CountingAuditor, Finding};
use hypertap_core::em::{ContainerAuditor, EventMultiplexer};
use hypertap_core::event::{Event, EventKind, EventMask, VmId};
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::exit::{ExitAction, VcpuSnapshot, VmExit};
use hypertap_hvsim::machine::{Hypervisor, Machine, VmConfig, VmState};
use hypertap_hvsim::mem::Gpa;
use hypertap_hvsim::vcpu::{Vcpu, VcpuId};

struct NoHv;
impl Hypervisor for NoHv {
    fn handle_exit(&mut self, _vm: &mut VmState, _exit: &VmExit) -> ExitAction {
        ExitAction::Resume
    }
}

struct NullContainer;
impl ContainerAuditor for NullContainer {
    fn name(&self) -> &str {
        "null"
    }
    fn subscriptions(&self) -> EventMask {
        EventMask::ALL
    }
    fn on_event(&mut self, _event: &Event) -> Vec<Finding> {
        Vec::new()
    }
}

fn event() -> Event {
    Event {
        vm: VmId(0),
        vcpu: VcpuId(0),
        time: SimTime::from_millis(1),
        kind: EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) },
        state: VcpuSnapshot::capture(&Vcpu::new(VcpuId(0))),
    }
}

fn bench_em(c: &mut Criterion) {
    let mut group = c.benchmark_group("em_delivery");
    let ev = event();

    for auditors in [1usize, 4] {
        let mut em = EventMultiplexer::new();
        for _ in 0..auditors {
            em.register(Box::new(CountingAuditor::new()));
        }
        let mut vm = Machine::new(VmConfig::new(1, 1 << 20), NoHv).into_parts().0;
        group.bench_function(format!("sync_{auditors}_auditors"), |b| {
            b.iter(|| em.dispatch(&mut vm, std::hint::black_box(&ev)))
        });
    }

    let mut em = EventMultiplexer::new();
    em.register_container(Box::new(|| Box::new(NullContainer)));
    let mut vm = Machine::new(VmConfig::new(1, 1 << 20), NoHv).into_parts().0;
    group.bench_function("container_enqueue", |b| {
        b.iter(|| em.dispatch(&mut vm, std::hint::black_box(&ev)))
    });
    em.shutdown_containers();
    group.finish();
}

criterion_group!(benches, bench_em);
criterion_main!(benches);
