//! Criterion micro-benchmark: host-side simulation cost of the interception
//! engine sets.
//!
//! Simulates a fixed syscall-heavy guest burst under no engines, the
//! context-switch engines, and the full engine set, measuring how much
//! *host* time the monitoring machinery adds per simulated operation (the
//! simulator-author's analogue of the paper's guest-side Fig. 7).

use criterion::{criterion_group, criterion_main, Criterion};
use hypertap_guestos::program::{FnProgram, UserOp, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::clock::Duration;
use hypertap_monitors::harness::{EngineSelection, TapVm};

fn run_burst(engines: EngineSelection) {
    let mut vm = TapVm::builder().vcpus(1).memory(192 << 20).engines(engines).build();
    let w = vm.kernel.register_program(
        "burst",
        Box::new(|| {
            let mut n = 0u32;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                n += 1;
                if n > 300 {
                    UserOp::sys(Sysno::Reboot, &[])
                } else {
                    UserOp::sys(Sysno::Getpid, &[])
                }
            }))
        }),
    );
    let init = hypertap_workloads::make::install_init_running(&mut vm.kernel, w);
    vm.kernel.set_init_program(init);
    vm.run_for(Duration::from_secs(60));
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("intercept_cost");
    group.sample_size(20);
    group.bench_function("no_engines", |b| b.iter(|| run_burst(EngineSelection::none())));
    group.bench_function("context_switch_engines", |b| {
        b.iter(|| run_burst(EngineSelection::context_switch_only()))
    });
    group.bench_function("all_engines", |b| b.iter(|| run_burst(EngineSelection::all())));
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
