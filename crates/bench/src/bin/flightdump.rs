//! `flightdump` — inspector for `.htfr` flight-recorder dumps.
//!
//! ```text
//! # pretty-print a dump written on an auditor panic / fleet failure
//! cargo run -p hypertap-bench --bin flightdump -- --in crash.htfr
//!
//! # export Chrome trace-event JSON (load in chrome://tracing or Perfetto)
//! cargo run -p hypertap-bench --bin flightdump -- \
//!     --in crash.htfr --export-chrome crash.json
//!
//! # no dump at hand? synthesize one from an induced guest hang
//! cargo run -p hypertap-bench --bin flightdump -- --demo --out demo.htfr
//!
//! # tail a dump directory, pretty-printing each new .htfr as it lands
//! cargo run -p hypertap-bench --bin flightdump -- --follow /tmp/dumps
//! ```
//!
//! The exported JSON carries complete spans (`ph: "X"`) for pipeline
//! stages and fleet worker slices, instant events (`ph: "i"`) for
//! findings and auditor state transitions, with timestamps in simulated
//! microseconds.

use hypertap_bench::cli::Args;
use hypertap_core::prelude::FlightDump;
use hypertap_guestos::fault::{FaultType, SingleFault};
use hypertap_guestos::kpath;
use hypertap_hvsim::clock::Duration;
use hypertap_monitors::goshd::{Goshd, GoshdConfig};
use hypertap_monitors::harness::{EngineSelection, TapVm};

/// Induces a guest hang under full instrumentation and returns the flight
/// recorder's dump: the same bytes a real failure path would have written.
fn demo_dump() -> Vec<u8> {
    let mut vm = TapVm::builder()
        .vcpus(2)
        .engines(EngineSelection::context_switch_only())
        .goshd(GoshdConfig::paper_default())
        .metrics(true)
        .flight_capacity(4096)
        .build();
    let make = hypertap_workloads::make::install(&mut vm.kernel, 2, 24);
    let init = hypertap_workloads::make::install_init_running(&mut vm.kernel, make);
    vm.kernel.set_init_program(init);
    let site = kpath::site_for("ext3", 1) as u32;
    vm.kernel.set_fault_hook(Box::new(SingleFault::new(site, FaultType::MissingUnlock, true)));
    // Poll in short slices and stop right after the first alarm so the
    // finding is still in the ring, not evicted by post-alarm records.
    for _ in 0..300 {
        vm.run_for(Duration::from_millis(100));
        if vm.auditor::<Goshd>().map(|g| !g.alarms().is_empty()).unwrap_or(false) {
            break;
        }
    }
    let alarms = vm.auditor::<Goshd>().map(|g| g.alarms().len()).unwrap_or(0);
    eprintln!("demo: induced missing-unlock hang at site {site}, {alarms} GOSHD alarm(s)");
    vm.flight_dump("demo: induced guest hang (missing spinlock release)")
}

fn main() {
    let args = Args::parse();
    if let Some(dir) = args.get_str("follow") {
        // Tail the directory until --follow-ms elapses (0 = forever).
        let limit_ms: u64 = args.get("follow-ms", 0);
        let deadline =
            if limit_ms == 0 { None } else { Some(std::time::Duration::from_millis(limit_ms)) };
        let poll = std::time::Duration::from_millis(args.get("poll-ms", 250));
        let mut stdout = std::io::stdout();
        match hypertap_bench::follow::follow_dir(
            std::path::Path::new(dir),
            poll,
            deadline,
            &mut stdout,
        ) {
            Ok(n) => {
                eprintln!("follow: printed {n} dump(s) from {dir}");
                return;
            }
            Err(e) => {
                eprintln!("follow: {e}");
                std::process::exit(1);
            }
        }
    }
    let bytes = if args.has("demo") {
        let bytes = demo_dump();
        let out = args.get_str("out").unwrap_or("flight-demo.htfr");
        if let Err(e) = std::fs::write(out, &bytes) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("demo: wrote {} bytes to {out}", bytes.len());
        bytes
    } else if let Some(path) = args.get_str("in") {
        match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        eprintln!("usage: flightdump --in <dump.htfr> [--export-chrome <out.json>]");
        eprintln!("       flightdump --demo [--out <dump.htfr>] [--export-chrome <out.json>]");
        std::process::exit(2);
    };

    let dump = match FlightDump::decode(&bytes) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("not a valid .htfr dump: {e:?}");
            std::process::exit(1);
        }
    };

    if let Some(out) = args.get_str("export-chrome") {
        let json = dump.to_chrome_json();
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
        println!("wrote Chrome trace-event JSON to {out} ({} bytes)", json.len());
        println!("load it in chrome://tracing or https://ui.perfetto.dev");
        return;
    }

    print!("{}", dump.render());
}
