//! Batched exit-pipeline throughput: the forwarder→EM→auditor path
//! delivered per event (the pre-rework path, replayed on the same build)
//! versus in ring-staged batches, written to `BENCH_pipeline.json` at the
//! repository root.
//!
//! Three EM-boundary arms measure the delivery stage in isolation, all
//! fanning out to the same eight-auditor panel (one narrow subscription
//! per event class plus one catch-all — the shape of the paper's monitor
//! fleet):
//!
//! * `per_event` — the pre-rework path ([`hypertap_bench::prebatch`], the
//!   superseded algorithm replayed on the same build), one event per exit
//!   (the typical decode rate: one CR3 write or port access per VM exit):
//!   a fresh `Vec<EventKind>` and a fresh `Vec<Event>` allocated per exit,
//!   a fresh finding sink per delivery, and a full auditor-list
//!   subscription scan per event.
//! * `per_exit` — the same pre-rework body at eight events per exit, the
//!   best case the old path could reach when a chatty exit decoded many
//!   events at once.
//! * `batched` — the reworked path: events staged into the fixed-capacity
//!   [`Ring`] with reusable scratch and flushed through
//!   `EventMultiplexer::deliver_batch` as wraparound-safe slice pairs,
//!   fan-out driven by the precomputed per-class routing table.
//!
//! An end-to-end pair (`e2e/*`) runs the whole `Machine<Kvm>` loop with
//! the batched pipeline on and off for grounding; its delta is smaller
//! because guest stepping and decode dominate.
//!
//! ```text
//! cargo run --release -p hypertap-bench --bin pipeline            # full
//! cargo run --release -p hypertap-bench --bin pipeline -- --smoke # CI
//! ```

use criterion::{black_box, Criterion};
use hypertap_bench::cli::Args;
use hypertap_bench::prebatch::PreBatchEm;
use hypertap_core::audit::{Auditor, CountingAuditor};
use hypertap_core::em::EventMultiplexer;
use hypertap_core::event::{Event, EventClass, EventKind, EventMask, VmId};
use hypertap_core::kvm::Kvm;
use hypertap_core::ring::Ring;
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::cpu::{CpuCtx, StepOutcome};
use hypertap_hvsim::exit::{ExitAction, VcpuSnapshot, VmExit};
use hypertap_hvsim::machine::{GuestProgram, Hypervisor, Machine, VmConfig, VmState};
use hypertap_hvsim::mem::Gpa;
use hypertap_hvsim::vcpu::{Vcpu, VcpuId};
use serde::Value;

/// Events per timed iteration of each EM-boundary arm.
const STREAM_LEN: usize = 4096;
/// Ring capacity of the batched arm — matches the pipeline's ring.
const BATCH: usize = 256;
/// Events per exit in the `per_exit` arm.
const EXIT_EVENTS: usize = 8;

struct NoHv;
impl Hypervisor for NoHv {
    fn handle_exit(&mut self, _vm: &mut VmState, _exit: &VmExit) -> ExitAction {
        ExitAction::Resume
    }
}

fn stream() -> Vec<Event> {
    let state = VcpuSnapshot::capture(&Vcpu::new(VcpuId(0)));
    (0..STREAM_LEN)
        .map(|i| Event {
            vm: VmId(0),
            vcpu: VcpuId(0),
            time: SimTime::from_millis(i as u64),
            kind: if i % 2 == 0 {
                EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000 + (i as u64 % 8) * 0x1000) }
            } else {
                EventKind::IoPort { port: 0x3f8, write: true, value: 0x41 }
            },
            state,
        })
        .collect()
}

/// The monitor panel both arms deliver to: one narrowly-subscribed auditor
/// per event class plus one subscribed to everything — the shape of the
/// paper's monitor fleet (GOSHD on switches, HRKD on memory, ...), and the
/// shape where per-event auditor-list scans hurt most.
fn panel() -> Vec<Box<dyn Auditor>> {
    let mut auditors: Vec<Box<dyn Auditor>> = EventClass::ALL
        .iter()
        .map(|&c| Box::new(CountingAuditor::with_mask(EventMask::only(c))) as Box<dyn Auditor>)
        .collect();
    auditors.push(Box::new(CountingAuditor::new()));
    auditors
}

fn bench_vm() -> VmState {
    Machine::new(VmConfig::new(1, 1 << 20), NoHv).into_parts().0
}

fn fresh_em() -> (EventMultiplexer, VmState) {
    let mut em = EventMultiplexer::new();
    for a in panel() {
        em.register(a);
    }
    // Flight retention copies every event into the black-box ring — a
    // fixed cost identical in every arm. Turn it off so the arms measure
    // the delivery path itself (the e2e pair below keeps it on); the
    // pre-batch replica disables retention the same way. Instrumentation
    // stays ON in both delivery arms: a production monitor runs with the
    // dispatch-latency probe live, and amortizing it from per-event to
    // per-batch is part of the rework under test.
    em.flight_mut().set_enabled(false);
    em.set_metrics_enabled(true);
    (em, bench_vm())
}

fn fresh_prebatch() -> (PreBatchEm, VmState) {
    let mut em = PreBatchEm::new();
    for a in panel() {
        em.register(a);
    }
    em.set_metrics_enabled(true);
    (em, bench_vm())
}

/// The EM-boundary arms: the pre-rework delivery path (fresh `Vec`s per
/// exit, full auditor-list mask scan per event) at one and eight events
/// per exit, versus ring-staged batches through the routing table.
// The fresh-Vec-then-push shape in the before arms is the superseded
// allocation pattern under test, not an accident.
#[allow(clippy::vec_init_then_push)]
fn bench_delivery(c: &mut Criterion, smoke: bool) {
    let events = stream();
    let mut group = c.benchmark_group("delivery");
    if smoke {
        group.sample_size(5);
    }

    let (mut em, mut vm) = fresh_prebatch();
    group.bench_function("per_event", |b| {
        b.iter(|| {
            for event in &events {
                // Pre-rework forwarder body, one decoded event per exit.
                let mut kinds = Vec::new();
                kinds.push(event.kind);
                let batch: Vec<Event> =
                    kinds.iter().map(|&kind| Event { kind, ..*event }).collect();
                em.deliver_all(&mut vm, black_box(&batch));
            }
        })
    });

    let (mut em, mut vm) = fresh_prebatch();
    group.bench_function("per_exit", |b| {
        b.iter(|| {
            for chunk in events.chunks(EXIT_EVENTS) {
                let mut kinds = Vec::new();
                kinds.extend(chunk.iter().map(|e| e.kind));
                let batch: Vec<Event> =
                    kinds.iter().zip(chunk).map(|(&kind, e)| Event { kind, ..*e }).collect();
                em.deliver_all(&mut vm, black_box(&batch));
            }
        })
    });

    let (mut em, mut vm) = fresh_em();
    let mut ring: Ring<Event> = Ring::new(BATCH);
    group.bench_function("batched", |b| {
        b.iter(|| {
            for chunk in events.chunks(BATCH) {
                let staged = ring.push_slice(black_box(chunk));
                debug_assert_eq!(staged, chunk.len());
                let (front, back) = ring.as_slices();
                em.deliver_batch(&mut vm, front, back);
                let n = ring.len();
                ring.consume(n);
            }
        })
    });
    group.finish();
}

/// Two engines' worth of traffic per step, same workload as the core
/// pipeline tests: a context switch and a port write, one event per exit.
struct Chatty;
impl GuestProgram for Chatty {
    fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
        cpu.write_cr3(Gpa::new(0x3000));
        cpu.pio_out(0x3f8, 0x41);
        StepOutcome::Continue
    }
}

const E2E_STEPS: usize = 512;

/// Whole-machine grounding: guest stepping + engine decode + delivery,
/// with the batched pipeline on and off.
fn bench_e2e(c: &mut Criterion, smoke: bool) -> u64 {
    use hypertap_core::intercept::{IoEngine, ProcessSwitchEngine};
    let mut group = c.benchmark_group("e2e");
    if smoke {
        group.sample_size(5);
    }
    let mut events_per_iter = 0;
    for (label, batched) in [("forwarder_batched", true), ("forwarder_unbatched", false)] {
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
        let (vm, kvm) = m.parts_mut();
        kvm.set_batched(batched);
        kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
        kvm.install(vm, Box::new(IoEngine::new()));
        kvm.em.register(Box::new(CountingAuditor::new()));
        let before = m.hypervisor().forwarded_events();
        m.run_steps(&mut Chatty, E2E_STEPS);
        events_per_iter = m.hypervisor().forwarded_events() - before;
        group.bench_function(label, |b| b.iter(|| m.run_steps(&mut Chatty, E2E_STEPS)));
    }
    group.finish();
    events_per_iter
}

fn lookup(results: &[(String, f64)], id: &str) -> f64 {
    results
        .iter()
        .find(|(name, _)| name == id)
        .unwrap_or_else(|| panic!("missing benchmark {id}"))
        .1
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");

    let mut c = Criterion::default();
    bench_delivery(&mut c, smoke);
    let e2e_events = bench_e2e(&mut c, smoke);
    let results = c.results();

    // ns/iter → events/sec: each delivery iteration moves STREAM_LEN
    // events; each e2e iteration forwards `e2e_events`.
    let eps = |id: &str, per_iter: u64| per_iter as f64 * 1e9 / lookup(results, id);
    let per_event_eps = eps("delivery/per_event", STREAM_LEN as u64);
    let per_exit_eps = eps("delivery/per_exit", STREAM_LEN as u64);
    let batched_eps = eps("delivery/batched", STREAM_LEN as u64);
    let e2e_batched_eps = eps("e2e/forwarder_batched", e2e_events);
    let e2e_unbatched_eps = eps("e2e/forwarder_unbatched", e2e_events);
    let speedup = batched_eps / per_event_eps;

    println!();
    println!("  per_event  {per_event_eps:>14.0} events/sec");
    println!("  per_exit   {per_exit_eps:>14.0} events/sec");
    println!("  batched    {batched_eps:>14.0} events/sec   {speedup:.2}x vs per_event");
    println!(
        "  e2e        {e2e_batched_eps:>14.0} events/sec batched, \
         {e2e_unbatched_eps:.0} unbatched"
    );

    let targets_met = speedup >= 3.0 && batched_eps >= 1e6;
    let report = Value::Object(vec![
        (
            "generated_by".to_string(),
            Value::Str("cargo run --release -p hypertap-bench --bin pipeline".to_string()),
        ),
        (
            "note".to_string(),
            Value::Str(
                "median ns/iter over one 4096-event stream into an 8-auditor panel, \
                 dispatch-latency instrumentation on; 'per_event' and 'per_exit' \
                 replay the pre-rework path on the same build (fresh kind/event Vecs \
                 per exit, fresh sink per delivery, full auditor-list subscription \
                 scan and two host-clock reads per event); 'batched' stages the \
                 stream through the fixed-capacity ring and flushes via deliver_batch \
                 over the precomputed routing table, one latency observation per \
                 batch; 'e2e' runs the whole Machine<Kvm> loop with the pipeline \
                 on/off"
                    .to_string(),
            ),
        ),
        ("smoke".to_string(), Value::Bool(smoke)),
        ("stream_events".to_string(), Value::U64(STREAM_LEN as u64)),
        ("batch_capacity".to_string(), Value::U64(BATCH as u64)),
        (
            "benchmarks_ns_per_iter".to_string(),
            Value::Object(
                results.iter().map(|(name, ns)| (name.clone(), Value::F64(*ns))).collect(),
            ),
        ),
        (
            "events_per_sec".to_string(),
            Value::Object(vec![
                ("per_event".to_string(), Value::F64(per_event_eps)),
                ("per_exit".to_string(), Value::F64(per_exit_eps)),
                ("batched".to_string(), Value::F64(batched_eps)),
                ("e2e_batched".to_string(), Value::F64(e2e_batched_eps)),
                ("e2e_unbatched".to_string(), Value::F64(e2e_unbatched_eps)),
            ]),
        ),
        (
            "speedups".to_string(),
            Value::Object(vec![
                (
                    "batched_vs_per_event".to_string(),
                    Value::Object(vec![
                        (
                            "before_ns".to_string(),
                            Value::F64(lookup(results, "delivery/per_event")),
                        ),
                        ("after_ns".to_string(), Value::F64(lookup(results, "delivery/batched"))),
                        ("speedup".to_string(), Value::F64(speedup)),
                    ]),
                ),
                ("batched_vs_per_exit".to_string(), Value::F64(batched_eps / per_exit_eps)),
                (
                    "e2e_batched_vs_unbatched".to_string(),
                    Value::F64(e2e_batched_eps / e2e_unbatched_eps),
                ),
            ]),
        ),
        (
            "targets".to_string(),
            Value::Object(vec![
                ("min_speedup_vs_per_event".to_string(), Value::F64(3.0)),
                ("min_batched_events_per_sec".to_string(), Value::F64(1e6)),
                ("met".to_string(), Value::Bool(targets_met)),
            ]),
        ),
    ]);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(path, json + "\n").expect("write BENCH_pipeline.json");
    println!("\nwrote {path}");

    if smoke {
        // CI smoke runs on shared, throttled machines: report, don't gate.
        println!("smoke mode: targets reported but not enforced (met: {targets_met})");
    } else {
        assert!(
            speedup >= 3.0,
            "batched delivery is only {speedup:.2}x the per-event path (target 3x)"
        );
        assert!(batched_eps >= 1e6, "batched delivery at {batched_eps:.0} events/sec (target 1M)");
    }
}
