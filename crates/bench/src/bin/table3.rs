//! Table III — predicting Ninja's monitoring interval through the `/proc`
//! side channel.
//!
//! O-Ninja runs in-guest with intervals of 1, 2, 4 and 8 seconds; an
//! unprivileged prober polls `/proc/<ninja>/stat` and records each
//! sleep→run transition. The gaps between wake-ups recover the interval
//! with sub-millisecond precision — the information a transient attacker
//! needs to time its strike.
//!
//! Flags:
//!   --samples N   wake-ups per interval (default 12; the paper used 30)
//!   --poll-us N   prober polling gap in microseconds (default 200)

use hypertap_attacks::side_channel::{IntervalEstimate, SideChannelProber, WAKE_TAG};
use hypertap_bench::cli::Args;
use hypertap_bench::report::table;
use hypertap_guestos::program::{FnProgram, UserOp, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::clock::Duration;
use hypertap_hvsim::machine::RunExit;
use hypertap_monitors::harness::{EngineSelection, TapVm};
use hypertap_monitors::ninja::oninja::ONinja;
use hypertap_monitors::ninja::rules::NinjaRules;

/// Measures one interval; returns the recovered wake-up gaps.
fn measure_interval(interval_s: u64, samples: u64, poll_gap_ns: u64) -> Option<IntervalEstimate> {
    let mut vm =
        TapVm::builder().vcpus(2).memory(256 << 20).engines(EngineSelection::none()).build();
    let ninja = vm.kernel.register_program(
        "ninja",
        Box::new(move || {
            Box::new(ONinja::new(NinjaRules::new(), interval_s * 1_000_000_000, false))
        }),
    );
    // The prober learns the ninja's pid the honest way: from the process
    // list. Here init simply passes it along (pid 4: init=1, kflushd=2,3).
    let ninja_pid_guess = 4u64;
    let prober = vm.kernel.register_program(
        "prober",
        Box::new(move || {
            Box::new(SideChannelProber::new(ninja_pid_guess, poll_gap_ns, samples + 1))
        }),
    );
    let (ninja_raw, prober_raw) = (ninja.0, prober.0);
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Spawn, &[ninja_raw, 0]),
                    2 => UserOp::sys(Sysno::Spawn, &[prober_raw, 1000]),
                    _ => UserOp::sys(Sysno::Waitpid, &[]),
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);

    // Run until the prober has seen its wake-ups (it exits on its own).
    let horizon = Duration::from_secs(interval_s * (samples + 4) + 10);
    let mut wakes: Vec<u64> = Vec::new();
    for _ in 0..10_000 {
        let run = vm.run_for(Duration::from_millis(200));
        for (_pid, ev) in vm.kernel.drain_all_mailboxes() {
            if ev.tag == WAKE_TAG {
                if let Ok(t) = ev.detail.parse() {
                    wakes.push(t);
                }
            }
        }
        if wakes.len() as u64 > samples || vm.now().as_nanos() > horizon.as_nanos() {
            break;
        }
        if run == RunExit::AllIdle || run == RunExit::Shutdown {
            break;
        }
    }
    // Discard the first wake (partial interval).
    if wakes.len() > 1 {
        wakes.remove(0);
    }
    IntervalEstimate::from_wakes(&wakes)
}

fn main() {
    let args = Args::parse();
    let samples: u64 = args.get("samples", 12);
    let poll_gap_ns: u64 = args.get::<u64>("poll-us", 200) * 1_000;

    println!("Table III — predicting Ninja's monitoring interval (seconds)\n");
    let mut rows = Vec::new();
    for interval in [1u64, 2, 4, 8] {
        match measure_interval(interval, samples, poll_gap_ns) {
            Some(est) => rows.push(vec![
                format!("{interval}"),
                format!("{:.5}", est.mean_s),
                format!("{:.5}", est.min_s),
                format!("{:.5}", est.max_s),
                format!("{:.5}", est.sd_s),
                format!("{}", est.samples),
            ]),
            None => rows.push(vec![
                format!("{interval}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "0".into(),
            ]),
        }
    }
    println!(
        "{}",
        table(&["Ninja's interval", "Predicted mean", "Min", "Max", "SD", "samples"], &rows)
    );
    println!("(paper: means within ~0.0004 s of the true interval, SD < 0.001 s, 30 samples)");
}
