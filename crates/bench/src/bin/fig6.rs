//! Fig. 6 — timelines of the transient and spamming attacks.
//!
//! The paper's Fig. 6 illustrates *why* passive monitoring loses: a
//! transient attack fits entirely between two checks, and a spamming attack
//! stretches the scan so the attacker finishes before the scanner reaches
//! it. This binary runs both scenarios against a passively polling H-Ninja
//! and prints the interleaved event timeline actually observed in the
//! simulation.

use hypertap_attacks::exploit::ATTACK_DONE_TAG;
use hypertap_bench::ninja_scenarios::{
    run_ninja_trial_traced, AttackStyle, NinjaVariant, TraceEvent,
};
use hypertap_bench::report::table;
use hypertap_hvsim::clock::Duration;

fn print_timeline(title: &str, events: &[TraceEvent], detected: bool) {
    println!("{title}");
    let rows: Vec<Vec<String>> = events
        .iter()
        .map(|e| vec![format!("{:>10.3} ms", e.time_ns as f64 / 1e6), e.what.clone()])
        .collect();
    println!("{}", table(&["time", "event"], &rows));
    println!("outcome: attack {}\n", if detected { "DETECTED" } else { "went unnoticed" });
}

fn main() {
    println!("Fig. 6 — why passive monitoring loses\n");

    // Top half: a transient attack between two 50 ms checks.
    let (events, detected) = run_ninja_trial_traced(
        NinjaVariant::HNinja { interval: Duration::from_millis(50) },
        0,
        AttackStyle::Transient,
        3,
    );
    print_timeline("Transient attack vs a 50 ms passive poller:", &events, detected);

    // Bottom half: a rootkit-combined attack under heavy spam against the
    // in-guest scanner.
    let (events, detected) = run_ninja_trial_traced(
        NinjaVariant::ONinja { interval_ns: 0 },
        150,
        AttackStyle::RootkitCombined,
        4,
    );
    print_timeline(
        "Spamming attack (150 extra processes) vs the in-guest scanner:",
        &events,
        detected,
    );
    let _ = ATTACK_DONE_TAG;
}
