//! Fig. 5 — Guest OS Hang Detection latency CDFs.
//!
//! Prints the cumulative distributions of (a) the latency of the *first*
//! hang detection (the paper's blue line: >90 % within the 4 s threshold +
//! epsilon, all within ~32 s) and (b) the latency until the hang became
//! *full* (the red line: many full hangs trail the first partial alarm by
//! tens of seconds — the value of partial-hang detection).
//!
//! Flags:
//!   --load PATH  reuse results saved by `fig4 --save PATH`
//!   --stride N / --seed S / --threads N / --quick  as in fig4

use hypertap_bench::cli::Args;
use hypertap_bench::report::cdf_table;
use hypertap_faultinject::campaign::{default_campaign, fig5_latencies, run_campaign};
use hypertap_faultinject::spec::{TrialResult, Workload};
use std::io::BufRead as _;

fn main() {
    let args = Args::parse();
    let results: Vec<TrialResult> = if let Some(path) = args.get_str("load") {
        let f = std::fs::File::open(path).expect("open results file");
        std::io::BufReader::new(f)
            .lines()
            .map(|l| serde_json::from_str(&l.expect("read line")).expect("parse result"))
            .collect()
    } else {
        let mut cfg = default_campaign(args.get("stride", 16));
        cfg.seed = args.get("seed", 42);
        cfg.threads = args.get("threads", 0);
        if args.has("quick") {
            cfg = default_campaign(94);
            cfg.workloads = vec![Workload::Hanoi, Workload::MakeJ2];
        }
        eprintln!(
            "fig5: running {} trials (use `fig4 --save` + `--load` to reuse)",
            cfg.specs().len()
        );
        run_campaign(&cfg, |done, total| {
            if done % 32 == 0 || done == total {
                eprint!("\r  {done}/{total} trials");
            }
        })
    };
    eprintln!();

    let (first, full) = fig5_latencies(&results);
    let xs = [4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0, 32.0, 40.0, 50.0];
    println!("Fig. 5 — Guest OS Hang Detection latency\n");
    println!("{}", cdf_table("first-hang detection latency (paper's blue line)", &first, &xs));
    println!("{}", cdf_table("full-hang latency (paper's red line)", &full, &xs));
    if !first.is_empty() {
        let at4 = first.partition_point(|&v| v <= 4.5) as f64 / first.len() as f64;
        println!(
            "first-hang detections within the 4s threshold (+0.5s): {:.1}% (paper: >90%)",
            at4 * 100.0
        );
        println!(
            "max first-hang latency: {:.1}s (paper: all within 32s)",
            first.last().copied().unwrap_or(0.0)
        );
    }
}
