//! §VIII-C — "The Three Ninjas": detection probability of O-Ninja,
//! H-Ninja and HT-Ninja against the privilege-escalation attack.
//!
//! Reproduces the paper's three findings:
//!
//! * **O-Ninja** (in-guest, continuous scanning) catches only ~10 % of
//!   rootkit-combined attacks on a ~31-process system, and spamming the
//!   process list with idle processes drives detection to ~0;
//! * **H-Ninja** (hypervisor VMI poller) catches 100 % at a 4 ms interval
//!   but degrades steeply as the interval grows;
//! * **HT-Ninja** (active monitoring on architectural invariants) catches
//!   100 % in every scenario.
//!
//! Flags:
//!   --trials N   independent attacks per scenario (default 60; paper: 300)
//!   --seed S     base seed (default 7)

use hypertap_bench::cli::Args;
use hypertap_bench::ninja_scenarios::{detection_probability, AttackStyle, NinjaVariant};
use hypertap_bench::report::{bar, pct, table};
use hypertap_hvsim::clock::Duration;

fn main() {
    let args = Args::parse();
    let trials: usize = args.get("trials", 60);
    let seed: u64 = args.get("seed", 7);
    println!("The Three Ninjas — detection probability ({trials} attacks per scenario)\n");

    // O-Ninja with continuous scanning vs process-list spamming. The base
    // system runs ~31 processes worth of scan work; spam adds idles.
    println!("O-Ninja (in-guest, continuous scanning) vs spamming:");
    let mut rows = Vec::new();
    for (label, spam) in [("~31 processes", 26usize), ("+100 idle", 126), ("+200 idle", 226)] {
        let p = detection_probability(
            NinjaVariant::ONinja { interval_ns: 0 },
            spam,
            AttackStyle::RootkitCombined,
            trials,
            seed,
        );
        rows.push(vec![label.to_string(), pct(p), bar(p, 30)]);
    }
    println!("{}", table(&["system size", "detection", ""], &rows));
    println!("(paper: ~10% at 31 processes, 2-3% at +100, ~0% at +200)\n");

    // H-Ninja vs polling interval.
    println!("H-Ninja (hypervisor VMI poller) vs interval:");
    let mut rows = Vec::new();
    for ms in [4u64, 8, 20, 50] {
        let p = detection_probability(
            NinjaVariant::HNinja { interval: Duration::from_millis(ms) },
            26,
            AttackStyle::RootkitCombined,
            trials,
            seed + 1000,
        );
        rows.push(vec![format!("{ms} ms"), pct(p), bar(p, 30)]);
    }
    println!("{}", table(&["interval", "detection", ""], &rows));
    println!("(paper: 100% at 4 ms, ~60% at 8 ms, <5% beyond 20 ms)\n");

    // HT-Ninja across every scenario, including the pure transient attack.
    println!("HT-Ninja (HyperTap, active monitoring):");
    let mut rows = Vec::new();
    for (label, spam, style) in [
        ("rootkit-combined, ~31 procs", 26usize, AttackStyle::RootkitCombined),
        ("rootkit-combined, +200 idle", 226, AttackStyle::RootkitCombined),
        ("pure transient attack", 26, AttackStyle::Transient),
    ] {
        let p = detection_probability(NinjaVariant::HtNinja, spam, style, trials, seed + 2000);
        rows.push(vec![label.to_string(), pct(p), bar(p, 30)]);
    }
    println!("{}", table(&["scenario", "detection", ""], &rows));
    println!("(paper: HT-Ninja detected all attacks in all tested scenarios)");
}
