//! Table II — real-world rootkits evaluated with HRKD.
//!
//! For each of the ten rootkits, a fresh VM boots, a victim process starts
//! (so HRKD's trusted view records its address space and kernel stack), the
//! rootkit hides it, and HRKD cross-validates the trusted view against both
//! untrusted views (traditional VMI and the in-guest `ps`). The table
//! reports whether the hidden process was exposed.

use hypertap_attacks::rootkits::all_rootkits;
use hypertap_bench::report::table;
use hypertap_guestos::module::ModuleSpec;
use hypertap_guestos::program::{FnProgram, UserOp, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::clock::Duration;
use hypertap_monitors::harness::TapVm;
use hypertap_monitors::hrkd::Hrkd;

/// Runs one rootkit scenario; returns (detected_by_vmi_check,
/// in_guest_ps_count_before, after).
fn run_rootkit(spec: &ModuleSpec) -> (bool, usize, usize) {
    let mut vm = TapVm::builder().hrkd().build();
    let rk = vm.kernel.register_module(spec.clone());
    let victim = vm.kernel.register_program(
        "malware",
        Box::new(|| Box::new(FnProgram(|_v: &UserView<'_>| UserOp::Compute(100_000)))),
    );
    let victim_raw = victim.0;
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            let mut vpid = 0u64;
            Box::new(FnProgram(move |v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Spawn, &[victim_raw, 1000]),
                    2 => {
                        vpid = v.last_ret;
                        UserOp::sys(Sysno::Nanosleep, &[50_000_000])
                    }
                    3 => UserOp::sys(Sysno::ListProcs, &[]),
                    4 => UserOp::Emit("ps-before".into(), format!("{}", v.procs.len())),
                    5 => UserOp::sys(Sysno::InstallModule, &[rk, vpid]),
                    6 => UserOp::sys(Sysno::ListProcs, &[]),
                    7 => UserOp::Emit("ps-after".into(), format!("{}", v.procs.len())),
                    _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);
    vm.run_for(Duration::from_millis(500));

    let mail = vm.kernel.drain_mailbox(hypertap_guestos::task::Pid(1));
    let grab = |tag: &str| -> usize {
        mail.iter().find(|e| e.tag == tag).and_then(|e| e.detail.parse().ok()).unwrap_or(0)
    };
    let (before, after) = (grab("ps-before"), grab("ps-after"));

    let now = vm.now();
    let (vmstate, kvm) = vm.machine.parts_mut();
    let hrkd = kvm.em.auditor_mut::<Hrkd>().expect("registered");
    let vmi_report = hrkd.cross_validate_vmi(vmstate, now);
    let in_guest_report = hrkd.cross_validate_in_guest(vmstate, now, after.saturating_sub(3));
    // `after` counts init + kflushd×2 + victim-if-visible; user processes
    // with address spaces are init + victim, so subtract the kthreads and
    // ninja-less baseline of 3 non-user rows (init itself has a PDBA and is
    // counted on both sides).
    let detected = !vmi_report.is_clean() || !in_guest_report.is_clean();
    (detected, before, after)
}

fn main() {
    println!("Table II — real-world rootkits evaluated with HRKD\n");
    let mut rows = Vec::new();
    let mut all_detected = true;
    for spec in all_rootkits() {
        let (detected, before, after) = run_rootkit(&spec);
        all_detected &= detected;
        let mechanisms =
            spec.mechanisms.iter().map(|m| m.to_string()).collect::<Vec<_>>().join(", ");
        rows.push(vec![
            spec.name.clone(),
            spec.target_os.clone(),
            mechanisms,
            format!("{before} -> {after}"),
            if detected { "DETECTED".into() } else { "missed".into() },
        ]);
    }
    println!(
        "{}",
        table(&["Rootkit", "Target OS", "Hiding technique(s)", "in-guest ps rows", "HRKD"], &rows)
    );
    println!(
        "{}",
        if all_detected {
            "All rootkits detected (paper: all were detected)."
        } else {
            "MISMATCH: some rootkits evaded HRKD."
        }
    );
}
