//! Fig. 4 — Guest OS Hang Detection coverage.
//!
//! Runs the fault-injection campaign (374 lock sites × 4 workloads ×
//! {non-preemptible, preemptible} × {transient, persistent}) and prints the
//! per-cell outcome breakdown plus the headline statistics the paper
//! reports (≈82 % manifestation, 99.8 % detection coverage, 18–26 % partial
//! hangs).
//!
//! Flags:
//!   --stride N   inject every N-th site (default 16; 1 = the full 374)
//!   --seed S     campaign seed (default 42)
//!   --threads N  worker threads (default: all cores)
//!   --save PATH  write per-trial results as JSON lines (fig5 reads these)
//!   --quick      tiny smoke campaign (stride 94, Hanoi+make -j2 only)

use hypertap_bench::cli::Args;
use hypertap_bench::report::{pct, table};
use hypertap_faultinject::campaign::{default_campaign, fig4_rows, run_campaign};
use hypertap_faultinject::spec::Workload;
use std::io::Write as _;

fn main() {
    let args = Args::parse();
    let mut cfg = default_campaign(args.get("stride", 16));
    cfg.seed = args.get("seed", 42);
    cfg.threads = args.get("threads", 0);
    if args.has("quick") {
        cfg = default_campaign(94);
        cfg.workloads = vec![Workload::Hanoi, Workload::MakeJ2];
    }
    let total = cfg.specs().len();
    eprintln!(
        "fig4: {} trials ({} sites x {} workloads x {} kernels x {} persistence)",
        total,
        cfg.sites.len(),
        cfg.workloads.len(),
        cfg.preemption.len(),
        cfg.persistence.len()
    );
    let results = run_campaign(&cfg, |done, total| {
        if done % 32 == 0 || done == total {
            eprint!("\r  {done}/{total} trials");
            let _ = std::io::stderr().flush();
        }
    });
    eprintln!();

    if let Some(path) = args.get_str("save") {
        let mut f = std::fs::File::create(path).expect("create results file");
        for r in &results {
            writeln!(f, "{}", serde_json::to_string(r).expect("serialise")).expect("write");
        }
        eprintln!("saved {} results to {path}", results.len());
    }

    println!("Fig. 4 — Guest OS Hang Detection coverage\n");
    let rows = fig4_rows(&results);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                if r.preemptible { "preempt" } else { "no-preempt" }.into(),
                if r.persistent { "persistent" } else { "transient" }.into(),
                r.trials.to_string(),
                r.not_activated.to_string(),
                r.not_manifested.to_string(),
                r.not_detected.to_string(),
                r.partial_hang.to_string(),
                r.full_hang.to_string(),
                pct(r.partial_fraction()),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "workload",
                "kernel",
                "fault",
                "trials",
                "not act.",
                "not manif.",
                "not det.",
                "partial",
                "full",
                "partial%"
            ],
            &table_rows
        )
    );

    // Headline statistics, as the paper aggregates them.
    let activated: usize = results.iter().filter(|r| r.activations > 0).count();
    let manifested: usize = results.iter().filter(|r| r.outcome.manifested()).count();
    let detected: usize = results.iter().filter(|r| r.outcome.detected()).count();
    let partial: usize = rows.iter().map(|r| r.partial_hang).sum();
    println!("trials:                {}", results.len());
    println!(
        "manifestation rate:    {} of activated (paper: ~82%)",
        pct(manifested as f64 / activated.max(1) as f64)
    );
    println!(
        "detection coverage:    {} of manifested (paper: 99.8%)",
        pct(detected as f64 / manifested.max(1) as f64)
    );
    println!(
        "partial hangs:         {} of detected (paper: 18-26%)",
        pct(partial as f64 / detected.max(1) as f64)
    );
}
