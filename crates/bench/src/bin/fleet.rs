//! Fleet-scale throughput: a 64-VM monitored fleet stepped on 1/2/4/8
//! worker threads, wall-clock and events/sec per worker count, written
//! to `BENCH_fleet.json` at the repository root.
//!
//! Every worker count runs the *same* campaign (same base seed, same
//! per-VM sampled scenarios), and the per-VM outputs are asserted
//! identical across counts before the numbers are reported — the
//! speedup is measured over runs already proven equivalent. The
//! realizable speedup is bounded by `host_parallelism` (recorded in the
//! report): on a single-core host all worker counts serialize onto one
//! CPU and the wall-clock stays flat; the ≥3x-at-8-workers target is
//! meaningful on hosts with 8+ cores.
//!
//! ```text
//! cargo run --release -p hypertap-bench --bin fleet -- --vms 64
//! ```

use hypertap_bench::cli::Args;
use hypertap_faultinject::fleet::{run_fleet_campaign, FleetCampaign};
use serde::Value;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args = Args::parse();
    let vms = args.get::<usize>("vms", 64);
    let seed = args.get::<u64>("seed", 0xF1EE7);

    let host_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("== HyperTap fleet throughput ==");
    println!("{vms} VMs   base seed: {seed:#x}   host parallelism: {host_parallelism}");

    let campaign = FleetCampaign::quick(seed);
    let mut rows: Vec<Value> = Vec::new();
    let mut baseline_report = None;
    let mut wall_at_1 = 0.0f64;
    let mut speedup_at_8 = 0.0f64;

    for workers in WORKER_COUNTS {
        let start = Instant::now();
        let (report, summary) = run_fleet_campaign(&campaign, vms, workers);
        let wall = start.elapsed().as_secs_f64();

        // Determinism gate: every worker count must reproduce the
        // 1-worker run's per-VM findings and stats bit for bit.
        match &baseline_report {
            None => {
                wall_at_1 = wall;
                baseline_report = Some(report);
            }
            Some(base) => {
                for (got, want) in report.per_vm.iter().zip(base.per_vm.iter()) {
                    assert_eq!(got.vm, want.vm, "VM order differs at {workers} workers");
                    assert_eq!(
                        got.findings, want.findings,
                        "vm {:?} findings differ at {workers} workers",
                        got.vm
                    );
                    assert_eq!(
                        got.stats, want.stats,
                        "vm {:?} stats differ at {workers} workers",
                        got.vm
                    );
                }
            }
        }

        let events_per_sec = summary.events_in as f64 / wall;
        let events_per_sec_per_worker = events_per_sec / workers as f64;
        let speedup = wall_at_1 / wall;
        if workers == 8 {
            speedup_at_8 = speedup;
        }
        println!(
            "  {workers} workers: {:>7.1} ms wall  {:>12.0} events/sec \
             ({:>11.0}/worker)  {:>5.2}x vs 1 worker",
            wall * 1e3,
            events_per_sec,
            events_per_sec_per_worker,
            speedup
        );
        rows.push(Value::Object(vec![
            ("workers".to_string(), Value::U64(workers as u64)),
            ("wall_ms".to_string(), Value::F64(wall * 1e3)),
            ("events_in".to_string(), Value::U64(summary.events_in)),
            ("events_per_sec".to_string(), Value::F64(events_per_sec)),
            ("events_per_sec_per_worker".to_string(), Value::F64(events_per_sec_per_worker)),
            ("speedup_vs_1_worker".to_string(), Value::F64(speedup)),
            (
                "findings".to_string(),
                Value::U64(summary.findings_by_auditor.iter().map(|(_, n)| n).sum()),
            ),
            ("halted_vms".to_string(), Value::U64(summary.halted)),
        ]));
    }

    // The ≥3x-at-8-workers target only means anything when the host can
    // actually run 8 workers in parallel; on smaller hosts the expectation
    // is recorded as skipped instead of silently passing or flaking.
    let enforced = host_parallelism >= 8;
    let status = if !enforced {
        format!("skipped (host_parallelism {host_parallelism} < 8)")
    } else if speedup_at_8 >= 3.0 {
        "met".to_string()
    } else {
        "missed".to_string()
    };
    println!(
        "  expectation: >=3.00x at 8 workers — {status} (measured {speedup_at_8:.2}x, \
         host parallelism {host_parallelism})"
    );
    let expectation = Value::Object(vec![
        ("min_speedup_at_8_workers".to_string(), Value::F64(3.0)),
        ("measured_speedup_at_8_workers".to_string(), Value::F64(speedup_at_8)),
        ("enforced".to_string(), Value::Bool(enforced)),
        ("status".to_string(), Value::Str(status.clone())),
    ]);

    let report = Value::Object(vec![
        (
            "generated_by".to_string(),
            Value::Str("cargo run --release -p hypertap-bench --bin fleet".to_string()),
        ),
        (
            "note".to_string(),
            Value::Str(
                "wall-clock per worker count over the same deterministic campaign \
                 (per-VM findings and stats asserted identical across counts before \
                 reporting); realizable speedup is bounded by host_parallelism — on \
                 a 1-core host all counts serialize and the curve is flat, so the \
                 3x-at-8-workers expectation is only enforced on 8+-way hosts"
                    .to_string(),
            ),
        ),
        ("vms".to_string(), Value::U64(vms as u64)),
        ("base_seed".to_string(), Value::U64(seed)),
        ("host_parallelism".to_string(), Value::U64(host_parallelism as u64)),
        ("expectation".to_string(), expectation),
        ("runs".to_string(), Value::Array(rows)),
    ]);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(path, json + "\n").expect("write BENCH_fleet.json");
    println!("\nwrote {path}");

    assert!(
        !enforced || speedup_at_8 >= 3.0,
        "8-worker speedup {speedup_at_8:.2}x below the 3x target on a \
         {host_parallelism}-way host"
    );
}
