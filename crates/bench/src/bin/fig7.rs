//! Fig. 7 — performance overhead of the HyperTap sample monitors on the
//! UnixBench-style suite, under three configurations (HRKD only, HT-Ninja
//! only, all three auditors), relative to an unmonitored baseline.

use hypertap_bench::cli::Args;
use hypertap_bench::report::{pct, table};
use hypertap_bench::ubench::{measure_counted, HotpathStats, MonitorConfig};
use hypertap_workloads::unixbench::Ubench;

fn main() {
    let args = Args::parse();
    let runs: usize = args.get("runs", 1);
    // Opt-in: host-side cache counters never appear in the default output,
    // which must stay byte-identical with the TLB enabled or disabled.
    let cache_stats = args.has("cache-stats");
    println!("Fig. 7 — monitoring overhead on the UnixBench-style suite");
    println!(
        "(relative slowdown vs unmonitored baseline; {} run(s) each; deterministic sim)\n",
        runs
    );

    let mut rows = Vec::new();
    let mut per_class: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    let mut sum_check: Vec<(f64, f64)> = Vec::new();
    let mut totals = HotpathStats::default();
    for bench in Ubench::suite() {
        let (row, stats) = measure_counted(bench);
        totals.merge(&stats);
        per_class.entry(bench.class()).or_default().push(row.all);
        sum_check.push((row.all, row.hrkd + row.htninja));
        rows.push(vec![
            bench.to_string(),
            format!("{:.3}s", row.baseline.as_secs_f64()),
            pct(row.hrkd),
            pct(row.htninja),
            pct(row.all),
        ]);
    }
    println!("{}", table(&["benchmark", "baseline", "HRKD", "HT-Ninja", "all three"], &rows));

    println!("per-class mean overhead (all three auditors):");
    let mut class_rows = Vec::new();
    for (class, v) in &per_class {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        class_rows.push(vec![class.to_string(), pct(mean)]);
    }
    println!("{}", table(&["class", "overhead"], &class_rows));

    let (combined, summed): (Vec<f64>, Vec<f64>) = sum_check.into_iter().unzip();
    let mean_combined = combined.iter().sum::<f64>() / combined.len() as f64;
    let mean_summed = summed.iter().sum::<f64>() / summed.len() as f64;
    println!(
        "unified-logging effect: combined overhead {} vs sum of individual overheads {}",
        pct(mean_combined),
        pct(mean_summed)
    );

    if cache_stats {
        println!("\nhost-side hot-path counters (all runs, host bookkeeping only):");
        println!(
            "  TLB: {} lookups, {} hits ({:.2}% hit rate), {} fills, {} flushes",
            totals.tlb.lookups(),
            totals.tlb.hits,
            100.0 * totals.tlb.hit_rate(),
            totals.tlb.fills,
            totals.tlb.flushes
        );
        println!(
            "  EM:  {} sync deliveries, {} container enqueues, {} fast-skipped, {} unclaimed",
            totals.em.sync_delivered,
            totals.em.container_enqueued,
            totals.em.fast_skipped,
            totals.em.unclaimed
        );
    }
    let _ = MonitorConfig::ALL;
}
