//! Fig. 7 — performance overhead of the HyperTap sample monitors on the
//! UnixBench-style suite, under three configurations (HRKD only, HT-Ninja
//! only, all three auditors), relative to an unmonitored baseline.

use hypertap_bench::cli::Args;
use hypertap_bench::report::{pct, table};
use hypertap_bench::ubench::{measure, MonitorConfig};
use hypertap_workloads::unixbench::Ubench;

fn main() {
    let args = Args::parse();
    let runs: usize = args.get("runs", 1);
    println!("Fig. 7 — monitoring overhead on the UnixBench-style suite");
    println!("(relative slowdown vs unmonitored baseline; {} run(s) each; deterministic sim)\n", runs);

    let mut rows = Vec::new();
    let mut per_class: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    let mut sum_check: Vec<(f64, f64)> = Vec::new();
    for bench in Ubench::suite() {
        let row = measure(bench);
        per_class.entry(bench.class()).or_default().push(row.all);
        sum_check.push((row.all, row.hrkd + row.htninja));
        rows.push(vec![
            bench.to_string(),
            format!("{:.3}s", row.baseline.as_secs_f64()),
            pct(row.hrkd),
            pct(row.htninja),
            pct(row.all),
        ]);
    }
    println!(
        "{}",
        table(&["benchmark", "baseline", "HRKD", "HT-Ninja", "all three"], &rows)
    );

    println!("per-class mean overhead (all three auditors):");
    let mut class_rows = Vec::new();
    for (class, v) in &per_class {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        class_rows.push(vec![class.to_string(), pct(mean)]);
    }
    println!("{}", table(&["class", "overhead"], &class_rows));

    let (combined, summed): (Vec<f64>, Vec<f64>) = sum_check.into_iter().unzip();
    let mean_combined = combined.iter().sum::<f64>() / combined.len() as f64;
    let mean_summed = summed.iter().sum::<f64>() / summed.len() as f64;
    println!(
        "unified-logging effect: combined overhead {} vs sum of individual overheads {}",
        pct(mean_combined),
        pct(mean_summed)
    );
    let _ = MonitorConfig::ALL;
}
