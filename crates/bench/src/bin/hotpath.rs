//! Hot-path before/after report: measures the translation path, guest
//! memory streaming and Event Multiplexer fanout with the optimisations on
//! and off, then writes `BENCH_hotpath.json` at the repository root.
//!
//! "Before" numbers are taken on the same build by disabling the cache in
//! question (raw page-table walk instead of the TLB, subscribed delivery
//! instead of the combined-mask fast skip), so the comparison isolates the
//! hot-path change from unrelated compiler or machine drift.
//!
//! ```text
//! cargo run --release -p hypertap-bench --bin hotpath
//! ```

use criterion::{black_box, Criterion};
use hypertap_bench::seedpath::{self, SeedMemory};
use hypertap_core::audit::CountingAuditor;
use hypertap_core::em::EventMultiplexer;
use hypertap_core::event::{Event, EventClass, EventKind, EventMask, VmId};
use hypertap_hvsim::clock::SimTime;
use hypertap_hvsim::cpu::CpuCtx;
use hypertap_hvsim::ept::Ept;
use hypertap_hvsim::exit::{ExitAction, VcpuSnapshot, VmExit};
use hypertap_hvsim::machine::{Hypervisor, Machine, VmConfig, VmState};
use hypertap_hvsim::mem::{Gfn, Gpa, GuestMemory, Gva, PAGE_SIZE};
use hypertap_hvsim::paging::{self, AddressSpaceBuilder, FrameAllocator};
use hypertap_hvsim::tlb::Tlb;
use hypertap_hvsim::vcpu::{Vcpu, VcpuId};
use rand::{Rng, SeedableRng};
use serde::Value;

const MEM_SIZE: u64 = 64 << 20;
const MAPPED_PAGES: u64 = 512;
const STREAM_LEN: u64 = 4096;

struct NoHv;
impl Hypervisor for NoHv {
    fn handle_exit(&mut self, _vm: &mut VmState, _exit: &VmExit) -> ExitAction {
        ExitAction::Resume
    }
}

fn address_space(mem: &mut GuestMemory) -> Gpa {
    let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new(MEM_SIZE / PAGE_SIZE));
    let mut asb = AddressSpaceBuilder::new(mem, &mut falloc);
    asb.map_fresh_range(mem, &mut falloc, Gva::new(0), MAPPED_PAGES);
    asb.pdba()
}

fn addresses(sequential: bool) -> Vec<Gva> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    (0..STREAM_LEN)
        .map(|i| {
            if sequential {
                Gva::new((i * 8) % (MAPPED_PAGES * PAGE_SIZE))
            } else {
                Gva::new(
                    rng.gen_range(0..MAPPED_PAGES) * PAGE_SIZE + rng.gen_range(0..PAGE_SIZE - 8),
                )
            }
        })
        .collect()
}

/// Seed-era walk vs current walk vs TLB, no CPU model around it.
fn bench_translate(c: &mut Criterion) -> Vec<(String, f64)> {
    let mut group = c.benchmark_group("translate");
    let mut hit_rates = Vec::new();
    for (label, sequential) in [("sequential", true), ("random", false)] {
        let gvas = addresses(sequential);

        let mut seed = SeedMemory::new(MEM_SIZE);
        let seed_pdba = seedpath::seed_address_space(&mut seed, MAPPED_PAGES);
        group.bench_function(format!("seed_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for gva in &gvas {
                    acc ^= seedpath::seed_walk(&seed, seed_pdba, *gva).value();
                }
                black_box(acc)
            })
        });

        let mut mem = GuestMemory::new(MEM_SIZE);
        let pdba = address_space(&mut mem);
        let ept = Ept::new();
        group.bench_function(format!("walk_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for gva in &gvas {
                    acc ^= paging::walk(&mem, pdba, *gva).unwrap().value();
                }
                black_box(acc)
            })
        });
        let mut tlb = Tlb::new();
        group.bench_function(format!("tlb_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for gva in &gvas {
                    acc ^= tlb.translate(&mut mem, &ept, pdba, *gva).unwrap().0.value();
                }
                black_box(acc)
            })
        });
        hit_rates.push((format!("tlb_{label}"), tlb.stats().hit_rate()));
    }
    group.finish();
    hit_rates
}

/// Full MMU path: the seed data path (HashMap frames + uncached walk +
/// EPT lookup per access) vs `CpuCtx::read_u64_gva` with the TLB disabled
/// and enabled.
fn bench_mem_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem_stream");
    for (label, sequential) in [("sequential", true), ("random", false)] {
        let gvas = addresses(sequential);

        let mut seed = SeedMemory::new(MEM_SIZE);
        let seed_pdba = seedpath::seed_address_space(&mut seed, MAPPED_PAGES);
        let ept = Ept::new();
        group.bench_function(format!("{label}_seed"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for gva in &gvas {
                    acc ^= seedpath::seed_read_u64_gva(&seed, &ept, seed_pdba, *gva);
                }
                black_box(acc)
            })
        });

        for (mode, tlb) in [("walk", false), ("tlb", true)] {
            let mut m = Machine::new(VmConfig::new(1, MEM_SIZE).with_tlb(tlb), NoHv);
            let pdba = address_space(&mut m.vm_mut().mem);
            m.vm_mut().vcpu_mut(VcpuId(0)).set_cr3(pdba);
            group.bench_function(format!("{label}_{mode}"), |b| {
                b.iter(|| {
                    let (vm, hv) = m.parts_mut();
                    let mut cpu = CpuCtx::new(vm, hv, VcpuId(0));
                    let mut acc = 0u64;
                    for gva in &gvas {
                        acc ^= cpu.read_u64_gva(*gva).unwrap();
                    }
                    black_box(acc)
                })
            });
        }
    }
    group.finish();
}

fn event() -> Event {
    Event {
        vm: VmId(0),
        vcpu: VcpuId(0),
        time: SimTime::from_millis(1),
        kind: EventKind::ProcessSwitch { new_pdba: Gpa::new(0x1000) },
        state: VcpuSnapshot::capture(&Vcpu::new(VcpuId(0))),
    }
}

/// EM fanout: a dispatched-and-delivered event vs one the combined
/// subscription mask rejects before any per-auditor work. Returns a
/// metrics snapshot of a separate instrumented dispatch run (the bench
/// arms themselves run uninstrumented so their numbers stay clean).
fn bench_em(c: &mut Criterion) -> Value {
    let mut group = c.benchmark_group("em_fanout");
    let ev = event();

    let mut em = EventMultiplexer::new();
    for _ in 0..4 {
        em.register(Box::new(CountingAuditor::new()));
    }
    let mut vm = Machine::new(VmConfig::new(1, 1 << 20), NoHv).into_parts().0;
    group
        .bench_function("dispatch_subscribed", |b| b.iter(|| em.dispatch(&mut vm, black_box(&ev))));

    let mut em = EventMultiplexer::new();
    for _ in 0..4 {
        em.register(Box::new(CountingAuditor::with_mask(EventMask::only(EventClass::Syscall))));
    }
    let mut vm = Machine::new(VmConfig::new(1, 1 << 20), NoHv).into_parts().0;
    group.bench_function("dispatch_fast_skip", |b| b.iter(|| em.dispatch(&mut vm, black_box(&ev))));
    assert!(em.stats().fast_skipped > 0, "fast path never engaged");
    group.finish();

    // Separate instrumented pass: 1024 dispatches with the dispatch-latency
    // histogram on, exported through the registry (the report embeds the
    // same JSON schema `--metrics` emits elsewhere).
    let mut em = EventMultiplexer::new();
    em.register(Box::new(CountingAuditor::new()));
    em.set_metrics_enabled(true);
    let mut vm = Machine::new(VmConfig::new(1, 1 << 20), NoHv).into_parts().0;
    for _ in 0..1024 {
        em.dispatch(&mut vm, black_box(&ev));
    }
    let mut reg = hypertap_core::metrics::MetricsRegistry::new();
    em.collect_metrics(&mut reg);
    use serde::Serialize as _;
    reg.to_value()
}

fn lookup(results: &[(String, f64)], id: &str) -> f64 {
    results
        .iter()
        .find(|(name, _)| name == id)
        .unwrap_or_else(|| panic!("missing benchmark {id}"))
        .1
}

fn main() {
    let mut c = Criterion::default();
    let hit_rates = bench_translate(&mut c);
    bench_mem_stream(&mut c);
    let em_metrics = bench_em(&mut c);

    let results = c.results();
    let speedup_pairs = [
        ("translate_sequential", "translate/seed_sequential", "translate/tlb_sequential"),
        ("translate_random", "translate/seed_random", "translate/tlb_random"),
        (
            "translate_sequential_vs_flat_walk",
            "translate/walk_sequential",
            "translate/tlb_sequential",
        ),
        ("mem_stream_sequential", "mem_stream/sequential_seed", "mem_stream/sequential_tlb"),
        ("mem_stream_random", "mem_stream/random_seed", "mem_stream/random_tlb"),
        (
            "mem_stream_sequential_vs_flat_walk",
            "mem_stream/sequential_walk",
            "mem_stream/sequential_tlb",
        ),
        ("em_fast_skip", "em_fanout/dispatch_subscribed", "em_fanout/dispatch_fast_skip"),
    ];

    let benchmarks =
        Value::Object(results.iter().map(|(name, ns)| (name.clone(), Value::F64(*ns))).collect());
    let speedups = Value::Object(
        speedup_pairs
            .iter()
            .map(|(key, before, after)| {
                let before_ns = lookup(results, before);
                let after_ns = lookup(results, after);
                (
                    key.to_string(),
                    Value::Object(vec![
                        ("before_ns".to_string(), Value::F64(before_ns)),
                        ("after_ns".to_string(), Value::F64(after_ns)),
                        ("speedup".to_string(), Value::F64(before_ns / after_ns)),
                    ]),
                )
            })
            .collect(),
    );
    let report = Value::Object(vec![
        (
            "generated_by".to_string(),
            Value::Str("cargo run --release -p hypertap-bench --bin hotpath".to_string()),
        ),
        (
            "note".to_string(),
            Value::Str(
                "median ns/iter over one 4096-access GVA stream (translate, mem_stream) \
                 or one event dispatch (em_fanout); 'before' arms replay the seed data \
                 path (HashMap frames + uncached walk) or disable the cache under test, \
                 on the same build"
                    .to_string(),
            ),
        ),
        ("stream_accesses".to_string(), Value::U64(STREAM_LEN)),
        ("benchmarks_ns_per_iter".to_string(), benchmarks),
        (
            "tlb_hit_rates".to_string(),
            Value::Object(
                hit_rates.into_iter().map(|(name, rate)| (name, Value::F64(rate))).collect(),
            ),
        ),
        ("speedups".to_string(), speedups),
        ("em_metrics".to_string(), em_metrics),
    ]);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(path, json + "\n").expect("write BENCH_hotpath.json");
    println!("\nwrote {path}");

    for (key, before, after) in speedup_pairs {
        let s = lookup(results, before) / lookup(results, after);
        println!("  {key:<24} {s:>6.2}x");
    }
}
