//! Table I — summary of guest internal events and related VM Exit types.
//!
//! The rows are *generated from the interception engines themselves* (each
//! engine self-describes its Table I contribution), so this output is
//! guaranteed to match what the code actually implements.

use hypertap_bench::report::table;
use hypertap_core::intercept::{
    FastSyscallEngine, FineGrainedEngine, IntSyscallEngine, IoEngine, ProcessSwitchEngine,
    ThreadSwitchEngine,
};
use hypertap_core::kvm::Kvm;
use hypertap_hvsim::machine::{Machine, VmConfig};

fn main() {
    let mut machine = Machine::new(VmConfig::new(1, 1 << 20), Kvm::new());
    let (vm, kvm) = machine.parts_mut();
    kvm.install(vm, Box::new(ProcessSwitchEngine::new()));
    kvm.install(vm, Box::new(ThreadSwitchEngine::new()));
    kvm.install(vm, Box::new(IntSyscallEngine::new()));
    kvm.install(vm, Box::new(FastSyscallEngine::new()));
    kvm.install(vm, Box::new(IoEngine::new()));
    kvm.install(vm, Box::new(FineGrainedEngine::new()));

    println!("Table I — Summary of guest internal events and related VM Exit types\n");
    let rows: Vec<Vec<String>> = kvm
        .table1()
        .into_iter()
        .map(|r| {
            vec![
                r.category.to_string(),
                r.guest_event.to_string(),
                r.vm_exit.to_string(),
                r.invariant.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["Monitoring category", "Guest event", "Related VM Exit", "Architectural invariant"],
            &rows
        )
    );
}
