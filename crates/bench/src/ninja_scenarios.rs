//! Trial runner for the three-Ninjas detection experiments (paper §VIII-C).
//!
//! One trial = one freshly booted VM with the chosen Ninja variant
//! monitoring it, a crowd of `spam_idles` innocent processes, and a single
//! privilege-escalation attack launched at a seed-randomised phase. The
//! trial reports whether the monitor caught the attack.

use hypertap_attacks::exploit::{AttackConfig, AttackProgram, ATTACK_DONE_TAG};
use hypertap_attacks::rootkits;
use hypertap_guestos::program::{FnProgram, UserOp, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::clock::Duration;
use hypertap_hvsim::machine::RunExit;
use hypertap_monitors::harness::{EngineSelection, TapVm};
use hypertap_monitors::ninja::hninja::HNinja;
use hypertap_monitors::ninja::htninja::HtNinja;
use hypertap_monitors::ninja::oninja::{ONinja, DETECT_TAG};
use hypertap_monitors::ninja::rules::NinjaRules;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which Ninja is on duty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NinjaVariant {
    /// The original in-guest poller with the given check interval
    /// (0 = continuous scanning, the paper's "0-second checking interval").
    ONinja {
        /// Interval between scans, nanoseconds.
        interval_ns: u64,
    },
    /// Hypervisor-level passive VMI poller.
    HNinja {
        /// Polling interval.
        interval: Duration,
    },
    /// HyperTap's active version.
    HtNinja,
}

/// Attack style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackStyle {
    /// Escalate, act, exit fast — no rootkit.
    Transient,
    /// Escalate, act, hide with a rootkit (the paper's combined attack).
    RootkitCombined,
}

/// One trial's specification.
#[derive(Debug, Clone, Copy)]
pub struct NinjaTrial {
    /// The monitor under test.
    pub variant: NinjaVariant,
    /// Number of innocent idle processes spawned before the attack.
    pub spam_idles: usize,
    /// Attack style.
    pub attack: AttackStyle,
    /// Seed (controls the attack's launch phase).
    pub seed: u64,
}

/// One timeline event observed during a traced trial (Fig. 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time, nanoseconds.
    pub time_ns: u64,
    /// What happened.
    pub what: String,
}

/// Runs one trial; returns whether the monitor detected the attack.
pub fn run_ninja_trial(trial: &NinjaTrial) -> bool {
    run_trial_inner(trial, false, false).0
}

/// Runs one trial with full event tracing (attack milestones + monitor
/// checks), for the Fig. 6 timelines.
pub fn run_ninja_trial_traced(
    variant: NinjaVariant,
    spam_idles: usize,
    attack: AttackStyle,
    seed: u64,
) -> (Vec<TraceEvent>, bool) {
    let trial = NinjaTrial { variant, spam_idles, attack, seed };
    let (detected, events, _) = run_trial_inner(&trial, true, false);
    (events, detected)
}

/// Runs one traced trial with metrics instrumentation on, additionally
/// returning the end-of-run metrics snapshot (used by `three_ninjas
/// --metrics`).
pub fn run_ninja_trial_instrumented(
    variant: NinjaVariant,
    spam_idles: usize,
    attack: AttackStyle,
    seed: u64,
) -> (Vec<TraceEvent>, bool, hypertap_core::metrics::MetricsRegistry) {
    let trial = NinjaTrial { variant, spam_idles, attack, seed };
    let (detected, events, reg) = run_trial_inner(&trial, true, true);
    (events, detected, reg.expect("metrics requested"))
}

fn run_trial_inner(
    trial: &NinjaTrial,
    traced: bool,
    metrics: bool,
) -> (bool, Vec<TraceEvent>, Option<hypertap_core::metrics::MetricsRegistry>) {
    let mut rng = StdRng::seed_from_u64(trial.seed);
    let phase_ns: u64 = rng.gen_range(0..1_000_000_000);

    let mut builder = TapVm::builder().vcpus(2).memory(512 << 20).metrics(metrics);
    builder = match trial.variant {
        NinjaVariant::ONinja { .. } => builder.engines(EngineSelection::none()),
        NinjaVariant::HNinja { interval } => builder
            .engines(EngineSelection::none())
            .em_tick(Duration::from_millis(1))
            .hninja(NinjaRules::new(), interval),
        NinjaVariant::HtNinja => builder.htninja(NinjaRules::new()),
    };
    let mut vm = builder.build();

    // Guest-side programs.
    let rk = vm.kernel.register_module(rootkits::rootkit_by_name("SucKIT").expect("table 2"));
    let mut attack_cfg = match trial.attack {
        AttackStyle::Transient => AttackConfig::transient(),
        AttackStyle::RootkitCombined => AttackConfig::rootkit_combined(rk),
    };
    attack_cfg.verbose = traced;
    let attack = vm.kernel.register_program(
        "exploit",
        Box::new(move || Box::new(AttackProgram::new(attack_cfg.clone()))),
    );
    let idle = vm
        .kernel
        .register_program("idle", Box::new(|| hypertap_workloads::idle_program(3_600_000_000_000)));
    let oninja_prog = match trial.variant {
        NinjaVariant::ONinja { interval_ns } => Some(vm.kernel.register_program(
            "ninja",
            Box::new(move || {
                let n = ONinja::new(NinjaRules::new(), interval_ns, false);
                Box::new(if traced { n.with_trace() } else { n })
            }),
        )),
        _ => None,
    };

    // The attacker's shell: settle, spawn spam, wait out the phase delay,
    // launch the exploit.
    let (attack_raw, idle_raw) = (attack.0, idle.0);
    let spam = trial.spam_idles as u64;
    let shell = vm.kernel.register_program(
        "sh",
        Box::new(move || {
            let mut stage = 0u64;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                if stage == 1 {
                    return UserOp::sys(Sysno::Nanosleep, &[200_000_000]);
                }
                if stage <= 1 + spam {
                    return UserOp::sys(Sysno::Spawn, &[idle_raw, u64::MAX]);
                }
                if stage == 2 + spam {
                    return UserOp::sys(Sysno::Nanosleep, &[300_000_000 + phase_ns]);
                }
                if stage == 3 + spam {
                    return UserOp::sys(Sysno::Spawn, &[attack_raw, u64::MAX]);
                }
                UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000])
            }))
        }),
    );

    let (shell_raw, oninja_raw) = (shell.0, oninja_prog.map(|p| p.0));
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0u64;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match (stage, oninja_raw) {
                    (1, Some(n)) => UserOp::sys(Sysno::Spawn, &[n, 0]),
                    (1, None) | (2, Some(_)) => UserOp::sys(Sysno::Spawn, &[shell_raw, 1000]),
                    _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);

    // Run until the attack completes (plus a short grace so a scan that is
    // mid-flight when the attack ends can finish its current check).
    let mut detected = false;
    let mut attack_done = false;
    let mut grace_left = 3u32;
    let mut events: Vec<TraceEvent> = Vec::new();
    for _ in 0..4000 {
        let run = vm.run_for(Duration::from_millis(5));
        for (_pid, ev) in vm.kernel.drain_all_mailboxes() {
            if ev.tag == DETECT_TAG {
                detected = true;
            }
            if ev.tag == ATTACK_DONE_TAG {
                attack_done = true;
            }
            if traced {
                let what = match ev.tag.as_str() {
                    "attack-escalated" => Some("ATTACK: escalated to root".to_string()),
                    "attack-hidden" => Some("ATTACK: hidden by rootkit".to_string()),
                    t if t == ATTACK_DONE_TAG => Some("ATTACK: finished, exiting".to_string()),
                    "oninja-scan" => Some("O-Ninja: scan begins".to_string()),
                    t if t == DETECT_TAG => Some(format!("O-Ninja: DETECTED pid {}", ev.detail)),
                    _ => None,
                };
                if let Some(what) = what {
                    events.push(TraceEvent { time_ns: ev.time.as_nanos(), what });
                }
            }
        }
        if attack_done {
            grace_left = grace_left.saturating_sub(1);
            if grace_left == 0 {
                break;
            }
        }
        if run == RunExit::AllIdle || run == RunExit::Shutdown {
            break;
        }
    }
    let detected = match trial.variant {
        NinjaVariant::ONinja { .. } => detected,
        NinjaVariant::HNinja { .. } => {
            let n = vm.auditor::<HNinja>().expect("registered");
            if traced {
                for t in n.scan_times() {
                    events.push(TraceEvent {
                        time_ns: t.as_nanos(),
                        what: "H-Ninja: checks the task list".to_string(),
                    });
                }
                for d in n.detections() {
                    events.push(TraceEvent {
                        time_ns: d.time.as_nanos(),
                        what: format!("H-Ninja: DETECTED pid {} ({})", d.pid, d.comm),
                    });
                }
            }
            n.detections().iter().any(|d| d.comm == "exploit")
        }
        NinjaVariant::HtNinja => {
            let n = vm.auditor::<HtNinja>().expect("registered");
            if traced {
                for d in n.detections() {
                    events.push(TraceEvent {
                        time_ns: d.time.as_nanos(),
                        what: format!("HT-Ninja: DETECTED pid {} via {}", d.pid, d.via),
                    });
                }
            }
            n.detections().iter().any(|d| d.comm == "exploit")
        }
    };
    events.sort_by_key(|e| e.time_ns);
    // Trim the boring boot prefix: keep from just before the first attack
    // event.
    if traced {
        if let Some(first_attack) = events.iter().position(|e| e.what.starts_with("ATTACK")) {
            let from = first_attack.saturating_sub(2);
            events.drain(..from);
        }
    }
    let snapshot = metrics.then(|| vm.metrics_snapshot());
    (detected, events, snapshot)
}

/// Runs `trials` independent trials in parallel, returning the detection
/// probability.
pub fn detection_probability(
    variant: NinjaVariant,
    spam_idles: usize,
    attack: AttackStyle,
    trials: usize,
    seed_base: u64,
) -> f64 {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let specs: Vec<NinjaTrial> = (0..trials)
        .map(|i| NinjaTrial { variant, spam_idles, attack, seed: seed_base + i as u64 })
        .collect();
    let queue = std::sync::Mutex::new(specs);
    let detected = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let spec = queue.lock().expect("queue").pop();
                let Some(spec) = spec else { break };
                if run_ninja_trial(&spec) {
                    detected.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    detected.load(std::sync::atomic::Ordering::Relaxed) as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn htninja_always_detects() {
        for seed in 0..3 {
            let t = NinjaTrial {
                variant: NinjaVariant::HtNinja,
                spam_idles: 0,
                attack: AttackStyle::RootkitCombined,
                seed,
            };
            assert!(run_ninja_trial(&t), "HT-Ninja must catch seed {seed}");
        }
    }

    #[test]
    fn oninja_with_long_interval_misses_transient() {
        let t = NinjaTrial {
            variant: NinjaVariant::ONinja { interval_ns: 1_000_000_000 },
            spam_idles: 0,
            attack: AttackStyle::Transient,
            seed: 5,
        };
        assert!(!run_ninja_trial(&t), "a 1 s poller cannot catch a 300 µs attack");
    }
}
