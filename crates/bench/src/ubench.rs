//! UnixBench-style overhead runner (Fig. 7).
//!
//! Runs one benchmark to completion under a monitoring configuration and
//! reports the simulated completion time; relative slowdowns against the
//! unmonitored baseline reproduce the paper's Fig. 7 measurements.

use hypertap_core::em::DeliveryStats;
use hypertap_guestos::kernel::KernelConfig;
use hypertap_hvsim::clock::Duration;
use hypertap_hvsim::machine::RunExit;
use hypertap_hvsim::tlb::TlbStats;
use hypertap_monitors::goshd::GoshdConfig;
use hypertap_monitors::harness::{EngineSelection, TapVm};
use hypertap_monitors::ninja::rules::NinjaRules;
use hypertap_workloads::unixbench::{self, Ubench};
use std::fmt;

/// The monitoring configurations compared in Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorConfig {
    /// No engines, no auditors — the baseline.
    Baseline,
    /// HRKD alone (context-switch interception only).
    HrkdOnly,
    /// HT-Ninja alone (context switches + system calls).
    HtNinjaOnly,
    /// GOSHD + HRKD + HT-Ninja together over the unified logging channel.
    AllThree,
}

impl MonitorConfig {
    /// The three monitored configurations of Fig. 7 (plus the baseline).
    pub const ALL: [MonitorConfig; 4] = [
        MonitorConfig::Baseline,
        MonitorConfig::HrkdOnly,
        MonitorConfig::HtNinjaOnly,
        MonitorConfig::AllThree,
    ];
}

impl fmt::Display for MonitorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MonitorConfig::Baseline => "baseline",
            MonitorConfig::HrkdOnly => "HRKD",
            MonitorConfig::HtNinjaOnly => "HT-Ninja",
            MonitorConfig::AllThree => "HRKD+HT-Ninja+GOSHD",
        })
    }
}

/// Host-side cache counters collected from one (or several) runs: software
/// TLB hit/miss totals and Event Multiplexer delivery counters. These are
/// host bookkeeping only — they never feed back into simulated time, so
/// collecting them cannot perturb the measured overheads.
#[derive(Debug, Clone, Copy, Default)]
pub struct HotpathStats {
    /// Aggregate software-TLB counters (merged over all vCPUs).
    pub tlb: TlbStats,
    /// Event Multiplexer delivery counters.
    pub em: DeliveryStats,
}

impl HotpathStats {
    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &HotpathStats) {
        self.tlb.merge(&other.tlb);
        self.em.events_in += other.em.events_in;
        self.em.sync_delivered += other.em.sync_delivered;
        self.em.container_enqueued += other.em.container_enqueued;
        self.em.unclaimed += other.em.unclaimed;
        self.em.fast_skipped += other.em.fast_skipped;
        self.em.rhc_samples += other.em.rhc_samples;
    }
}

/// Builds and runs one benchmark under one configuration; returns the
/// simulated completion time.
///
/// # Panics
///
/// Panics if the benchmark fails to finish within the safety deadline
/// (a harness bug, not a modelled condition).
pub fn run_ubench(bench: Ubench, config: MonitorConfig) -> Duration {
    run_ubench_counted(bench, config).0
}

/// Like [`run_ubench`], but also returns the hot-path cache counters the
/// run accumulated. Reporting them must stay opt-in at the CLI level so the
/// default experiment output is byte-identical with or without the TLB.
pub fn run_ubench_counted(bench: Ubench, config: MonitorConfig) -> (Duration, HotpathStats) {
    let mut builder = TapVm::builder()
        .vcpus(2)
        .memory(512 << 20)
        .kernel(KernelConfig::new(2))
        .em_tick(Duration::from_millis(1));
    builder = match config {
        MonitorConfig::Baseline => builder.engines(EngineSelection::none()),
        MonitorConfig::HrkdOnly => builder.engines(EngineSelection::context_switch_only()).hrkd(),
        MonitorConfig::HtNinjaOnly => {
            let mut sel = EngineSelection::context_switch_only();
            sel.int_syscall = true;
            sel.fast_syscall = true;
            builder.engines(sel).htninja(NinjaRules::new())
        }
        MonitorConfig::AllThree => builder
            .engines(EngineSelection::all())
            .goshd(GoshdConfig::paper_default())
            .hrkd()
            .htninja(NinjaRules::new()),
    };
    let mut vm = builder.build();
    let driver = unixbench::install(&mut vm.kernel, bench);
    let driver_raw = driver.0;
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut started = false;
            Box::new(hypertap_guestos::program::FnProgram(
                move |_v: &hypertap_guestos::program::UserView<'_>| {
                    if !started {
                        started = true;
                        hypertap_guestos::program::UserOp::sys(
                            hypertap_guestos::syscalls::Sysno::Spawn,
                            &[driver_raw, 0],
                        )
                    } else {
                        hypertap_guestos::program::UserOp::sys(
                            hypertap_guestos::syscalls::Sysno::Waitpid,
                            &[],
                        )
                    }
                },
            ))
        }),
    );
    vm.kernel.set_init_program(init);
    let exit = vm.run_for(Duration::from_secs(600));
    assert_eq!(exit, RunExit::Shutdown, "{bench} under {config} did not finish");
    let stats =
        HotpathStats { tlb: vm.machine.vm().tlb_stats(), em: vm.machine.hypervisor().em.stats() };
    (Duration::from_nanos(vm.now().as_nanos()), stats)
}

/// Relative overhead of `with` versus `base`.
pub fn overhead(base: Duration, with: Duration) -> f64 {
    (with.as_nanos() as f64 - base.as_nanos() as f64) / base.as_nanos() as f64
}

/// Measured overheads for one benchmark across all monitored configs.
#[derive(Debug, Clone)]
pub struct UbenchRow {
    /// The benchmark.
    pub bench: Ubench,
    /// Baseline completion time.
    pub baseline: Duration,
    /// Overhead under HRKD alone.
    pub hrkd: f64,
    /// Overhead under HT-Ninja alone.
    pub htninja: f64,
    /// Overhead with all three auditors.
    pub all: f64,
}

/// Runs the full Fig. 7 matrix for one benchmark.
pub fn measure(bench: Ubench) -> UbenchRow {
    measure_counted(bench).0
}

/// Like [`measure`], but also returns the cache counters merged over all
/// four configuration runs.
pub fn measure_counted(bench: Ubench) -> (UbenchRow, HotpathStats) {
    let mut stats = HotpathStats::default();
    let mut timed = |config| {
        let (t, s) = run_ubench_counted(bench, config);
        stats.merge(&s);
        t
    };
    let baseline = timed(MonitorConfig::Baseline);
    let hrkd = overhead(baseline, timed(MonitorConfig::HrkdOnly));
    let htninja = overhead(baseline, timed(MonitorConfig::HtNinjaOnly));
    let all = overhead(baseline, timed(MonitorConfig::AllThree));
    (UbenchRow { bench, baseline, hrkd, htninja, all }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_bench_shows_ordered_overheads() {
        let row = measure(Ubench::SyscallOverhead);
        assert!(row.baseline > Duration::ZERO);
        // HRKD doesn't trap syscalls; HT-Ninja does.
        assert!(row.htninja > row.hrkd, "HT-Ninja {} vs HRKD {}", row.htninja, row.hrkd);
        // Unified logging: all three together cost about what the most
        // expensive individual monitor costs, not the sum.
        assert!(row.all < row.hrkd + row.htninja + 0.02);
        assert!(row.all >= row.htninja - 0.02);
    }

    #[test]
    fn overhead_math() {
        assert!((overhead(Duration::from_secs(10), Duration::from_secs(11)) - 0.1).abs() < 1e-9);
    }
}
