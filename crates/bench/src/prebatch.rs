//! The pre-batching Event Multiplexer delivery path, reimplemented for the
//! `pipeline` bench's before arms.
//!
//! Same idiom as [`crate::seedpath`]: the superseded algorithm is replayed
//! on the current build, so the before/after comparison isolates the
//! pipeline rework from compiler and machine drift. This is the EM fan-out
//! as it stood before the routing table and `deliver_batch`: one combined
//! subscription-mask test per event, then a scan over *every* registered
//! auditor testing its `subscriptions()` mask, a fresh finding sink per
//! delivery call, and flight absorption attempted per event.

use hypertap_core::audit::{Auditor, Finding, FindingSink};
use hypertap_core::event::{Event, EventMask, EventRef};
use hypertap_core::flight::FlightRecorder;
use hypertap_core::metrics::Histogram;
use hypertap_hvsim::machine::VmState;

/// The per-delivery sink the old path rebuilt for every call.
#[derive(Default)]
struct Sink {
    findings: Vec<Finding>,
    current: Option<EventRef>,
    suppress: bool,
}

impl FindingSink for Sink {
    fn report(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    fn request_suppress(&mut self) {
        self.suppress = true;
    }

    fn current_ref(&self) -> Option<EventRef> {
        self.current
    }
}

/// The pre-rework synchronous delivery core: auditor list + combined mask.
pub struct PreBatchEm {
    auditors: Vec<Box<dyn Auditor>>,
    combined: EventMask,
    flight: FlightRecorder,
    findings: Vec<Finding>,
    metrics_enabled: bool,
    dispatch_latency: Histogram,
    /// Events entering fan-out.
    pub events_in: u64,
    /// Per-auditor synchronous deliveries.
    pub sync_delivered: u64,
    /// Events no auditor was subscribed to.
    pub unclaimed: u64,
}

impl Default for PreBatchEm {
    fn default() -> Self {
        PreBatchEm::new()
    }
}

impl PreBatchEm {
    /// An empty delivery core with flight retention off (the bench arms
    /// measure the delivery path, not the black box).
    pub fn new() -> Self {
        let mut flight = FlightRecorder::default();
        flight.set_enabled(false);
        PreBatchEm {
            auditors: Vec::new(),
            combined: EventMask::NONE,
            flight,
            findings: Vec::new(),
            metrics_enabled: false,
            dispatch_latency: Histogram::latency_ns(),
            events_in: 0,
            sync_delivered: 0,
            unclaimed: 0,
        }
    }

    /// Registers a synchronous auditor, widening the combined mask.
    pub fn register(&mut self, auditor: Box<dyn Auditor>) {
        self.combined = self.combined.union(auditor.subscriptions());
        self.auditors.push(auditor);
    }

    /// Switches the pre-rework per-event instrumentation on: the old
    /// `fan_out` wrapper read the host clock twice and observed the
    /// dispatch-latency histogram for *every* event (`deliver_batch` now
    /// amortizes that to once per batch).
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.metrics_enabled = on;
    }

    /// The recorded per-event dispatch latencies.
    pub fn dispatch_latency(&self) -> &Histogram {
        &self.dispatch_latency
    }

    /// The pre-rework `deliver_all`: one fresh sink for the exit's events,
    /// then per event a combined-mask test and a full scan of the auditor
    /// list testing each auditor's subscription mask.
    pub fn deliver_all(&mut self, vm: &mut VmState, events: &[Event]) -> bool {
        let mut sink = Sink { findings: std::mem::take(&mut self.findings), ..Sink::default() };
        for event in events {
            let started = if self.metrics_enabled { Some(std::time::Instant::now()) } else { None };
            let since = sink.findings.len();
            sink.current = Some(self.flight.observe_event(event));
            self.events_in += 1;
            let class = event.class();
            if self.combined.contains(class) {
                for a in self.auditors.iter_mut() {
                    if a.subscriptions().contains(class) {
                        a.on_event(vm, event, &mut sink);
                        self.sync_delivered += 1;
                    }
                }
                for f in &sink.findings[since..] {
                    self.flight.note_finding(f);
                }
            } else {
                self.unclaimed += 1;
            }
            if let Some(started) = started {
                let elapsed = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                self.dispatch_latency.observe(elapsed);
            }
        }
        self.findings = sink.findings;
        sink.suppress
    }
}
