//! # hypertap-bench — experiment harnesses for every table and figure
//!
//! One binary per paper artefact (see DESIGN.md's per-experiment index):
//!
//! | binary | artefact |
//! |---|---|
//! | `table1` | Table I — guest events ↔ VM Exits ↔ invariants |
//! | `fig4`   | Fig. 4 — GOSHD hang-detection coverage |
//! | `fig5`   | Fig. 5 — GOSHD detection-latency CDFs |
//! | `table2` | Table II — rootkits detected by HRKD |
//! | `table3` | Table III — side-channel prediction of Ninja's interval |
//! | `fig6`   | Fig. 6 — transient & spamming attack timelines |
//! | `ninjas` | §VIII-C — detection probability of O-/H-/HT-Ninja |
//! | `fig7`   | Fig. 7 — monitoring overhead on the UnixBench-style suite |
//!
//! The library half hosts the shared machinery: a tiny CLI parser, table
//! formatting, the ninja-experiment trial runner and the ubench runner.

pub mod cli;
pub mod follow;
pub mod ninja_scenarios;
pub mod prebatch;
pub mod report;
pub mod seedpath;
pub mod ubench;
