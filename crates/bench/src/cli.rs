//! A minimal `--flag value` command-line parser for the experiment
//! binaries (keeps the dependency set to the approved list).

use std::collections::HashMap;

/// Parsed flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses the process's arguments. `--key value` pairs become flags;
    /// bare `--key` (followed by another flag or nothing) become switches.
    pub fn parse() -> Args {
        Args::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Args {
        let mut out = Args::default();
        let items: Vec<String> = iter.into_iter().collect();
        let mut i = 0;
        while i < items.len() {
            let item = &items[i];
            if let Some(key) = item.strip_prefix("--") {
                let next_is_value = items.get(i + 1).map(|n| !n.starts_with("--")).unwrap_or(false);
                if next_is_value {
                    out.flags.insert(key.to_owned(), items[i + 1].clone());
                    i += 2;
                } else {
                    out.switches.push(key.to_owned());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        out
    }

    /// A flag's value parsed into any `FromStr` type, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// A flag's raw string value.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Whether a bare switch was present.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key) || self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse_from(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_switches() {
        let a = args(&["--seed", "7", "--full", "--out", "x.json"]);
        assert_eq!(a.get::<u64>("seed", 0), 7);
        assert!(a.has("full"));
        assert_eq!(a.get_str("out"), Some("x.json"));
        assert!(!a.has("missing"));
        assert_eq!(a.get::<u64>("missing", 42), 42);
    }

    #[test]
    fn bad_values_fall_back_to_default() {
        let a = args(&["--seed", "notanumber"]);
        assert_eq!(a.get::<u64>("seed", 5), 5);
    }
}
