//! Tail a flight-dump directory: `flightdump --follow <dir>`.
//!
//! Fleet hosts, the EM's panic path and the conformance fuzzer all drop
//! `.htfr` dumps into a directory as failures happen. Following that
//! directory pretty-prints each new dump as it lands — a live post-mortem
//! feed for a running campaign, in the spirit of `tail -f`.
//!
//! The scan is plain polling (dumps are written rarely, on failures), and
//! a file is only consumed once its size is stable across two polls so a
//! dump caught mid-write is not decoded half-way.

use hypertap_core::prelude::FlightDump;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One pass over `dir`: every `.htfr` file and its current size, sorted by
/// path so consumption order is deterministic.
fn scan(dir: &Path) -> Vec<(PathBuf, u64)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("htfr") {
            continue;
        }
        if let Ok(meta) = entry.metadata() {
            if meta.is_file() {
                out.push((path, meta.len()));
            }
        }
    }
    out.sort();
    out
}

/// Renders one newly landed dump (header line + decoded body) into `out`.
fn emit(path: &Path, out: &mut dyn Write) -> std::io::Result<()> {
    let bytes = std::fs::read(path)?;
    match FlightDump::decode(&bytes) {
        Ok(dump) => {
            writeln!(out, "=== {} ({} bytes) ===", path.display(), bytes.len())?;
            write!(out, "{}", dump.render())?;
        }
        Err(e) => {
            writeln!(out, "=== {} ===", path.display())?;
            writeln!(out, "not a valid .htfr dump: {e:?}")?;
        }
    }
    out.flush()
}

/// Follows `dir` until `deadline` elapses (forever when `None`), polling
/// every `poll` and pretty-printing each `.htfr` file exactly once, once
/// its size has been stable for a full poll interval. Files already
/// present when the follow starts are printed first. Returns how many
/// dumps were emitted.
pub fn follow_dir(
    dir: &Path,
    poll: Duration,
    deadline: Option<Duration>,
    out: &mut dyn Write,
) -> std::io::Result<usize> {
    let started = Instant::now();
    let mut seen: HashMap<PathBuf, u64> = HashMap::new();
    let mut emitted = 0usize;
    let mut pending: HashMap<PathBuf, u64> = HashMap::new();
    loop {
        for (path, size) in scan(dir) {
            if seen.contains_key(&path) {
                continue;
            }
            match pending.get(&path) {
                // Size stable across two polls: safe to decode.
                Some(&prev) if prev == size => {
                    emit(&path, out)?;
                    seen.insert(path.clone(), size);
                    pending.remove(&path);
                    emitted += 1;
                }
                _ => {
                    pending.insert(path, size);
                }
            }
        }
        if let Some(limit) = deadline {
            if started.elapsed() >= limit {
                return Ok(emitted);
            }
        }
        std::thread::sleep(poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_core::flight::DumpRecord;
    use hypertap_core::prelude::{EventClass, VmId, FLIGHT_VERSION};
    use hypertap_hvsim::clock::SimTime;

    fn dump_bytes(reason: &str) -> Vec<u8> {
        FlightDump {
            version: FLIGHT_VERSION,
            reason: reason.to_owned(),
            capacity: 64,
            next_seq: 1,
            dropped: 0,
            records: vec![DumpRecord::Event {
                seq: 0,
                time: SimTime::from_millis(1),
                vm: VmId(0),
                vcpu: 0,
                class: EventClass::ProcessSwitch,
                detail: "cr3 load".to_owned(),
            }],
        }
        .encode()
    }

    #[test]
    fn follows_a_directory_and_prints_each_dump_once() {
        let dir = std::env::temp_dir().join(format!("htfr-follow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.htfr"), dump_bytes("first")).unwrap();
        std::fs::write(dir.join("b.htfr"), dump_bytes("second")).unwrap();
        // Non-dump files are ignored entirely.
        std::fs::write(dir.join("notes.txt"), b"not a dump").unwrap();
        std::fs::write(dir.join("junk.htfr"), b"garbage").unwrap();

        let mut out = Vec::new();
        let n =
            follow_dir(&dir, Duration::from_millis(10), Some(Duration::from_millis(200)), &mut out)
                .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(n, 3, "two dumps + one invalid file, each exactly once:\n{text}");
        assert_eq!(text.matches("a.htfr").count(), 1, "{text}");
        assert_eq!(text.matches("b.htfr").count(), 1, "{text}");
        assert!(text.contains("first"), "{text}");
        assert!(text.contains("second"), "{text}");
        assert!(text.contains("not a valid .htfr dump"), "{text}");
        assert!(!text.contains("notes.txt"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn picks_up_dumps_that_land_mid_follow() {
        let dir = std::env::temp_dir().join(format!("htfr-follow-live-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let writer_dir = dir.clone();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            std::fs::write(writer_dir.join("late.htfr"), dump_bytes("landed late")).unwrap();
        });
        let mut out = Vec::new();
        let n =
            follow_dir(&dir, Duration::from_millis(10), Some(Duration::from_millis(400)), &mut out)
                .unwrap();
        writer.join().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(n, 1, "{text}");
        assert!(text.contains("landed late"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
