//! A faithful replica of the *seed* (pre-TLB) guest-memory hot path, kept
//! around as the "before" arm of the hot-path benchmarks.
//!
//! The seed revision backed [`hypertap_hvsim::mem::GuestMemory`] with a
//! `HashMap<u64, Box<Frame>>` and translated every access with a full
//! two-level page-table walk (two `read_u64`s through the hash map) followed
//! by an EPT permission lookup. This module reproduces exactly that data
//! path — hash-map frame probes, chunked multi-byte accessors, per-access
//! walk — so `BENCH_hotpath.json` can report before/after numbers measured
//! on the same machine and compiler, instead of comparing against stale
//! numbers from an older checkout.

use hypertap_hvsim::ept::{Ept, EptPerm};
use hypertap_hvsim::mem::{Gpa, Gva, PAGE_SIZE};

const ENTRY_PRESENT: u64 = 1;

/// The seed's `GuestMemory`: lazily allocated frames in a `HashMap`.
pub struct SeedMemory {
    frames: std::collections::HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    size: u64,
}

impl SeedMemory {
    /// Creates `size` bytes of guest-physical memory.
    pub fn new(size: u64) -> Self {
        SeedMemory { frames: std::collections::HashMap::new(), size }
    }

    /// The seed's chunked read: one hash probe per page touched.
    pub fn read(&self, gpa: Gpa, buf: &mut [u8]) {
        assert!(gpa.value() + buf.len() as u64 <= self.size);
        let mut addr = gpa.value();
        let mut done = 0usize;
        while done < buf.len() {
            let off = (addr % PAGE_SIZE) as usize;
            let n = usize::min(buf.len() - done, PAGE_SIZE as usize - off);
            match self.frames.get(&(addr / PAGE_SIZE)) {
                Some(frame) => buf[done..done + n].copy_from_slice(&frame[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            addr += n as u64;
        }
    }

    /// The seed's chunked write.
    pub fn write(&mut self, gpa: Gpa, buf: &[u8]) {
        assert!(gpa.value() + buf.len() as u64 <= self.size);
        let mut addr = gpa.value();
        let mut done = 0usize;
        while done < buf.len() {
            let off = (addr % PAGE_SIZE) as usize;
            let n = usize::min(buf.len() - done, PAGE_SIZE as usize - off);
            let frame = self
                .frames
                .entry(addr / PAGE_SIZE)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
            frame[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            addr += n as u64;
        }
    }

    /// The seed's `read_u64`: buffer + chunk loop, no direct path.
    pub fn read_u64(&self, gpa: Gpa) -> u64 {
        let mut buf = [0u8; 8];
        self.read(gpa, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// The seed's `write_u64`.
    pub fn write_u64(&mut self, gpa: Gpa, value: u64) {
        self.write(gpa, &value.to_le_bytes());
    }
}

/// The seed's uncached two-level walk (same entry format as
/// `hypertap_hvsim::paging`), panicking on faults — the benchmark only
/// walks mapped pages.
pub fn seed_walk(mem: &SeedMemory, pdba: Gpa, gva: Gva) -> Gpa {
    let pde_addr = pdba.offset(((gva.value() >> 21) & 511) * 8);
    let pde = mem.read_u64(pde_addr);
    assert!(pde & ENTRY_PRESENT != 0, "unmapped PDE in seed walk");
    let pt_base = Gpa::new(pde & !(PAGE_SIZE - 1));
    let pte_addr = pt_base.offset(((gva.value() >> 12) & 511) * 8);
    let pte = mem.read_u64(pte_addr);
    assert!(pte & ENTRY_PRESENT != 0, "unmapped PTE in seed walk");
    Gpa::new(pte & !(PAGE_SIZE - 1)).offset(gva.page_offset())
}

/// The seed's per-access read path: full walk, EPT permission lookup, then
/// the chunked `u64` read.
pub fn seed_read_u64_gva(mem: &SeedMemory, ept: &Ept, pdba: Gpa, gva: Gva) -> u64 {
    let gpa = seed_walk(mem, pdba, gva);
    let perm = ept.perm(gpa.gfn());
    assert!(perm != EptPerm::NONE);
    mem.read_u64(gpa)
}

/// Builds a linear address space in a [`SeedMemory`]: `pages` consecutive
/// GVAs from 0 mapped to fresh frames. Returns the page-directory base.
/// Frame layout mirrors what `AddressSpaceBuilder` produces.
pub fn seed_address_space(mem: &mut SeedMemory, pages: u64) -> Gpa {
    let mut next_free = 16u64;
    let mut alloc = || {
        let gfn = next_free;
        next_free += 1;
        gfn * PAGE_SIZE
    };
    let pdba = Gpa::new(alloc());
    for page in 0..pages {
        let gva = Gva::new(page * PAGE_SIZE);
        // Data frame first, then the page table on demand — the same
        // allocation order as `AddressSpaceBuilder::map_fresh_range`, so
        // both arms produce identical frame numbers.
        let frame = alloc();
        let pde_addr = pdba.offset(((gva.value() >> 21) & 511) * 8);
        let pde = mem.read_u64(pde_addr);
        let pt_base = if pde & ENTRY_PRESENT == 0 {
            let pt = alloc();
            mem.write_u64(pde_addr, pt | ENTRY_PRESENT);
            pt
        } else {
            pde & !(PAGE_SIZE - 1)
        };
        mem.write_u64(
            Gpa::new(pt_base).offset(((gva.value() >> 12) & 511) * 8),
            frame | ENTRY_PRESENT,
        );
    }
    pdba
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_hvsim::mem::{Gfn, GuestMemory};
    use hypertap_hvsim::paging::{self, AddressSpaceBuilder, FrameAllocator};

    /// The seed replica agrees with the real walker over a real address
    /// space built the same way.
    #[test]
    fn seed_walk_matches_current_walker() {
        const PAGES: u64 = 40;
        let mut seed = SeedMemory::new(32 << 20);
        let seed_pdba = seed_address_space(&mut seed, PAGES);

        let mut mem = GuestMemory::new(32 << 20);
        let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new((32 << 20) / PAGE_SIZE));
        let mut asb = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        asb.map_fresh_range(&mut mem, &mut falloc, Gva::new(0), PAGES);

        for page in 0..PAGES {
            let gva = Gva::new(page * PAGE_SIZE + 123);
            let real = paging::walk(&mem, asb.pdba(), gva).unwrap();
            assert_eq!(seed_walk(&seed, seed_pdba, gva), real, "page {page}");
        }
    }

    #[test]
    fn seed_memory_round_trips() {
        let mut mem = SeedMemory::new(1 << 20);
        mem.write_u64(Gpa::new(PAGE_SIZE - 4), 0x1122334455667788);
        assert_eq!(mem.read_u64(Gpa::new(PAGE_SIZE - 4)), 0x1122334455667788);
    }
}
