//! Plain-text report formatting: fixed-width tables, percentage bars,
//! CDF listings. The experiment binaries print with these so their output
//! diffs cleanly against EXPERIMENTS.md.

/// Renders a table: header row + data rows, columns padded to fit.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_owned()
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A horizontal percentage bar, `width` characters at 100%.
pub fn bar(fraction: f64, width: usize) -> String {
    let filled = ((fraction.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Prints an empirical CDF as (x, F(x)) pairs at the given x values.
pub fn cdf_table(label: &str, sorted_samples: &[f64], xs: &[f64]) -> String {
    let mut rows = Vec::new();
    for &x in xs {
        let f = if sorted_samples.is_empty() {
            0.0
        } else {
            sorted_samples.partition_point(|&v| v <= x) as f64 / sorted_samples.len() as f64
        };
        rows.push(vec![format!("{x:.0}"), pct(f), bar(f, 40)]);
    }
    format!("{label} (n = {})\n{}", sorted_samples.len(), table(&["t (s)", "CDF", ""], &rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "name    value");
        assert_eq!(lines[2], "a       1");
        assert_eq!(lines[3], "longer  22");
    }

    #[test]
    fn bars_and_percentages() {
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(1.5, 4), "####", "clamped");
        assert_eq!(pct(0.123), "12.3%");
    }

    #[test]
    fn cdf_table_counts() {
        let out = cdf_table("latency", &[1.0, 2.0, 3.0], &[2.0, 10.0]);
        assert!(out.contains("n = 3"));
        assert!(out.contains("66.7%"));
        assert!(out.contains("100.0%"));
    }
}
