//! Edge cases of the fault-injection campaign machinery: an empty
//! campaign, a zero-duration injection window, and two overlapping
//! injections on one vCPU.

use hypertap_faultinject::campaign::{
    cdf_at, default_campaign, fig4_rows, fig5_latencies, run_campaign,
};
use hypertap_faultinject::runner::{run_trial, RunnerConfig};
use hypertap_faultinject::spec::{FaultKind, Outcome, TrialSpec, Workload};
use hypertap_guestos::fault::{FaultHook, FaultType};
use hypertap_guestos::kernel::KernelConfig;
use hypertap_guestos::kpath;
use hypertap_guestos::program::{FnProgram, UserOp, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::clock::Duration;
use hypertap_monitors::goshd::{Goshd, GoshdConfig};
use hypertap_monitors::harness::{EngineSelection, TapVm};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An empty campaign is a well-defined no-op at every layer: no specs, no
/// trials, empty summaries, and a zero-valued CDF.
#[test]
fn empty_campaign_is_a_well_defined_no_op() {
    let mut cfg = default_campaign(1);
    cfg.sites = Vec::new();
    assert!(cfg.specs().is_empty());

    let progress_calls = AtomicU64::new(0);
    let results = run_campaign(&cfg, |_, _| {
        progress_calls.fetch_add(1, Ordering::Relaxed);
    });
    assert!(results.is_empty());
    assert_eq!(progress_calls.load(Ordering::Relaxed), 0);

    assert!(fig4_rows(&results).is_empty());
    let (first, full) = fig5_latencies(&results);
    assert!(first.is_empty() && full.is_empty());
    assert_eq!(cdf_at(&first, 4.0), 0.0);

    // Emptying any other axis collapses the spec cross-product too.
    let mut no_workloads = default_campaign(97);
    no_workloads.workloads = Vec::new();
    assert!(no_workloads.specs().is_empty());
}

/// A zero-duration injection window (all horizons zero) must terminate
/// promptly with a deterministic classification instead of hanging or
/// panicking: the trial is classified at the first runner chunk.
#[test]
fn zero_duration_injection_window_terminates_promptly() {
    let zero = RunnerConfig {
        activation_horizon: Duration::ZERO,
        manifest_horizon: Duration::ZERO,
        post_detection_horizon: Duration::ZERO,
        ..RunnerConfig::default()
    };
    // A pipe-subsystem site under Hanoi: nothing on the compute workload's
    // (or the probe's) path acquires pipe locks, so the fault can never
    // activate — and with a zero activation horizon the trial must close
    // out as NotActivated at the first bookkeeping chunk.
    let spec = TrialSpec {
        site: kpath::site_for("pipe", 0) as u32,
        fault: FaultKind::for_site(kpath::site_for("pipe", 0) as u32),
        persistent: true,
        workload: Workload::Hanoi,
        preemptible: false,
        seed: 7,
    };
    let r = run_trial(&spec, &zero);
    assert_eq!(r.outcome, Outcome::NotActivated);
    assert_eq!(r.activations, 0);
    assert_eq!(r.activated_at_ns, None);

    // And it is deterministic: the same spec yields the same result.
    assert_eq!(run_trial(&spec, &zero), r);

    // A zero window with a fault that *does* activate immediately must
    // still classify deterministically (whatever the class is) and not
    // loop forever waiting for manifestation.
    let hot = TrialSpec {
        site: kpath::site_for("ext3", 0) as u32,
        fault: FaultKind::for_site(kpath::site_for("ext3", 0) as u32),
        persistent: true,
        workload: Workload::MakeJ1,
        preemptible: false,
        seed: 7,
    };
    assert_eq!(run_trial(&hot, &zero), run_trial(&hot, &zero));
}

/// Two injections whose windows overlap on the same vCPU: both sites leak
/// their locks. The kernel must neither panic nor double-count, the
/// per-site activation counters must both fire, and the whole run must be
/// deterministic.
struct OverlappingFaults {
    site_a: u32,
    site_b: u32,
    count_a: Arc<AtomicU64>,
    count_b: Arc<AtomicU64>,
}

impl FaultHook for OverlappingFaults {
    fn check(&mut self, site: u32, acquire: bool) -> Option<FaultType> {
        if !acquire {
            return None;
        }
        if site == self.site_a {
            self.count_a.fetch_add(1, Ordering::Relaxed);
            return Some(FaultType::MissingUnlock);
        }
        if site == self.site_b {
            self.count_b.fetch_add(1, Ordering::Relaxed);
            return Some(FaultType::MissingUnlock);
        }
        None
    }

    fn activations(&self) -> u64 {
        self.count_a.load(Ordering::Relaxed) + self.count_b.load(Ordering::Relaxed)
    }
}

fn overlapping_run(site_a: u32, site_b: u32) -> (u64, u64, usize, u64) {
    let count_a = Arc::new(AtomicU64::new(0));
    let count_b = Arc::new(AtomicU64::new(0));
    let mut vm = TapVm::builder()
        .vcpus(1)
        .memory(1 << 30)
        .kernel(KernelConfig::new(1).with_preemption(false))
        .engines(EngineSelection::context_switch_only())
        .goshd(GoshdConfig { threshold: Duration::from_secs(4) })
        .build();
    let make = hypertap_workloads::make::install(&mut vm.kernel, 1, 24);
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut started = false;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                if !started {
                    started = true;
                    UserOp::sys(Sysno::Spawn, &[make.0, 1000])
                } else {
                    UserOp::sys(Sysno::Waitpid, &[])
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);
    vm.kernel.set_fault_hook(Box::new(OverlappingFaults {
        site_a,
        site_b,
        count_a: Arc::clone(&count_a),
        count_b: Arc::clone(&count_b),
    }));
    vm.run_for(Duration::from_secs(30));
    let alarms = vm.auditor::<Goshd>().expect("goshd registered").alarms().len();
    (
        count_a.load(Ordering::Relaxed),
        count_b.load(Ordering::Relaxed),
        alarms,
        vm.kernel.stats().context_switches,
    )
}

#[test]
fn overlapping_injections_on_one_vcpu_are_deterministic() {
    let site_a = kpath::site_for("ext3", 0) as u32;
    let site_b = kpath::site_for("vfs", 0) as u32;
    assert_ne!(site_a, site_b);

    let first = overlapping_run(site_a, site_b);
    let second = overlapping_run(site_a, site_b);
    assert_eq!(first, second, "overlapping injections must replay identically");

    let (a, b, _alarms, switches) = first;
    // Both overlapping faults fired — neither injection masked the other.
    assert!(a >= 1, "site A never activated (a={a}, b={b})");
    assert!(b >= 1, "site B never activated (a={a}, b={b})");
    // The kernel survived the double leak and kept scheduling.
    assert!(switches > 0);
}
