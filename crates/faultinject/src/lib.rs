//! # hypertap-faultinject — the guest-OS hang fault-injection campaign
//!
//! Reproduces the paper's §VIII-A evaluation of GOSHD: faults in the
//! kernel's locking discipline (following Cotroneo et al., the
//! paper's reference 34) are injected at catalogue sites while a workload runs; each trial
//! is classified into the paper's five outcomes:
//!
//! * **Not Activated** — the workload never executed the faulty site;
//! * **Not Manifested** — the fault ran but no observable failure followed;
//! * **Not Detected** — an external probe found the VM unresponsive but
//!   GOSHD raised no alarm (the paper's SSH-probe artefact: the probe's
//!   service starved while the kernel kept scheduling);
//! * **Partial Hang** — a proper subset of vCPUs hung (detected);
//! * **Full Hang** — all vCPUs hung within the observation window
//!   (detected, with the partial→full propagation latency recorded).
//!
//! The per-trial latencies feed the Fig. 5 CDFs; the outcome counts feed
//! the Fig. 4 breakdown.

pub mod campaign;
pub mod checkpoint;
pub mod fleet;
pub mod runner;
pub mod spec;

/// Glob import for campaign drivers.
pub mod prelude {
    pub use crate::campaign::{default_campaign, run_campaign, CampaignConfig, Fig4Row};
    pub use crate::checkpoint::{campaign_fingerprint, run_campaign_resumable, CampaignCheckpoint};
    pub use crate::fleet::{
        run_fleet_campaign, FleetAttack, FleetCampaign, FleetCampaignSummary, FleetScenario,
    };
    pub use crate::runner::{run_trial, RunnerConfig};
    pub use crate::spec::{Outcome, TrialResult, TrialSpec, Workload};
}

pub use prelude::*;
