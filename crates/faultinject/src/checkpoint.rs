//! Campaign checkpoint/resume: a versioned `.htcp` blob in the HTRC codec
//! family that freezes a partially-run injection campaign — which trials
//! have completed and what they produced — so a host restart resumes the
//! sweep instead of restarting it.
//!
//! Trials are independent and individually seeded, so the checkpoint does
//! not freeze machine state (that is what `.htsp` snapshots are for); it
//! freezes *campaign progress*. Resuming re-runs only the missing trials,
//! and because every trial is deterministic the resumed campaign's result
//! vector is byte-identical to an uninterrupted run — the same contract
//! the VM snapshot codec proves, one layer up.
//!
//! A checkpoint is bound to its campaign by a fingerprint over the full
//! expanded spec list. Restoring into a different campaign (different
//! sites, workloads, seed, runner-visible shape) is a structured error,
//! mirroring the snapshot codec's recipe-congruence rejection.

use crate::campaign::CampaignConfig;
use crate::runner::run_trial;
use crate::spec::{FaultKind, Outcome, TrialResult, TrialSpec, Workload};
use hypertap_hvsim::snap::{SnapError, SnapReader, SnapWriter};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Magic for the campaign-checkpoint codec.
pub const HTCP_MAGIC: &[u8; 4] = b"HTCP";
/// Current `.htcp` envelope version.
pub const HTCP_VERSION: u64 = 1;

/// A frozen campaign: the identity of the sweep plus every completed
/// trial, indexed into the expanded spec list.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// Fingerprint of the campaign's expanded spec list (see
    /// [`campaign_fingerprint`]).
    pub fingerprint: u64,
    /// Total trials in the campaign.
    pub total: u64,
    /// Completed trials as `(spec index, result)`, in index order.
    pub completed: Vec<(u64, TrialResult)>,
}

fn workload_tag(w: Workload) -> u64 {
    Workload::ALL.iter().position(|&x| x == w).expect("workload is in ALL") as u64
}

fn workload_from_tag(tag: u64, offset: usize) -> Result<Workload, SnapError> {
    Workload::ALL
        .get(tag as usize)
        .copied()
        .ok_or(SnapError::BadValue { offset, what: "workload tag" })
}

fn fault_tag(f: FaultKind) -> u64 {
    match f {
        FaultKind::MissingUnlock => 0,
        FaultKind::WrongOrder => 1,
        FaultKind::MissingUnlockLockPair => 2,
        FaultKind::MissingIrqRestore => 3,
    }
}

fn fault_from_tag(tag: u64, offset: usize) -> Result<FaultKind, SnapError> {
    Ok(match tag {
        0 => FaultKind::MissingUnlock,
        1 => FaultKind::WrongOrder,
        2 => FaultKind::MissingUnlockLockPair,
        3 => FaultKind::MissingIrqRestore,
        _ => return Err(SnapError::BadValue { offset, what: "fault tag" }),
    })
}

fn outcome_tag(o: Outcome) -> u64 {
    match o {
        Outcome::NotActivated => 0,
        Outcome::NotManifested => 1,
        Outcome::NotDetected => 2,
        Outcome::PartialHang => 3,
        Outcome::FullHang => 4,
    }
}

fn outcome_from_tag(tag: u64, offset: usize) -> Result<Outcome, SnapError> {
    Ok(match tag {
        0 => Outcome::NotActivated,
        1 => Outcome::NotManifested,
        2 => Outcome::NotDetected,
        3 => Outcome::PartialHang,
        4 => Outcome::FullHang,
        _ => return Err(SnapError::BadValue { offset, what: "outcome tag" }),
    })
}

fn save_spec(w: &mut SnapWriter, s: &TrialSpec) {
    w.varint(s.site as u64);
    w.varint(fault_tag(s.fault));
    w.boolean(s.persistent);
    w.varint(workload_tag(s.workload));
    w.boolean(s.preemptible);
    w.varint(s.seed);
}

fn load_spec(r: &mut SnapReader) -> Result<TrialSpec, SnapError> {
    let site = u32::try_from(r.varint()?)
        .map_err(|_| SnapError::BadValue { offset: r.offset(), what: "site index" })?;
    Ok(TrialSpec {
        site,
        fault: fault_from_tag(r.varint()?, r.offset())?,
        persistent: r.boolean()?,
        workload: workload_from_tag(r.varint()?, r.offset())?,
        preemptible: r.boolean()?,
        seed: r.varint()?,
    })
}

fn save_result(w: &mut SnapWriter, t: &TrialResult) {
    save_spec(w, &t.spec);
    w.varint(outcome_tag(t.outcome));
    w.varint(t.activations);
    w.opt_varint(t.activated_at_ns);
    w.opt_varint(t.first_alarm_ns);
    w.opt_varint(t.detection_latency_ns);
    w.opt_varint(t.full_hang_at_ns);
    w.opt_varint(t.full_hang_latency_ns);
}

fn load_result(r: &mut SnapReader) -> Result<TrialResult, SnapError> {
    Ok(TrialResult {
        spec: load_spec(r)?,
        outcome: outcome_from_tag(r.varint()?, r.offset())?,
        activations: r.varint()?,
        activated_at_ns: r.opt_varint()?,
        first_alarm_ns: r.opt_varint()?,
        detection_latency_ns: r.opt_varint()?,
        full_hang_at_ns: r.opt_varint()?,
        full_hang_latency_ns: r.opt_varint()?,
    })
}

/// FNV-1a over the campaign's expanded spec list: two configurations get
/// the same fingerprint exactly when they expand to the same trials in
/// the same order, which is what resume-correctness needs.
pub fn campaign_fingerprint(cfg: &CampaignConfig) -> u64 {
    let mut w = SnapWriter::new();
    for spec in cfg.specs() {
        save_spec(&mut w, &spec);
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in w.into_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl CampaignCheckpoint {
    /// An empty checkpoint for a campaign (no trials completed).
    pub fn for_config(cfg: &CampaignConfig) -> CampaignCheckpoint {
        CampaignCheckpoint {
            fingerprint: campaign_fingerprint(cfg),
            total: cfg.specs().len() as u64,
            completed: Vec::new(),
        }
    }

    /// Serializes the checkpoint into `.htcp` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.raw(HTCP_MAGIC);
        w.varint(HTCP_VERSION);
        w.varint(self.fingerprint);
        w.varint(self.total);
        w.varint(self.completed.len() as u64);
        for (idx, result) in &self.completed {
            w.varint(*idx);
            save_result(&mut w, result);
        }
        w.into_bytes()
    }

    /// Decodes `.htcp` bytes; truncation, corruption and version skew are
    /// structured errors, never panics.
    pub fn decode(bytes: &[u8]) -> Result<CampaignCheckpoint, SnapError> {
        let mut r = SnapReader::new(bytes);
        if r.take(HTCP_MAGIC.len())? != HTCP_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.varint()?;
        if version != HTCP_VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        let fingerprint = r.varint()?;
        let total = r.varint()?;
        let n = r.count(total.min(u32::MAX as u64) as usize, "completed trials")?;
        let mut completed = Vec::with_capacity(n);
        let mut last: Option<u64> = None;
        for _ in 0..n {
            let idx = r.varint()?;
            if idx >= total || last.is_some_and(|p| idx <= p) {
                return Err(SnapError::BadValue {
                    offset: r.offset(),
                    what: "completed-trial index",
                });
            }
            last = Some(idx);
            completed.push((idx, load_result(&mut r)?));
        }
        r.finish()?;
        Ok(CampaignCheckpoint { fingerprint, total, completed })
    }
}

/// Runs a campaign, resuming from `resume` if given and emitting a
/// checkpoint to `on_checkpoint` after every `checkpoint_every` completed
/// trials (and once more when the campaign finishes). Completed trials in
/// the checkpoint are not re-run; because trials are deterministic, the
/// returned result vector is identical to an uninterrupted
/// [`run_campaign`](crate::campaign::run_campaign).
///
/// Fails up front if the checkpoint belongs to a different campaign.
pub fn run_campaign_resumable(
    cfg: &CampaignConfig,
    resume: Option<&CampaignCheckpoint>,
    checkpoint_every: usize,
    mut on_checkpoint: impl FnMut(&CampaignCheckpoint),
    progress: impl Fn(usize, usize) + Send + Sync,
) -> Result<Vec<TrialResult>, String> {
    let specs = cfg.specs();
    let total = specs.len();
    let fingerprint = campaign_fingerprint(cfg);
    let mut results: Vec<Option<TrialResult>> = (0..total).map(|_| None).collect();
    if let Some(cp) = resume {
        if cp.fingerprint != fingerprint {
            return Err(format!(
                "checkpoint fingerprint {:#018x} does not match this campaign ({fingerprint:#018x})",
                cp.fingerprint
            ));
        }
        if cp.total as usize != total {
            return Err(format!(
                "checkpoint expects {} trials, this campaign expands to {total}",
                cp.total
            ));
        }
        for (idx, r) in &cp.completed {
            results[*idx as usize] = Some(r.clone());
        }
    }

    let pending: Vec<(usize, TrialSpec)> =
        specs.into_iter().enumerate().filter(|(i, _)| results[*i].is_none()).collect();
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.threads
    };

    let queue = Arc::new(Mutex::new(pending));
    let (tx, rx) = mpsc::channel::<(usize, TrialResult)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let queue = queue.clone();
            let tx = tx.clone();
            let runner = cfg.runner.clone();
            scope.spawn(move || loop {
                let next = queue.lock().expect("queue lock").pop();
                let Some((idx, spec)) = next else { break };
                let result = run_trial(&spec, &runner);
                if tx.send((idx, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let checkpoint = |results: &[Option<TrialResult>]| CampaignCheckpoint {
            fingerprint,
            total: total as u64,
            completed: results
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.as_ref().map(|r| (i as u64, r.clone())))
                .collect(),
        };
        let mut done = results.iter().filter(|r| r.is_some()).count();
        let mut since_checkpoint = 0usize;
        while let Ok((idx, r)) = rx.recv() {
            results[idx] = Some(r);
            done += 1;
            since_checkpoint += 1;
            progress(done, total);
            if checkpoint_every > 0 && since_checkpoint >= checkpoint_every {
                since_checkpoint = 0;
                on_checkpoint(&checkpoint(&results));
            }
        }
        on_checkpoint(&checkpoint(&results));
    });
    results.into_iter().map(|r| r.ok_or_else(|| "a trial never completed".to_string())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{default_campaign, run_campaign};

    fn tiny_campaign() -> CampaignConfig {
        let mut cfg = default_campaign(47);
        cfg.workloads = vec![Workload::Hanoi];
        cfg.persistence = vec![true];
        cfg.threads = 2;
        cfg
    }

    #[test]
    fn checkpoint_round_trips_byte_for_byte() {
        let cfg = tiny_campaign();
        let results = run_campaign(&cfg, |_, _| {});
        let cp = CampaignCheckpoint {
            fingerprint: campaign_fingerprint(&cfg),
            total: results.len() as u64,
            completed: results.iter().cloned().enumerate().map(|(i, r)| (i as u64, r)).collect(),
        };
        let bytes = cp.encode();
        let decoded = CampaignCheckpoint::decode(&bytes).expect("decodes");
        assert_eq!(decoded, cp);
        assert_eq!(decoded.encode(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn resumed_campaign_equals_uninterrupted_run() {
        let cfg = tiny_campaign();
        let uninterrupted = run_campaign(&cfg, |_, _| {});

        // Simulate a crash after roughly half the trials: keep every
        // second completed trial in the checkpoint.
        let half = CampaignCheckpoint {
            fingerprint: campaign_fingerprint(&cfg),
            total: uninterrupted.len() as u64,
            completed: uninterrupted
                .iter()
                .cloned()
                .enumerate()
                .filter(|(i, _)| i % 2 == 0)
                .map(|(i, r)| (i as u64, r))
                .collect(),
        };
        let bytes = half.encode();
        let restored = CampaignCheckpoint::decode(&bytes).expect("decodes");
        let resumed = run_campaign_resumable(&cfg, Some(&restored), 0, |_| {}, |_, _| {})
            .expect("resume runs");
        assert_eq!(resumed, uninterrupted, "resume must reproduce the full campaign");
    }

    #[test]
    fn checkpoints_are_emitted_and_final_one_is_complete() {
        let cfg = tiny_campaign();
        let mut seen = Vec::new();
        let results = run_campaign_resumable(&cfg, None, 1, |cp| seen.push(cp.clone()), |_, _| {})
            .expect("runs");
        assert!(seen.len() >= results.len(), "one checkpoint per trial plus the final one");
        let last = seen.last().expect("final checkpoint");
        assert_eq!(last.completed.len(), results.len());
        // The final checkpoint resumes to a no-op campaign.
        let resumed = run_campaign_resumable(
            &cfg,
            Some(last),
            0,
            |_| {},
            |_, _| panic!("no trial should re-run from a complete checkpoint"),
        )
        .expect("no-op resume");
        assert_eq!(resumed, results);
    }

    #[test]
    fn foreign_checkpoints_are_rejected() {
        let cfg = tiny_campaign();
        let mut other = tiny_campaign();
        other.seed ^= 0xDEAD;
        let cp = CampaignCheckpoint::for_config(&other);
        let err = run_campaign_resumable(&cfg, Some(&cp), 0, |_| {}, |_, _| {})
            .expect_err("foreign checkpoint must be rejected");
        assert!(err.contains("fingerprint"), "error names the mismatch: {err}");
    }

    #[test]
    fn truncated_and_corrupted_checkpoints_never_panic() {
        let cfg = tiny_campaign();
        let results = run_campaign(&cfg, |_, _| {});
        let cp = CampaignCheckpoint {
            fingerprint: campaign_fingerprint(&cfg),
            total: results.len() as u64,
            completed: results.into_iter().enumerate().map(|(i, r)| (i as u64, r)).collect(),
        };
        let bytes = cp.encode();
        for len in 0..bytes.len() {
            assert!(
                CampaignCheckpoint::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes must be a structured error"
            );
        }
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x5A;
            let _ = CampaignCheckpoint::decode(&bad);
        }
        let mut skewed = bytes.clone();
        skewed[4] = 9;
        assert_eq!(CampaignCheckpoint::decode(&skewed), Err(SnapError::UnsupportedVersion(9)));
    }
}
