//! Campaign orchestration: spec generation, parallel execution, summaries.

use crate::runner::{run_trial, RunnerConfig};
use crate::spec::{FaultKind, Outcome, TrialResult, TrialSpec, Workload};
use hypertap_guestos::klocks::SITE_COUNT;
use serde::{Deserialize, Serialize};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Campaign-wide configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Sites to inject (subset of 0..374).
    pub sites: Vec<u32>,
    /// Workloads to run.
    pub workloads: Vec<Workload>,
    /// Kernel preemption configurations.
    pub preemption: Vec<bool>,
    /// Persistence modes (transient = false, persistent = true).
    pub persistence: Vec<bool>,
    /// Trial-runner timing.
    pub runner: RunnerConfig,
    /// Base RNG seed (trial seeds derive from it deterministically).
    pub seed: u64,
    /// Worker threads (0 = all available).
    pub threads: usize,
    /// When true (the default), only inject sites on each workload's
    /// profiled execution path, as the paper's campaign did. When false,
    /// inject every sampled site under every workload (many trials land in
    /// the "not activated" bucket).
    pub profiled_sites_only: bool,
}

/// The default campaign shape: every `stride`-th site, all four workloads,
/// both kernels, both persistence modes.
pub fn default_campaign(stride: usize) -> CampaignConfig {
    let mut stride = stride.max(1);
    // The catalogue interleaves subsystems mod 8; a stride sharing a factor
    // with 8 would sample only a subset of subsystems.
    if stride > 1 && stride.is_multiple_of(2) {
        stride += 1;
    }
    CampaignConfig {
        sites: (0..SITE_COUNT as u32).step_by(stride).collect(),
        workloads: Workload::ALL.to_vec(),
        preemption: vec![false, true],
        persistence: vec![false, true],
        runner: RunnerConfig::default(),
        seed: 42,
        threads: 0,
        profiled_sites_only: true,
    }
}

impl CampaignConfig {
    /// Expands the configuration into the full trial list.
    pub fn specs(&self) -> Vec<TrialSpec> {
        let mut out = Vec::new();
        let mut n = 0u64;
        let catalogue = hypertap_guestos::klocks::LockTable::new();
        for &site in &self.sites {
            for &workload in &self.workloads {
                if self.profiled_sites_only
                    && !workload
                        .profiled_subsystems()
                        .contains(&catalogue.site(site as usize).subsystem)
                {
                    continue;
                }
                for &preemptible in &self.preemption {
                    for &persistent in &self.persistence {
                        n += 1;
                        out.push(TrialSpec {
                            site,
                            fault: FaultKind::for_site(site),
                            persistent,
                            workload,
                            preemptible,
                            seed: self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(n),
                        });
                    }
                }
            }
        }
        out
    }
}

/// Runs every trial of a campaign, fanning out over worker threads.
/// `progress` is called after each completed trial with (done, total).
pub fn run_campaign(
    cfg: &CampaignConfig,
    progress: impl Fn(usize, usize) + Send + Sync,
) -> Vec<TrialResult> {
    let specs = cfg.specs();
    let total = specs.len();
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.threads
    };
    let queue = Arc::new(Mutex::new(specs.into_iter().enumerate().collect::<Vec<_>>()));
    let (tx, rx) = mpsc::channel::<(usize, TrialResult)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let queue = queue.clone();
            let tx = tx.clone();
            let runner = cfg.runner.clone();
            scope.spawn(move || loop {
                let next = queue.lock().expect("queue lock").pop();
                let Some((idx, spec)) = next else { break };
                let result = run_trial(&spec, &runner);
                if tx.send((idx, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut results: Vec<Option<TrialResult>> = (0..total).map(|_| None).collect();
        let mut done = 0usize;
        while let Ok((idx, r)) = rx.recv() {
            results[idx] = Some(r);
            done += 1;
            progress(done, total);
        }
        results.into_iter().map(|r| r.expect("every trial completed")).collect()
    })
}

/// One row of the Fig. 4 summary: outcome counts for a (workload, kernel,
/// persistence) cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Workload.
    pub workload: Workload,
    /// Kernel preemption.
    pub preemptible: bool,
    /// Fault persistence.
    pub persistent: bool,
    /// Trials in this cell.
    pub trials: usize,
    /// Outcome counts: not activated, not manifested, not detected,
    /// partial hang, full hang.
    pub not_activated: usize,
    /// See above.
    pub not_manifested: usize,
    /// See above.
    pub not_detected: usize,
    /// See above.
    pub partial_hang: usize,
    /// See above.
    pub full_hang: usize,
}

impl Fig4Row {
    /// Fraction of *activated* faults that manifested as failures.
    pub fn manifestation_rate(&self) -> f64 {
        let activated = self.trials - self.not_activated;
        if activated == 0 {
            return 0.0;
        }
        (self.not_detected + self.partial_hang + self.full_hang) as f64 / activated as f64
    }

    /// GOSHD's coverage over manifested failures.
    pub fn coverage(&self) -> f64 {
        let manifested = self.not_detected + self.partial_hang + self.full_hang;
        if manifested == 0 {
            return 1.0;
        }
        (self.partial_hang + self.full_hang) as f64 / manifested as f64
    }

    /// Fraction of detected hangs that stayed partial.
    pub fn partial_fraction(&self) -> f64 {
        let detected = self.partial_hang + self.full_hang;
        if detected == 0 {
            return 0.0;
        }
        self.partial_hang as f64 / detected as f64
    }
}

/// Summarises trial results into Fig. 4 rows (one per workload × kernel ×
/// persistence cell, in a stable order).
pub fn fig4_rows(results: &[TrialResult]) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for &workload in &Workload::ALL {
        for &preemptible in &[false, true] {
            for &persistent in &[false, true] {
                let cell: Vec<&TrialResult> = results
                    .iter()
                    .filter(|r| {
                        r.spec.workload == workload
                            && r.spec.preemptible == preemptible
                            && r.spec.persistent == persistent
                    })
                    .collect();
                if cell.is_empty() {
                    continue;
                }
                let count = |o: Outcome| cell.iter().filter(|r| r.outcome == o).count();
                rows.push(Fig4Row {
                    workload,
                    preemptible,
                    persistent,
                    trials: cell.len(),
                    not_activated: count(Outcome::NotActivated),
                    not_manifested: count(Outcome::NotManifested),
                    not_detected: count(Outcome::NotDetected),
                    partial_hang: count(Outcome::PartialHang),
                    full_hang: count(Outcome::FullHang),
                });
            }
        }
    }
    rows
}

/// Extracts the Fig. 5 latency samples: (first-hang detection latencies,
/// full-hang latencies), in seconds.
pub fn fig5_latencies(results: &[TrialResult]) -> (Vec<f64>, Vec<f64>) {
    let mut first = Vec::new();
    let mut full = Vec::new();
    for r in results {
        if let Some(l) = r.detection_latency_ns {
            first.push(l as f64 / 1e9);
        }
        if let Some(l) = r.full_hang_latency_ns {
            full.push(l as f64 / 1e9);
        }
    }
    first.sort_by(f64::total_cmp);
    full.sort_by(f64::total_cmp);
    (first, full)
}

/// Empirical CDF evaluation: fraction of samples ≤ x.
pub fn cdf_at(sorted: &[f64], x: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.partition_point(|&v| v <= x);
    n as f64 / sorted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_expansion_counts() {
        let mut cfg = default_campaign(47); // 8 sites, one per subsystem
        cfg.workloads = vec![Workload::Hanoi];
        cfg.preemption = vec![false];
        cfg.persistence = vec![true];
        // Hanoi's profile covers 4 of the 8 subsystems.
        assert_eq!(cfg.specs().len(), 4);
        let mut unprofiled = default_campaign(47);
        unprofiled.profiled_sites_only = false;
        assert_eq!(unprofiled.specs().len(), 8 * 4 * 2 * 2);
    }

    #[test]
    fn seeds_are_distinct() {
        let cfg = default_campaign(47);
        let specs = cfg.specs();
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), specs.len());
    }

    #[test]
    fn fig4_row_math() {
        let row = Fig4Row {
            workload: Workload::Hanoi,
            preemptible: false,
            persistent: true,
            trials: 100,
            not_activated: 10,
            not_manifested: 15,
            not_detected: 1,
            partial_hang: 20,
            full_hang: 54,
        };
        assert!((row.manifestation_rate() - 75.0 / 90.0).abs() < 1e-9);
        assert!((row.coverage() - 74.0 / 75.0).abs() < 1e-9);
        assert!((row.partial_fraction() - 20.0 / 74.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_evaluation() {
        let samples = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(cdf_at(&samples, 0.5), 0.0);
        assert_eq!(cdf_at(&samples, 2.0), 0.5);
        assert_eq!(cdf_at(&samples, 10.0), 1.0);
        assert_eq!(cdf_at(&[], 1.0), 0.0);
    }
}
