//! Trial specifications and results.

use hypertap_guestos::fault::FaultType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The workload running while a fault is injected (paper §VIII-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// "Tower of Hanoi" recursive program.
    Hanoi,
    /// Serial compilation of libxml.
    MakeJ1,
    /// Two-way parallel compilation of libxml.
    MakeJ2,
    /// HTTP server under ApacheBench-style load.
    HttpServer,
}

impl Workload {
    /// All four workloads, in the paper's order.
    pub const ALL: [Workload; 4] =
        [Workload::Hanoi, Workload::MakeJ1, Workload::MakeJ2, Workload::HttpServer];

    /// The kernel subsystems this workload's execution path exercises
    /// (the paper profiled the kernel under each workload and injected into
    /// locations on the execution path).
    pub fn profiled_subsystems(self) -> &'static [&'static str] {
        match self {
            Workload::Hanoi => &["vfs", "ext3", "block", "mm"],
            Workload::MakeJ1 | Workload::MakeJ2 => &["vfs", "ext3", "block", "mm", "sched"],
            Workload::HttpServer => &["vfs", "ext3", "block", "mm", "sched", "net"],
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Workload::Hanoi => "Hanoi Tower",
            Workload::MakeJ1 => "make -j1",
            Workload::MakeJ2 => "make -j2",
            Workload::HttpServer => "HTTP server",
        })
    }
}

/// A serialisable mirror of [`FaultType`] (the guest crate stays
/// serde-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Missing spinlock release.
    MissingUnlock,
    /// Wrong lock ordering.
    WrongOrder,
    /// Missing unlock/lock pair.
    MissingUnlockLockPair,
    /// Missing interrupt-state restoration.
    MissingIrqRestore,
}

impl From<FaultKind> for FaultType {
    fn from(k: FaultKind) -> FaultType {
        match k {
            FaultKind::MissingUnlock => FaultType::MissingUnlock,
            FaultKind::WrongOrder => FaultType::WrongOrder,
            FaultKind::MissingUnlockLockPair => FaultType::MissingUnlockLockPair,
            FaultKind::MissingIrqRestore => FaultType::MissingIrqRestore,
        }
    }
}

impl FaultKind {
    /// Deterministic per-site fault assignment. Interrupt-state faults only
    /// make sense at irqsave sites; the remaining three causes round-robin
    /// over the rest (mirroring how the paper's injector matched fault
    /// types to suitable locations).
    pub fn for_site(site: u32) -> FaultKind {
        let catalogue = hypertap_guestos::klocks::LockTable::new();
        let irqsave = catalogue.site(site as usize).irqsave;
        if irqsave && site % 12 == 5 {
            // Half of the irqsave sites get the interrupt-state fault.
            return FaultKind::MissingIrqRestore;
        }
        match site % 3 {
            0 => FaultKind::MissingUnlock,
            1 => FaultKind::WrongOrder,
            _ => FaultKind::MissingUnlockLockPair,
        }
    }
}

/// One injection trial.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialSpec {
    /// Catalogue site (0..374).
    pub site: u32,
    /// The fault injected there.
    pub fault: FaultKind,
    /// Persistent (every execution) or transient (first execution only).
    pub persistent: bool,
    /// The workload running during injection.
    pub workload: Workload,
    /// Kernel preemption configuration.
    pub preemptible: bool,
    /// RNG seed for this trial (workload arrival times etc.).
    pub seed: u64,
}

/// Classified outcome of a trial (paper §VIII-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// The workload never executed the faulty code.
    NotActivated,
    /// The fault ran but nothing observable failed.
    NotManifested,
    /// The external probe saw an unresponsive VM; GOSHD stayed silent.
    NotDetected,
    /// A proper subset of vCPUs hung (detected by GOSHD).
    PartialHang,
    /// All vCPUs hung within the observation window (detected by GOSHD).
    FullHang,
}

impl Outcome {
    /// Whether the fault manifested as a failure.
    pub fn manifested(self) -> bool {
        matches!(self, Outcome::NotDetected | Outcome::PartialHang | Outcome::FullHang)
    }

    /// Whether GOSHD detected it.
    pub fn detected(self) -> bool {
        matches!(self, Outcome::PartialHang | Outcome::FullHang)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::NotActivated => "not activated",
            Outcome::NotManifested => "not manifested",
            Outcome::NotDetected => "not detected",
            Outcome::PartialHang => "partial hang",
            Outcome::FullHang => "full hang",
        })
    }
}

/// The measured result of one trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// The trial's specification.
    pub spec: TrialSpec,
    /// Classified outcome.
    pub outcome: Outcome,
    /// Number of fault activations observed.
    pub activations: u64,
    /// Simulated time of the first activation (ns), if any.
    pub activated_at_ns: Option<u64>,
    /// Simulated time of GOSHD's first alarm (ns), if any.
    pub first_alarm_ns: Option<u64>,
    /// Detection latency: first alarm − activation (ns).
    pub detection_latency_ns: Option<u64>,
    /// Simulated time at which the hang became full (ns), if it did.
    pub full_hang_at_ns: Option<u64>,
    /// Full-hang latency: full alarm − activation (ns).
    pub full_hang_latency_ns: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kinds_match_site_attributes() {
        let catalogue = hypertap_guestos::klocks::LockTable::new();
        let mut counts = std::collections::HashMap::new();
        for site in 0..hypertap_guestos::klocks::SITE_COUNT as u32 {
            let kind = FaultKind::for_site(site);
            *counts.entry(kind).or_insert(0usize) += 1;
            if kind == FaultKind::MissingIrqRestore {
                assert!(
                    catalogue.site(site as usize).irqsave,
                    "irq-restore faults only make sense at irqsave sites (site {site})"
                );
            }
        }
        // All four causes appear in the campaign.
        assert_eq!(counts.len(), 4, "{counts:?}");
    }

    #[test]
    fn outcome_classification_predicates() {
        assert!(!Outcome::NotActivated.manifested());
        assert!(!Outcome::NotManifested.manifested());
        assert!(Outcome::NotDetected.manifested());
        assert!(!Outcome::NotDetected.detected());
        assert!(Outcome::PartialHang.detected());
        assert!(Outcome::FullHang.detected());
    }

    #[test]
    fn serde_round_trip() {
        let spec = TrialSpec {
            site: 42,
            fault: FaultKind::WrongOrder,
            persistent: true,
            workload: Workload::MakeJ2,
            preemptible: false,
            seed: 7,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: TrialSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
