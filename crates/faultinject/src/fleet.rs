//! Fleet-scale campaigns: fan the fault / rootkit / exploit scenarios
//! across a whole fleet of monitored guests.
//!
//! Where [`crate::campaign`] runs one fault-injection trial per VM
//! sequentially over a work queue, this driver builds a
//! [`hypertap_core::fleet::FleetHost`] whose every member is a full
//! monitored guest — workload plus (sampled per VM) a locking-discipline
//! fault from the catalogue, a privilege-escalation exploit, and a
//! DKOM rootkit hiding the escalated process — watched by GOSHD, periodic
//! HRKD cross-validation and HT-Ninja. Per-VM scenario sampling is a pure
//! function of `(base_seed, VmId)`, so the fleet determinism contract
//! holds: any worker count reproduces each VM's findings bit-for-bit.

use crate::spec::{FaultKind, Workload};
use hypertap_attacks::exploit::{AttackConfig, AttackProgram};
use hypertap_attacks::rootkits::all_rootkits;
use hypertap_core::fleet::{run_fleet, FleetConfig, FleetReport, FleetVm, FleetWorkload};
use hypertap_core::prelude::VmId;
use hypertap_guestos::fault::SingleFault;
use hypertap_guestos::kernel::KernelConfig;
use hypertap_guestos::klocks::SITE_COUNT;
use hypertap_guestos::program::{FnProgram, UserOp, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::clock::Duration;
use hypertap_monitors::fleet::FleetMember;
use hypertap_monitors::goshd::GoshdConfig;
use hypertap_monitors::harness::{EngineSelection, TapVm};
use hypertap_monitors::ninja::rules::NinjaRules;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The attack (if any) a fleet VM hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetAttack {
    /// Escalate, copy data, vanish in ~300 µs.
    Transient,
    /// Escalate, act, then load the indexed rootkit to hide.
    RootkitCombined(usize),
}

/// One VM's sampled scenario — a pure function of `(base_seed, vm)`.
#[derive(Debug, Clone)]
pub struct FleetScenario {
    /// The VM this scenario belongs to.
    pub vm: VmId,
    /// Derived per-VM seed.
    pub seed: u64,
    /// The guest workload.
    pub workload: Workload,
    /// Kernel preemption model.
    pub preemptible: bool,
    /// Locking-discipline fault: catalogue site + persistence.
    pub fault: Option<(u32, bool)>,
    /// Privilege-escalation attack, possibly rootkit-hidden.
    pub attack: Option<FleetAttack>,
}

impl FleetScenario {
    /// Samples the scenario for one VM of a campaign.
    pub fn sample(base_seed: u64, vm: VmId) -> FleetScenario {
        let seed = base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(vm.0 as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        // HttpServer needs externally offered load, which a sliced fleet
        // member cannot arrange mid-run — sample the self-driving three.
        let workloads = [Workload::Hanoi, Workload::MakeJ1, Workload::MakeJ2];
        let workload = workloads[rng.gen_range(0usize..workloads.len())];
        let preemptible = rng.gen_range(0u32..2) == 1;
        let fault = if rng.gen_range(0u32..3) == 0 {
            Some((rng.gen_range(0u32..SITE_COUNT as u32), rng.gen_range(0u32..2) == 1))
        } else {
            None
        };
        let attack = match rng.gen_range(0u32..4) {
            0 => Some(FleetAttack::RootkitCombined(rng.gen_range(0usize..all_rootkits().len()))),
            1 => Some(FleetAttack::Transient),
            _ => None,
        };
        FleetScenario { vm, seed, workload, preemptible, fault, attack }
    }
}

/// A fleet-scale campaign: the [`FleetWorkload`] whose VMs are sampled
/// fault/exploit/rootkit scenarios under the full monitor set.
#[derive(Debug, Clone)]
pub struct FleetCampaign {
    /// Seed all per-VM sampling derives from.
    pub base_seed: u64,
    /// Simulated campaign length per VM.
    pub duration: Duration,
    /// Scheduling slice handed to each VM per fleet round.
    pub slice: Duration,
    /// GOSHD hang threshold.
    pub goshd_threshold: Duration,
    /// HRKD cross-validation period (how fast hidden tasks surface).
    pub hrkd_period: Duration,
}

impl FleetCampaign {
    /// A short campaign suitable for tests and benches: 150 ms of guest
    /// time in 10 ms slices, aggressive HRKD checks so rootkit-combined
    /// attacks surface within the window.
    pub fn quick(base_seed: u64) -> Self {
        FleetCampaign {
            base_seed,
            duration: Duration::from_millis(150),
            slice: Duration::from_millis(10),
            goshd_threshold: Duration::from_secs(2),
            hrkd_period: Duration::from_millis(25),
        }
    }
}

/// Builds the monitored guest for one sampled scenario.
pub fn build_campaign_vm(cfg: &FleetCampaign, scenario: &FleetScenario) -> TapVm {
    let mut vm = TapVm::builder()
        .vm_id(scenario.vm)
        .vcpus(2)
        .memory(1 << 28)
        .kernel(KernelConfig::new(2).with_preemption(scenario.preemptible))
        .engines(EngineSelection::all())
        .goshd(GoshdConfig { threshold: cfg.goshd_threshold })
        .hrkd_periodic(cfg.hrkd_period)
        .htninja(NinjaRules::new())
        .build();

    let workload = match scenario.workload {
        Workload::Hanoi => vm.kernel.register_program(
            "hanoi",
            Box::new(|| Box::new(hypertap_workloads::hanoi::Hanoi::paper_default())),
        ),
        Workload::MakeJ1 => hypertap_workloads::make::install(&mut vm.kernel, 1, 12),
        Workload::MakeJ2 => hypertap_workloads::make::install(&mut vm.kernel, 2, 12),
        Workload::HttpServer => unreachable!("fleet sampling excludes HttpServer"),
    };

    let shell = scenario.attack.map(|a| {
        let attack_cfg = match a {
            FleetAttack::Transient => AttackConfig::transient(),
            FleetAttack::RootkitCombined(idx) => {
                let module = vm.kernel.register_module(all_rootkits().swap_remove(idx));
                AttackConfig::rootkit_combined(module)
            }
        };
        let attack = vm.kernel.register_program(
            "exploit",
            Box::new(move || Box::new(AttackProgram::new(attack_cfg.clone()))),
        );
        // The attacker's (unprivileged) shell: the exploit inherits its
        // non-root uid, so the escalation to euid 0 is a rules violation —
        // a root process spawned by root would be "authorized".
        let attack_raw = attack.0;
        vm.kernel
            .register_program(
                "sh",
                Box::new(move || {
                    let mut stage = 0u32;
                    Box::new(FnProgram(move |_v: &UserView<'_>| {
                        stage += 1;
                        match stage {
                            // Let the workload settle before the break-in.
                            1 => UserOp::sys(Sysno::Nanosleep, &[30_000_000]),
                            2 => UserOp::sys(Sysno::Spawn, &[attack_raw, u64::MAX]),
                            _ => UserOp::sys(Sysno::Nanosleep, &[3_600_000_000_000]),
                        }
                    }))
                }),
            )
            .0
    });

    let workload_raw = workload.0;
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0u32;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match (stage, shell) {
                    (1, _) => UserOp::sys(Sysno::Spawn, &[workload_raw, 1000]),
                    (2, Some(sh)) => UserOp::sys(Sysno::Spawn, &[sh, 1000]),
                    _ => UserOp::sys(Sysno::Waitpid, &[]),
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);

    if let Some((site, persistent)) = scenario.fault {
        let fault = FaultKind::for_site(site);
        vm.kernel.set_fault_hook(Box::new(SingleFault::new(site, fault.into(), persistent)));
    }
    vm
}

impl FleetWorkload for FleetCampaign {
    fn build_vm(&self, vm: VmId) -> Box<dyn FleetVm> {
        let scenario = FleetScenario::sample(self.base_seed, vm);
        let tap_vm = build_campaign_vm(self, &scenario);
        Box::new(FleetMember::new(tap_vm, vm, self.duration, self.slice))
    }
}

/// Host-wide summary of a fleet campaign (derived from the aggregator).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCampaignSummary {
    /// VMs that ran.
    pub vms: u64,
    /// VMs whose guest halted before the campaign deadline.
    pub halted: u64,
    /// Events that entered fan-out, summed over the fleet.
    pub events_in: u64,
    /// Findings over the whole fleet, tallied by reporting auditor.
    pub findings_by_auditor: Vec<(String, u64)>,
}

/// Runs a campaign over `vms` VMs on `workers` threads and summarizes.
pub fn run_fleet_campaign(
    campaign: &FleetCampaign,
    vms: usize,
    workers: usize,
) -> (FleetReport, FleetCampaignSummary) {
    let report = run_fleet(Arc::new(campaign.clone()), FleetConfig::new(vms, workers));
    let summary = summarize(&report);
    (report, summary)
}

/// Folds a fleet report into the campaign summary.
pub fn summarize(report: &FleetReport) -> FleetCampaignSummary {
    let agg = report.aggregate();
    let mut findings_by_auditor: Vec<(String, u64)> = Vec::new();
    for (_, finding) in agg.findings() {
        match findings_by_auditor.iter_mut().find(|(name, _)| *name == finding.auditor) {
            Some((_, n)) => *n += 1,
            None => findings_by_auditor.push((finding.auditor.clone(), 1)),
        }
    }
    FleetCampaignSummary {
        vms: agg.vm_count(),
        halted: agg.halted_count(),
        events_in: agg.stats().events_in,
        findings_by_auditor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_core::fleet::{run_vm_alone, VmReport};

    #[test]
    fn sampling_is_deterministic_and_covers_attacks() {
        let a = FleetScenario::sample(9, VmId(4));
        let b = FleetScenario::sample(9, VmId(4));
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.fault, b.fault);
        assert_eq!(a.attack, b.attack);
        let attacks =
            (0..32).filter(|&i| FleetScenario::sample(9, VmId(i)).attack.is_some()).count();
        assert!(attacks > 4, "about half the fleet should host an attack, got {attacks}");
    }

    #[test]
    fn campaign_fleet_matches_single_vm_runs_and_finds_attacks() {
        let campaign = FleetCampaign::quick(0xF1EE7);
        let vms = 6;
        let baseline: Vec<VmReport> =
            (0..vms).map(|i| run_vm_alone(&campaign, VmId(i as u32))).collect();
        let (report, summary) = run_fleet_campaign(&campaign, vms, 4);
        assert_eq!(report.per_vm.len(), vms);
        for (got, want) in report.per_vm.iter().zip(baseline.iter()) {
            assert_eq!(got.vm, want.vm);
            assert_eq!(got.findings, want.findings, "vm {:?}", got.vm);
            assert_eq!(got.stats, want.stats, "vm {:?}", got.vm);
        }
        assert_eq!(summary.vms, vms as u64);
        assert!(summary.events_in > 0, "live guests must produce events");
        // With ~half the VMs hosting an attack under HT-Ninja + periodic
        // HRKD, the fleet as a whole must catch something.
        assert!(
            !summary.findings_by_auditor.is_empty(),
            "expected at least one auditor finding across the fleet: {summary:?}"
        );
    }
}
