//! One fault-injection trial, end to end.
//!
//! A trial builds a fresh monitored VM (2 vCPUs, GOSHD with the paper's
//! 4-second threshold), starts the specified workload plus an SSH-style
//! probe service, arms the fault, and advances simulated time in small
//! chunks while watching for (1) the fault's activation, (2) GOSHD's first
//! alarm, (3) escalation from partial to full hang — then classifies the
//! outcome.

use crate::spec::{Outcome, TrialResult, TrialSpec, Workload};
use hypertap_guestos::fault::SingleFault;
use hypertap_guestos::kernel::KernelConfig;
use hypertap_guestos::program::{FnProgram, UserOp, UserView};
use hypertap_guestos::syscalls::Sysno;
use hypertap_hvsim::clock::{Duration, SimTime};
use hypertap_hvsim::machine::RunExit;
use hypertap_monitors::goshd::{Goshd, GoshdConfig};
use hypertap_monitors::harness::{EngineSelection, TapVm};

/// Timing configuration of the trial runner.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// GOSHD hang threshold (the paper's 4 s).
    pub goshd_threshold: Duration,
    /// How long to wait for the fault to activate before classifying
    /// "not activated".
    pub activation_horizon: Duration,
    /// How long after activation to wait for an alarm before classifying
    /// "not manifested" / "not detected".
    pub manifest_horizon: Duration,
    /// How long after the first alarm to watch for escalation to a full
    /// hang (the paper observes for 10 minutes; 60 s captures the same
    /// distribution in simulation and keeps campaigns tractable — pass the
    /// paper's value for a faithful run).
    pub post_detection_horizon: Duration,
    /// Scheduling granularity of the runner's bookkeeping.
    pub chunk: Duration,
    /// Probe liveness window: the probe is "responsive" if it emitted a
    /// heartbeat within this long.
    pub probe_window: Duration,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            goshd_threshold: Duration::from_secs(4),
            activation_horizon: Duration::from_secs(20),
            manifest_horizon: Duration::from_secs(40),
            post_detection_horizon: Duration::from_secs(60),
            chunk: Duration::from_millis(100),
            probe_window: Duration::from_secs(8),
        }
    }
}

/// The SSH-service probe: a task that heartbeats once a second through a
/// network send. Its liveness is what an external "is the VM responsive?"
/// check would see.
fn sshd_factory() -> Box<dyn hypertap_guestos::program::UserProgram> {
    let mut stage = 0u64;
    let mut cycles = 0u64;
    Box::new(FnProgram(move |_v: &UserView<'_>| {
        stage += 1;
        match stage % 4 {
            1 => UserOp::sys(Sysno::Nanosleep, &[1_000_000_000]),
            2 => UserOp::sys(Sysno::NetSend, &[64]),
            3 => {
                cycles += 1;
                if cycles.is_multiple_of(4) {
                    // Append to auth.log every few seconds — background
                    // filesystem traffic every real service generates, and
                    // one of the ways a leaked VFS lock eventually spreads
                    // a hang to the service's vCPU.
                    UserOp::sys(Sysno::Write, &[0, 256])
                } else {
                    UserOp::Compute(20_000)
                }
            }
            _ => UserOp::Emit("sshd-beat".into(), String::new()),
        }
    }))
}

/// Builds the VM for a trial: workload + probe + fault + GOSHD.
fn build_trial_vm(spec: &TrialSpec, cfg: &RunnerConfig) -> TapVm {
    let kcfg = KernelConfig::new(2).with_preemption(spec.preemptible);
    let mut vm = TapVm::builder()
        .vcpus(2)
        .memory(1 << 30)
        .kernel(kcfg)
        .engines(EngineSelection::context_switch_only())
        .goshd(GoshdConfig { threshold: cfg.goshd_threshold })
        .build();

    let sshd = vm.kernel.register_program("sshd", Box::new(sshd_factory));
    let workload = match spec.workload {
        Workload::Hanoi => vm.kernel.register_program(
            "hanoi",
            Box::new(|| Box::new(hypertap_workloads::hanoi::Hanoi::paper_default())),
        ),
        Workload::MakeJ1 => hypertap_workloads::make::install(&mut vm.kernel, 1, 24),
        Workload::MakeJ2 => hypertap_workloads::make::install(&mut vm.kernel, 2, 24),
        Workload::HttpServer => hypertap_workloads::http::install(&mut vm.kernel),
    };
    let (sshd_raw, workload_raw) = (sshd.0, workload.0);
    let init = vm.kernel.register_program(
        "init",
        Box::new(move || {
            let mut stage = 0;
            Box::new(FnProgram(move |_v: &UserView<'_>| {
                stage += 1;
                match stage {
                    1 => UserOp::sys(Sysno::Spawn, &[sshd_raw, 0]),
                    2 => UserOp::sys(Sysno::Spawn, &[workload_raw, 1000]),
                    _ => UserOp::sys(Sysno::Waitpid, &[]),
                }
            }))
        }),
    );
    vm.kernel.set_init_program(init);
    vm.kernel.set_fault_hook(Box::new(SingleFault::new(
        spec.site,
        spec.fault.into(),
        spec.persistent,
    )));
    vm
}

/// Runs one trial to a classified [`TrialResult`].
pub fn run_trial(spec: &TrialSpec, cfg: &RunnerConfig) -> TrialResult {
    let mut vm = build_trial_vm(spec, cfg);

    // Boot, then (for the HTTP workload) offer external load for the whole
    // possible trial duration.
    vm.run_for(Duration::from_millis(200));
    if spec.workload == Workload::HttpServer {
        let total = Duration::from_secs(
            (cfg.activation_horizon.as_nanos()
                + cfg.manifest_horizon.as_nanos()
                + cfg.post_detection_horizon.as_nanos())
                / 1_000_000_000
                + 5,
        );
        let now = vm.now();
        let (vmstate, _) = vm.machine.parts_mut();
        hypertap_workloads::http::offer_load(
            vmstate, &vm.kernel, now, 300.0, total, 512, spec.seed,
        );
    }

    let started = vm.now();
    let mut last_beat = started;
    let mut activated_at: Option<SimTime> = None;
    let mut result_outcome: Option<Outcome> = None;
    let mut first_alarm: Option<SimTime> = None;
    let mut full_at: Option<SimTime> = None;

    loop {
        let run = vm.run_for(cfg.chunk);
        let now = vm.now();
        // Track probe heartbeats.
        if vm.kernel.drain_all_mailboxes().iter().any(|(_, e)| e.tag == "sshd-beat") {
            last_beat = now;
        }
        // Track activation: take the exact simulated timestamp from the
        // kernel's activation log rather than the chunk-granularity `now` —
        // downstream detection-latency accounting is only as precise as
        // this anchor.
        if activated_at.is_none() {
            if let Some(first) = vm.kernel.fault_activation_log().first() {
                activated_at = Some(SimTime::from_nanos(first.time_ns));
            }
        }
        // Track GOSHD.
        {
            let goshd = vm.auditor::<Goshd>().expect("registered");
            if first_alarm.is_none() {
                if let Some(a) = goshd.first_alarm() {
                    first_alarm = Some(a.detected_at);
                }
            }
            if full_at.is_none() {
                full_at = goshd.full_hang_at();
            }
        }

        // Classification state machine.
        match (activated_at, first_alarm) {
            (None, _) => {
                if now.saturating_since(started) > cfg.activation_horizon {
                    result_outcome = Some(Outcome::NotActivated);
                }
            }
            (Some(act), None) => {
                if now.saturating_since(act) > cfg.manifest_horizon {
                    let probe_dead = now.saturating_since(last_beat) > cfg.probe_window;
                    result_outcome = Some(if probe_dead {
                        Outcome::NotDetected
                    } else {
                        Outcome::NotManifested
                    });
                }
            }
            (Some(_), Some(alarm)) => {
                if full_at.is_some() {
                    result_outcome = Some(Outcome::FullHang);
                } else if now.saturating_since(alarm) > cfg.post_detection_horizon {
                    result_outcome = Some(Outcome::PartialHang);
                }
            }
        }

        if let Some(outcome) = result_outcome {
            let activations = vm.kernel.fault_hook().activations();
            let lat = |t: Option<SimTime>| -> Option<u64> {
                match (t, activated_at) {
                    (Some(t), Some(a)) => Some(t.saturating_since(a).as_nanos()),
                    _ => None,
                }
            };
            return TrialResult {
                spec: spec.clone(),
                outcome,
                activations,
                activated_at_ns: activated_at.map(|t| t.as_nanos()),
                first_alarm_ns: first_alarm.map(|t| t.as_nanos()),
                detection_latency_ns: lat(first_alarm),
                full_hang_at_ns: full_at.map(|t| t.as_nanos()),
                full_hang_latency_ns: lat(full_at),
            };
        }
        if run == RunExit::Shutdown {
            // Workload powered the VM off (should not happen in campaigns).
            return TrialResult {
                spec: spec.clone(),
                outcome: Outcome::NotManifested,
                activations: vm.kernel.fault_hook().activations(),
                activated_at_ns: activated_at.map(|t| t.as_nanos()),
                first_alarm_ns: None,
                detection_latency_ns: None,
                full_hang_at_ns: None,
                full_hang_latency_ns: None,
            };
        }
        if run == RunExit::AllIdle {
            // Everything wedged with interrupts off: advance bookkeeping
            // time manually so classification still progresses.
            let vmstate = vm.machine.vm_mut();
            let bump = cfg.chunk;
            for i in 0..vmstate.vcpu_count() {
                vmstate.vcpu_mut(hypertap_hvsim::vcpu::VcpuId(i)).clock += bump;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FaultKind;

    fn quick_cfg() -> RunnerConfig {
        RunnerConfig {
            goshd_threshold: Duration::from_secs(2),
            activation_horizon: Duration::from_secs(5),
            manifest_horizon: Duration::from_secs(8),
            post_detection_horizon: Duration::from_secs(10),
            chunk: Duration::from_millis(100),
            probe_window: Duration::from_secs(5),
        }
    }

    #[test]
    fn missing_unlock_on_hot_vfs_site_hangs() {
        // Site 1 is a vfs site (catalogue layout: subsystem = id % 8).
        let spec = TrialSpec {
            site: 1,
            fault: FaultKind::MissingUnlock,
            persistent: true,
            workload: Workload::MakeJ1,
            preemptible: false,
            seed: 1,
        };
        let r = run_trial(&spec, &quick_cfg());
        assert!(r.activations > 0, "make exercises vfs sites");
        assert!(
            matches!(r.outcome, Outcome::PartialHang | Outcome::FullHang),
            "expected a detected hang, got {:?}",
            r.outcome
        );
        assert!(r.detection_latency_ns.unwrap() > 0);
    }

    #[test]
    fn unused_subsystem_site_is_not_activated() {
        // Pipe-subsystem sites are untouched by the Hanoi workload.
        // Catalogue layout: subsystem index 6 = "pipe".
        let spec = TrialSpec {
            site: 6,
            fault: FaultKind::MissingUnlock,
            persistent: true,
            workload: Workload::Hanoi,
            preemptible: false,
            seed: 1,
        };
        let r = run_trial(&spec, &quick_cfg());
        assert_eq!(r.outcome, Outcome::NotActivated);
        assert_eq!(r.activations, 0);
    }
}
