//! End-to-end properties of the fuzzing loop: seeded determinism (same
//! seed + budget ⇒ byte-identical corpus and fingerprint), clean runs on
//! the healthy stack, and divergence shrinking producing a verified
//! minimal reproducer.

use hypertap_fuzz::corpus::{encode_scenario_entry, InputKind};
use hypertap_fuzz::harness::{observe_scenario, replay_reproducer, write_reproducer};
use hypertap_fuzz::{run_fuzz, FuzzConfig};
use hypertap_hvsim::clock::Duration;
use hypertap_replay::prelude::*;

/// Renders a corpus deterministically for byte-comparison.
fn render_corpus(outcome: &hypertap_fuzz::FuzzOutcome) -> Vec<(String, Vec<u8>)> {
    outcome
        .corpus
        .iter()
        .map(|item| match &item.kind {
            InputKind::Scenario(s) => (
                item.name.clone(),
                encode_scenario_entry(&item.name, item.parent.as_deref(), s).into_bytes(),
            ),
            InputKind::Trace(t) => (item.name.clone(), compress(&t.encode())),
        })
        .collect()
}

fn small_config(seed: u64, guided: bool) -> FuzzConfig {
    FuzzConfig {
        seed,
        iterations: 6,
        cap: Duration::from_millis(60),
        guided,
        deadline: None,
        fork_warmup: None,
    }
}

#[test]
fn same_seed_and_budget_give_byte_identical_outcomes() {
    let first = run_fuzz(small_config(7, true), Vec::new(), None);
    let second = run_fuzz(small_config(7, true), Vec::new(), None);
    assert_eq!(first.iterations, second.iterations);
    assert_eq!(first.executions, second.executions);
    assert_eq!(first.fingerprint(), second.fingerprint());
    assert_eq!(render_corpus(&first), render_corpus(&second));
    assert!(first.divergences.is_empty(), "healthy stack must fuzz clean");

    // A different seed explores differently.
    let other = run_fuzz(small_config(8, true), Vec::new(), None);
    assert_ne!(
        render_corpus(&first),
        render_corpus(&other),
        "different seeds should produce different corpora"
    );
}

#[test]
fn blind_mode_is_deterministic_too() {
    let first = run_fuzz(small_config(7, false), Vec::new(), None);
    let second = run_fuzz(small_config(7, false), Vec::new(), None);
    assert_eq!(first.fingerprint(), second.fingerprint());
    assert_eq!(render_corpus(&first), render_corpus(&second));
    assert!(first.divergences.is_empty());
}

#[test]
fn injected_divergence_shrinks_to_a_verified_reproducer() {
    // The end-to-end reproducer path the fuzzer takes when a pair check
    // fails: tamper a recorded trace, shrink against the original, write
    // the pair, read it back, and confirm it replays the same divergence.
    let mut scenario = Scenario::sample(31, 0);
    scenario.duration = Duration::from_millis(60);
    scenario.name = "shrink-e2e".to_owned();
    let obs = observe_scenario(&scenario, &BASE);
    let at = obs.trace.records.len() as u64 / 2;
    let mut tampered = obs.trace.clone();
    tampered.tamper(at);

    let shrunk = shrink_diverging_prefix(&obs.trace, &tampered, DiffPolicy::Exact)
        .expect("tampered trace diverges");
    assert_eq!(shrunk.keep as u64, at + 1, "reproducer must be minimal");
    assert_eq!(shrunk.divergence.index, at);

    let dir = std::env::temp_dir().join("hypertap-fuzz-e2e");
    write_reproducer(&dir, "e2e", &shrunk.left, &shrunk.right, &obs.flight)
        .expect("reproducer writes");
    let replayed = replay_reproducer(&dir, "e2e")
        .expect("reproducer reads back")
        .expect("reproducer still diverges");
    assert_eq!(
        format!("{replayed}"),
        format!("{}", shrunk.divergence),
        "reproducer must replay the divergence bit-for-bit"
    );
}
