//! Starter-corpus regression: every checked-in entry must replay cleanly
//! (no divergence against a partner configuration, replay verdict equal to
//! the live one) and must reproduce the exact coverage fingerprint the
//! manifest was recorded with — on every run.

use hypertap_fuzz::corpus::{load_corpus, InputKind, CORPUS_DIR};
use hypertap_fuzz::harness::{observe_replay, observe_scenario, register_fuzz_auditors};
use hypertap_replay::prelude::*;
use hypertap_replay::scenario::NO_TLB;
use std::path::Path;

#[test]
fn starter_corpus_replays_cleanly_with_stable_fingerprints() {
    let items = load_corpus(Path::new(CORPUS_DIR)).expect("checked-in corpus loads");
    assert!(items.len() >= 5, "starter corpus unexpectedly small: {} entries", items.len());
    assert!(
        items.iter().any(|i| matches!(i.kind, InputKind::Scenario(_)))
            && items.iter().any(|i| matches!(i.kind, InputKind::Trace(_))),
        "starter corpus must exercise both entry kinds"
    );

    for item in items {
        match item.kind {
            InputKind::Scenario(s) => {
                let first = observe_scenario(&s, &BASE);
                let second = observe_scenario(&s, &BASE);
                assert_eq!(
                    first.coverage.fingerprint(),
                    second.coverage.fingerprint(),
                    "{}: coverage fingerprint unstable across runs",
                    item.name
                );
                assert_eq!(
                    first.coverage.fingerprint(),
                    item.fingerprint,
                    "{}: coverage fingerprint drifted from the manifest; \
                     rerun `scenariofuzz --record-corpus` if the drift is intended",
                    item.name
                );

                // Zero divergences: partner config agrees on the stream,
                // replay agrees on the verdict.
                let (partner_trace, _) = run_scenario(&s, &NO_TLB);
                assert_eq!(
                    diff_traces(&first.trace, &partner_trace, DiffPolicy::Exact),
                    None,
                    "{}: diverges against {}",
                    item.name,
                    NO_TLB.label
                );
                let replayed = replay_trace(&first.trace, |em| register_fuzz_auditors(em, s.vcpus));
                assert_eq!(
                    replayed, first.verdict,
                    "{}: replay verdict differs from live",
                    item.name
                );
            }
            InputKind::Trace(t) => {
                let first = observe_replay(&t);
                let second = observe_replay(&t);
                assert_eq!(
                    first.coverage.fingerprint(),
                    second.coverage.fingerprint(),
                    "{}: replay coverage fingerprint unstable",
                    item.name
                );
                assert_eq!(
                    first.coverage.fingerprint(),
                    item.fingerprint,
                    "{}: replay coverage fingerprint drifted from the manifest",
                    item.name
                );
                assert_eq!(first.verdict, second.verdict, "{}: replay verdict unstable", item.name);
            }
        }
    }
}

#[test]
fn live_and_replay_coverage_agree_on_corpus_scenarios() {
    // The coverage map is a pure function of the deterministic run, so a
    // recorded trace must fold to the same fingerprint whether coverage is
    // collected live (EM tap + flight + verdict) or on the replay path.
    let items = load_corpus(Path::new(CORPUS_DIR)).expect("checked-in corpus loads");
    for item in items {
        if let InputKind::Scenario(s) = item.kind {
            let live = observe_scenario(&s, &BASE);
            let replayed = observe_replay(&live.trace);
            assert_eq!(
                live.coverage.fingerprint(),
                replayed.coverage.fingerprint(),
                "{}: live and replay coverage disagree",
                item.name
            );
        }
    }
}
