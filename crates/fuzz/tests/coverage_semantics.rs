//! Coverage-map semantics on real runs: fingerprints must not depend on
//! who collected the coverage (live tap vs post-hoc fold), in what order
//! maps were merged, or how many workers a fleet was sharded across.

use hypertap_core::coverage::{CoverageMap, StreamCoverage};
use hypertap_fuzz::harness::fold_trace;
use hypertap_hvsim::clock::Duration;
use hypertap_replay::prelude::*;

/// Folds each fleet member's trace into its own map, then merges in the
/// given order.
fn merged_fleet_coverage(traces: &[Trace], reverse: bool) -> CoverageMap {
    let mut per_vm: Vec<CoverageMap> = traces
        .iter()
        .map(|t| {
            let mut stream = StreamCoverage::new();
            fold_trace(t, &mut stream);
            let mut map = CoverageMap::new();
            stream.fold_into(&mut map);
            map
        })
        .collect();
    if reverse {
        per_vm.reverse();
    }
    let mut merged = CoverageMap::new();
    for map in &per_vm {
        merged.merge(map);
    }
    merged
}

#[test]
fn fleet_fingerprints_are_identical_across_worker_counts() {
    let fleet = ScenarioFleet::new(9001).capped(Duration::from_millis(60));
    let sequential = run_scenario_fleet(&fleet, 6, 1);
    let sharded = run_scenario_fleet(&fleet, 6, 4);

    let seq_traces = fleet_traces(&sequential).expect("fleet traces decode");
    let shard_traces = fleet_traces(&sharded).expect("fleet traces decode");
    assert_eq!(seq_traces.len(), 6);
    assert_eq!(shard_traces.len(), 6);

    let seq = merged_fleet_coverage(&seq_traces, false);
    let shard = merged_fleet_coverage(&shard_traces, false);
    assert_eq!(
        seq.fingerprint(),
        shard.fingerprint(),
        "worker count changed the merged coverage fingerprint"
    );

    // Merge order must not matter either: OR-ing per-VM maps is
    // commutative, so forward and reverse merges agree bit-for-bit.
    let reversed = merged_fleet_coverage(&shard_traces, true);
    assert_eq!(shard.fingerprint(), reversed.fingerprint());
    assert!(shard.covers(&reversed) && reversed.covers(&shard));
}

#[test]
fn per_member_coverage_matches_solo_runs() {
    // Sharding preserves each member's own coverage, not just the merged
    // union: every fleet trace folds to the same map as the member run
    // alone.
    let fleet = ScenarioFleet::new(1207).capped(Duration::from_millis(60));
    let report = run_scenario_fleet(&fleet, 4, 3);
    let traces = fleet_traces(&report).expect("fleet traces decode");
    for (i, trace) in traces.iter().enumerate() {
        let solo = run_member_alone(&fleet, hypertap_core::prelude::VmId(i as u32));
        let solo_trace = Trace::decode(&solo.payload).expect("solo trace decodes");
        let fold = |t: &Trace| {
            let mut stream = StreamCoverage::new();
            fold_trace(t, &mut stream);
            let mut map = CoverageMap::new();
            stream.fold_into(&mut map);
            map.fingerprint()
        };
        assert_eq!(fold(trace), fold(&solo_trace), "vm {i} coverage differs from solo run");
    }
}
