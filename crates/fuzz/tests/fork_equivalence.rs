//! Fork-from-snapshot equivalence: exploring a duration branch from a
//! warmed-up machine snapshot must be indistinguishable — trace bytes,
//! verdict, flight dump, coverage fingerprint — from running the whole
//! branch from scratch, and substituting forks inside the fuzzing loop
//! must leave the loop's observable outcome bit-identical.

use hypertap_fuzz::corpus::InputKind;
use hypertap_fuzz::fork::{recipe_key, ForkPoint};
use hypertap_fuzz::harness::observe_scenario;
use hypertap_fuzz::{run_fuzz, FuzzConfig};
use hypertap_hvsim::clock::Duration;
use hypertap_replay::prelude::*;

const WARMUP: Duration = Duration::from_millis(40);

fn branchy_scenario(seed: u64, ordinal: u64) -> Scenario {
    let mut s = Scenario::sample(seed, ordinal);
    s.name = "fork-eq".to_owned();
    s
}

#[test]
fn forked_branches_match_from_scratch_runs_bit_for_bit() {
    for (seed, ordinal) in [(11u64, 0u64), (11, 3), (902, 7)] {
        let mut s = branchy_scenario(seed, ordinal);
        let point = ForkPoint::capture(&s, &BASE, WARMUP)
            .unwrap_or_else(|e| panic!("capture {seed}/{ordinal}: {e}"));
        for extension_ms in [5u64, 20, 45] {
            let total = WARMUP + Duration::from_millis(extension_ms);
            s.duration = total;
            let scratch = observe_scenario(&s, &BASE);
            let forked = point.fork(&s.name, total).expect("fork runs");
            assert_eq!(
                forked.trace.encode(),
                scratch.trace.encode(),
                "{seed}/{ordinal}+{extension_ms}ms: trace bytes"
            );
            assert_eq!(
                forked.verdict, scratch.verdict,
                "{seed}/{ordinal}+{extension_ms}ms: verdicts (findings + provenance)"
            );
            assert_eq!(
                forked.flight, scratch.flight,
                "{seed}/{ordinal}+{extension_ms}ms: flight dumps"
            );
            assert_eq!(
                forked.coverage.fingerprint(),
                scratch.coverage.fingerprint(),
                "{seed}/{ordinal}+{extension_ms}ms: coverage fingerprints"
            );
            assert_eq!(
                forked.transitions.bits(),
                scratch.transitions.bits(),
                "{seed}/{ordinal}+{extension_ms}ms: transition edges"
            );
        }
    }
}

#[test]
fn forks_are_independent_of_each_other() {
    // A fork must not perturb the fork point: taking the same branch twice
    // — with a different branch in between — yields identical bytes.
    let s = branchy_scenario(77, 1);
    let point = ForkPoint::capture(&s, &BASE, WARMUP).expect("capture");
    let total = WARMUP + Duration::from_millis(25);
    let first = point.fork("twice", total).expect("first fork");
    let _interleaved = point.fork("other", WARMUP + Duration::from_millis(10)).expect("mid fork");
    let second = point.fork("twice", total).expect("second fork");
    assert_eq!(first.trace.encode(), second.trace.encode());
    assert_eq!(first.verdict, second.verdict);
    assert_eq!(first.flight, second.flight);
}

#[test]
fn branches_shorter_than_the_warmup_are_rejected() {
    let s = branchy_scenario(5, 0);
    let point = ForkPoint::capture(&s, &BASE, WARMUP).expect("capture");
    let err = point
        .fork("short", Duration::from_millis(10))
        .expect_err("a branch inside the prefix cannot fork");
    assert!(err.contains("warmup"), "error names the warmup: {err}");
    // The boundary itself is fine: zero-length extension returns the
    // warmed state as-is.
    let at_warmup = point.fork("exact", WARMUP).expect("zero-length extension");
    assert_eq!(at_warmup.trace.header.scenario, "exact");
}

#[test]
fn recipe_key_separates_recipes_and_ignores_duration_and_name() {
    let mut a = branchy_scenario(11, 0);
    let mut b = a.clone();
    b.name = "renamed".to_owned();
    b.duration = a.duration + Duration::from_millis(50);
    assert_eq!(recipe_key(&a, &BASE), recipe_key(&b, &BASE));
    b.vcpus = a.vcpus % 4 + 1;
    assert_ne!(recipe_key(&a, &BASE), recipe_key(&b, &BASE));
    a.vcpus = b.vcpus;
    assert_eq!(recipe_key(&a, &BASE), recipe_key(&b, &BASE));
}

#[test]
fn fuzzing_with_forks_matches_fuzzing_without_bit_for_bit() {
    // The loop-level consequence of per-branch equivalence: turning fork
    // mode on changes wall-clock, not observations — same coverage
    // fingerprint, same corpus, same (empty) divergence list.
    let config = |fork_warmup| FuzzConfig {
        seed: 21,
        iterations: 10,
        cap: Duration::from_millis(80),
        guided: true,
        deadline: None,
        fork_warmup,
    };
    let plain = run_fuzz(config(None), Vec::new(), None);
    let forked = run_fuzz(config(Some(Duration::from_millis(30))), Vec::new(), None);
    assert!(forked.forks > 0, "the fork path must actually be exercised");
    assert_eq!(plain.forks, 0);
    assert_eq!(forked.fingerprint(), plain.fingerprint());
    assert_eq!(forked.transition_edges(), plain.transition_edges());
    let names = |o: &hypertap_fuzz::FuzzOutcome| {
        o.corpus
            .iter()
            .map(|i| (i.name.clone(), i.fingerprint, matches!(i.kind, InputKind::Scenario(_))))
            .collect::<Vec<_>>()
    };
    assert_eq!(names(&forked), names(&plain));
    assert!(plain.divergences.is_empty() && forked.divergences.is_empty());
}
