//! Corpus management: the on-disk formats and the starter corpus.
//!
//! A corpus holds two kinds of entries:
//!
//! * **Scenario entries** (`.scn`) — a scenario spec in a line-oriented
//!   `key=value` text format. Replayed by running the scenario live.
//! * **Trace entries** (`.htrz`) — a compressed HTRC trace (possibly a
//!   mutated one that no live scenario produces). Replayed through the
//!   replay path alone.
//!
//! `MANIFEST.txt` lists every entry with the coverage fingerprint it was
//! admitted under; the corpus regression test recomputes each fingerprint
//! and fails on drift. All serialization is deterministic — no wall-clock
//! stamps, no hash-map ordering — so a seeded fuzzing run writes a
//! byte-identical corpus every time.

use crate::harness::{observe_replay, observe_scenario};
use hypertap_hvsim::clock::Duration;
use hypertap_replay::prelude::*;
use hypertap_replay::scenario::WorkloadMix;
use std::fmt;
use std::path::Path;

/// Format tag of `.scn` files and the manifest.
pub const CORPUS_VERSION: &str = "hypertap-fuzz corpus v1";

/// A corpus entry's input payload.
#[derive(Debug, Clone)]
pub enum InputKind {
    /// A scenario spec, run through the live simulator.
    Scenario(Scenario),
    /// A recorded (possibly mutated) trace, run through replay only.
    Trace(Trace),
}

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusItem {
    /// Entry name; also the file stem on disk.
    pub name: String,
    /// Name of the corpus entry this one was mutated from, if any.
    pub parent: Option<String>,
    /// Coverage fingerprint of the entry's own run at admission time.
    pub fingerprint: u64,
    /// The input itself.
    pub kind: InputKind,
}

/// Structured corpus codec / IO errors.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem failure, with the path involved.
    Io(String, std::io::Error),
    /// A `.scn` file or manifest violated the format.
    Malformed {
        /// File the problem was found in.
        file: String,
        /// Human-readable description.
        detail: String,
    },
    /// A `.htrz` entry failed to decode.
    Trace(String, TraceError),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io(path, e) => write!(f, "{path}: {e}"),
            CorpusError::Malformed { file, detail } => write!(f, "{file}: {detail}"),
            CorpusError::Trace(path, e) => write!(f, "{path}: trace decode failed: {e:?}"),
        }
    }
}

impl std::error::Error for CorpusError {}

fn malformed(file: &str, detail: impl Into<String>) -> CorpusError {
    CorpusError::Malformed { file: file.to_owned(), detail: detail.into() }
}

/// Serializes a scenario entry into the `.scn` text format.
pub fn encode_scenario_entry(name: &str, parent: Option<&str>, s: &Scenario) -> String {
    let fault = match s.fault {
        Some((site, true)) => format!("{site},persistent"),
        Some((site, false)) => format!("{site},transient"),
        None => "none".to_owned(),
    };
    let rootkit = match s.rootkit {
        Some(i) => i.to_string(),
        None => "none".to_owned(),
    };
    format!(
        "# {CORPUS_VERSION}\nname={name}\nparent={}\nseed={}\nvcpus={}\npreempt={}\n\
         duration_ms={}\nmix={}\nfault={fault}\nrootkit={rootkit}\n",
        parent.unwrap_or("-"),
        s.seed,
        s.vcpus,
        u8::from(s.preemptible),
        s.duration.as_millis(),
        s.mix.label(),
    )
}

/// Parses a `.scn` scenario entry. `file` is only used in error messages.
pub fn parse_scenario_entry(
    file: &str,
    text: &str,
) -> Result<(String, Option<String>, Scenario), CorpusError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(header) if header == format!("# {CORPUS_VERSION}") => {}
        other => {
            return Err(malformed(file, format!("bad header line: {other:?}")));
        }
    }
    let mut name = None;
    let mut parent = None;
    let mut seed = None;
    let mut vcpus = None;
    let mut preempt = None;
    let mut duration_ms = None;
    let mut mix = None;
    let mut fault = None;
    let mut rootkit = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| malformed(file, format!("expected key=value, got {line:?}")))?;
        let parse_u64 =
            |v: &str| v.parse::<u64>().map_err(|e| malformed(file, format!("{key}: {v:?}: {e}")));
        match key {
            "name" => name = Some(value.to_owned()),
            "parent" => parent = (value != "-").then(|| value.to_owned()),
            "seed" => seed = Some(parse_u64(value)?),
            "vcpus" => vcpus = Some(parse_u64(value)? as usize),
            "preempt" => preempt = Some(parse_u64(value)? != 0),
            "duration_ms" => duration_ms = Some(parse_u64(value)?),
            "mix" => {
                mix =
                    Some(WorkloadMix::from_label(value).ok_or_else(|| {
                        malformed(file, format!("unknown workload mix {value:?}"))
                    })?);
            }
            "fault" => {
                fault = Some(if value == "none" {
                    None
                } else {
                    let (site, kind) = value.split_once(',').ok_or_else(|| {
                        malformed(file, format!("fault expects site,kind: {value:?}"))
                    })?;
                    let persistent = match kind {
                        "persistent" => true,
                        "transient" => false,
                        other => {
                            return Err(malformed(
                                file,
                                format!("fault kind must be persistent|transient, got {other:?}"),
                            ));
                        }
                    };
                    Some((parse_u64(site)? as u32, persistent))
                });
            }
            "rootkit" => {
                rootkit =
                    Some(if value == "none" { None } else { Some(parse_u64(value)? as usize) });
            }
            other => return Err(malformed(file, format!("unknown field {other:?}"))),
        }
    }
    let field = |opt: Option<&str>, what: &str| match opt {
        Some(v) => Ok(v.to_owned()),
        None => Err(malformed(file, format!("missing field {what}"))),
    };
    let name = field(name.as_deref(), "name")?;
    let missing = |what: &str| malformed(file, format!("missing field {what}"));
    let scenario = Scenario {
        name: name.clone(),
        seed: seed.ok_or_else(|| missing("seed"))?,
        vcpus: vcpus.ok_or_else(|| missing("vcpus"))?,
        preemptible: preempt.ok_or_else(|| missing("preempt"))?,
        duration: Duration::from_millis(duration_ms.ok_or_else(|| missing("duration_ms"))?),
        mix: mix.ok_or_else(|| missing("mix"))?,
        fault: fault.ok_or_else(|| missing("fault"))?,
        rootkit: rootkit.ok_or_else(|| missing("rootkit"))?,
    };
    Ok((name, parent, scenario))
}

/// Serializes the manifest: one `<file> <fingerprint>` line per entry, in
/// the given order.
pub fn encode_manifest(entries: &[(String, u64)]) -> String {
    let mut out = format!("# {CORPUS_VERSION} manifest\n");
    for (file, fp) in entries {
        out.push_str(&format!("{file} {fp:#018x}\n"));
    }
    out
}

/// Parses the manifest into `(file, fingerprint)` pairs.
pub fn parse_manifest(file: &str, text: &str) -> Result<Vec<(String, u64)>, CorpusError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == format!("# {CORPUS_VERSION} manifest") => {}
        other => return Err(malformed(file, format!("bad manifest header: {other:?}"))),
    }
    let mut out = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (entry, fp) = line
            .split_once(' ')
            .ok_or_else(|| malformed(file, format!("expected '<file> <fp>', got {line:?}")))?;
        let fp = fp
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| malformed(file, format!("bad fingerprint {fp:?}")))?;
        out.push((entry.to_owned(), fp));
    }
    Ok(out)
}

/// Loads a corpus directory: reads `MANIFEST.txt` and every entry it
/// names, attaching the manifest fingerprints.
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusItem>, CorpusError> {
    let manifest_path = dir.join("MANIFEST.txt");
    let as_str = |p: &Path| p.display().to_string();
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| CorpusError::Io(as_str(&manifest_path), e))?;
    let mut items = Vec::new();
    for (entry, fingerprint) in parse_manifest(&as_str(&manifest_path), &text)? {
        let path = dir.join(&entry);
        if entry.ends_with(".scn") {
            let text =
                std::fs::read_to_string(&path).map_err(|e| CorpusError::Io(as_str(&path), e))?;
            let (name, parent, scenario) = parse_scenario_entry(&as_str(&path), &text)?;
            items.push(CorpusItem {
                name,
                parent,
                fingerprint,
                kind: InputKind::Scenario(scenario),
            });
        } else if entry.ends_with(".htrz") {
            let bytes = std::fs::read(&path).map_err(|e| CorpusError::Io(as_str(&path), e))?;
            let raw = decompress(&bytes).map_err(|e| CorpusError::Trace(as_str(&path), e))?;
            let trace = Trace::decode(&raw).map_err(|e| CorpusError::Trace(as_str(&path), e))?;
            let name = entry.trim_end_matches(".htrz").to_owned();
            items.push(CorpusItem {
                name,
                parent: None,
                fingerprint,
                kind: InputKind::Trace(trace),
            });
        } else {
            return Err(malformed(
                &as_str(&manifest_path),
                format!("unknown entry kind {entry:?} (expected .scn or .htrz)"),
            ));
        }
    }
    Ok(items)
}

/// Writes a corpus (entries plus manifest) into `dir`, deterministically.
pub fn save_corpus(dir: &Path, items: &[CorpusItem]) -> Result<(), CorpusError> {
    let as_str = |p: &Path| p.display().to_string();
    std::fs::create_dir_all(dir).map_err(|e| CorpusError::Io(as_str(dir), e))?;
    let mut manifest = Vec::new();
    for item in items {
        let (file, bytes) = match &item.kind {
            InputKind::Scenario(s) => (
                format!("{}.scn", item.name),
                encode_scenario_entry(&item.name, item.parent.as_deref(), s).into_bytes(),
            ),
            InputKind::Trace(t) => (format!("{}.htrz", item.name), compress(&t.encode())),
        };
        let path = dir.join(&file);
        std::fs::write(&path, bytes).map_err(|e| CorpusError::Io(as_str(&path), e))?;
        manifest.push((file, item.fingerprint));
    }
    let path = dir.join("MANIFEST.txt");
    std::fs::write(&path, encode_manifest(&manifest)).map_err(|e| CorpusError::Io(as_str(&path), e))
}

/// The checked-in starter corpus lives here (the fuzz analogue of the
/// golden trace directory).
pub const CORPUS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");

/// The starter scenarios: a fixed, hand-picked spread over the input
/// space — plain workloads, a persistent lock fault, a rootkit insertion,
/// and a 4-vCPU fault+rootkit stress mix the blind sampler cannot emit.
pub fn starter_scenarios() -> Vec<Scenario> {
    let scn = |name: &str,
               seed: u64,
               vcpus: usize,
               preemptible: bool,
               ms: u64,
               mix: WorkloadMix,
               fault: Option<(u32, bool)>,
               rootkit: Option<usize>| Scenario {
        name: name.to_owned(),
        seed,
        vcpus,
        preemptible,
        duration: Duration::from_millis(ms),
        mix,
        fault,
        rootkit,
    };
    vec![
        scn("seed-writer", 101, 1, false, 90, WorkloadMix::Writer, None, None),
        scn("seed-hanoi-fault", 102, 2, true, 110, WorkloadMix::Hanoi, Some((3, true)), None),
        scn("seed-make-rootkit", 103, 2, false, 100, WorkloadMix::MakeJ2, None, Some(0)),
        scn(
            "seed-stress",
            104,
            4,
            true,
            120,
            WorkloadMix::WriterPlusHanoi,
            Some((7, true)),
            Some(1),
        ),
        scn("seed-preempt-mix", 105, 3, true, 80, WorkloadMix::MakeJ1, Some((0, false)), None),
    ]
}

/// Rebuilds the starter corpus: runs every starter scenario, records its
/// coverage fingerprint, derives one truncated-trace entry, and writes
/// everything (plus the manifest) into `dir`.
pub fn record_starter_corpus(dir: &Path) -> Result<Vec<CorpusItem>, CorpusError> {
    let mut items = Vec::new();
    for s in starter_scenarios() {
        let obs = observe_scenario(&s, &BASE);
        items.push(CorpusItem {
            name: s.name.clone(),
            parent: None,
            fingerprint: obs.coverage.fingerprint(),
            kind: InputKind::Scenario(s),
        });
        // Derive one replay-only trace entry from the first scenario: its
        // trace truncated to a short prefix, the simplest mutated input
        // that exists only on the replay path.
        if items.len() == 1 {
            let mut t = obs.trace.clone();
            TraceMutation::Truncate { keep: 200 }.apply(&mut t);
            t.header.scenario = "seed-writer-trunc".to_owned();
            let replay_obs = observe_replay(&t);
            items.push(CorpusItem {
                name: "seed-writer-trunc".to_owned(),
                parent: Some("seed-writer".to_owned()),
                fingerprint: replay_obs.coverage.fingerprint(),
                kind: InputKind::Trace(t),
            });
        }
    }
    save_corpus(dir, &items)?;
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_entries_round_trip() {
        for s in starter_scenarios() {
            let text = encode_scenario_entry(&s.name, Some("p0"), &s);
            let (name, parent, parsed) = parse_scenario_entry("unit.scn", &text).expect("parses");
            assert_eq!(name, s.name);
            assert_eq!(parent.as_deref(), Some("p0"));
            assert_eq!(parsed.seed, s.seed);
            assert_eq!(parsed.vcpus, s.vcpus);
            assert_eq!(parsed.preemptible, s.preemptible);
            assert_eq!(parsed.duration, s.duration);
            assert_eq!(parsed.mix, s.mix);
            assert_eq!(parsed.fault, s.fault);
            assert_eq!(parsed.rootkit, s.rootkit);
        }
    }

    #[test]
    fn malformed_entries_are_structured_errors() {
        assert!(parse_scenario_entry("u.scn", "garbage").is_err());
        let missing = format!("# {CORPUS_VERSION}\nname=x\n");
        assert!(matches!(
            parse_scenario_entry("u.scn", &missing),
            Err(CorpusError::Malformed { .. })
        ));
        let bad_mix = format!("# {CORPUS_VERSION}\nname=x\nmix=quake\n");
        let err = parse_scenario_entry("u.scn", &bad_mix).unwrap_err();
        assert!(err.to_string().contains("quake"), "{err}");
    }

    #[test]
    fn manifest_round_trips() {
        let entries = vec![("a.scn".to_owned(), 0x1234u64), ("b.htrz".to_owned(), u64::MAX)];
        let text = encode_manifest(&entries);
        assert_eq!(parse_manifest("m", &text).expect("parses"), entries);
        assert!(parse_manifest("m", "nope").is_err());
    }
}
