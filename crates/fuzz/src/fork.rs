//! Fork-from-snapshot exploration: run a scenario's shared prefix once,
//! capture the warmed-up guest as a `.htsp` machine snapshot, then explore
//! every duration branch by restoring into a recipe-fresh VM and running
//! only the extension.
//!
//! The snapshot contract (`snapshot → restore → run ≡ run`, bit-for-bit)
//! makes a forked observation indistinguishable from an uninterrupted one:
//! the trace bytes, verdict, flight dump and coverage fingerprint all
//! match a from-scratch run of the same total duration. That is what lets
//! the fuzzer substitute forks for full runs without weakening any of its
//! checks — and what the equivalence tests in `tests/fork_equivalence.rs`
//! pin down.
//!
//! A fork point is bound to a *recipe*: every scenario field except the
//! name and the duration, plus the configuration variant. Mutants that
//! change the mix, vCPU count, preemption, fault or rootkit rebuild the
//! guest and cannot reuse the snapshot ([`recipe_key`] is the cache key
//! that captures exactly this); duration-only branches — the common case
//! when the fuzzer probes how long a hang or a scan needs to manifest —
//! all fork from one prefix.

use crate::harness::{
    fold_trace, fold_transitions, fold_verdict, register_extra_fuzz_auditors, RunObservation,
    FLIGHT_CAPACITY,
};
use hypertap_core::coverage::{CoverageMap, StreamCoverage};
use hypertap_core::prelude::VmId;
use hypertap_hvsim::clock::Duration;
use hypertap_replay::prelude::*;
use hypertap_replay::recorder::TraceRecorder;
use hypertap_replay::scenario::{build_scenario_vm, ConfigVariant};

/// A warmed-up guest, frozen: the machine snapshot plus the trace prefix
/// recorded while warming it, reusable for any duration branch of the same
/// recipe.
#[derive(Debug, Clone)]
pub struct ForkPoint {
    scenario: Scenario,
    variant: ConfigVariant,
    warmup: Duration,
    snapshot: Vec<u8>,
    prefix_records: Vec<u8>,
}

/// The recipe identity a fork point is bound to: everything that shapes
/// the built guest and its schedule except the display name and the run
/// length. Two scenarios with equal keys restore each other's snapshots.
pub fn recipe_key(s: &Scenario, variant: &ConfigVariant) -> String {
    format!(
        "{}|seed={}|vcpus={}|preempt={}|mix={}|fault={:?}|rootkit={:?}",
        variant.label,
        s.seed,
        s.vcpus,
        s.preemptible,
        s.mix.label(),
        s.fault,
        s.rootkit
    )
}

impl ForkPoint {
    /// Runs the scenario under `variant` for `warmup` with the fuzz
    /// harness's EM setup (flight capacity, fuzz-scale auditors, trace
    /// recorder) and freezes the result.
    pub fn capture(
        scenario: &Scenario,
        variant: &ConfigVariant,
        warmup: Duration,
    ) -> Result<ForkPoint, String> {
        let mut vm = build_scenario_vm(scenario, variant, VmId(0));
        let recorder = TraceRecorder::new(TraceHeader::new(
            scenario.vcpus as u64,
            scenario.seed,
            scenario.name.clone(),
            variant.label,
        ));
        {
            let em = &mut vm.machine.hypervisor_mut().em;
            em.flight_mut().set_capacity(FLIGHT_CAPACITY);
            register_extra_fuzz_auditors(em, scenario.vcpus);
            em.attach_tap(recorder.tap());
        }
        vm.run_for(warmup);
        vm.machine.hypervisor_mut().em.detach_tap();
        let snapshot = vm.snapshot().map_err(|e| format!("capturing fork point: {e}"))?;
        Ok(ForkPoint {
            scenario: scenario.clone(),
            variant: variant.clone(),
            warmup,
            snapshot,
            prefix_records: recorder.snapshot_records(),
        })
    }

    /// Captures a fork point *during* a full observation run: the guest
    /// runs to the warmup mark, is snapshotted in place (snapshots do not
    /// perturb the machine — the golden `.htsp` suite pins
    /// `run → snapshot → run-on ≡ run`), and then runs on to the scenario
    /// deadline. One simulator pass yields both the from-scratch
    /// observation of this branch and the frozen prefix every later
    /// branch of the recipe forks from.
    pub fn capture_observing(
        scenario: &Scenario,
        variant: &ConfigVariant,
        warmup: Duration,
    ) -> Result<(ForkPoint, RunObservation), String> {
        if scenario.duration < warmup {
            return Err(format!(
                "scenario duration {:?} is shorter than the {warmup:?} warmup",
                scenario.duration
            ));
        }
        let mut vm = build_scenario_vm(scenario, variant, VmId(0));
        let recorder = TraceRecorder::new(TraceHeader::new(
            scenario.vcpus as u64,
            scenario.seed,
            scenario.name.clone(),
            variant.label,
        ));
        {
            let em = &mut vm.machine.hypervisor_mut().em;
            em.flight_mut().set_capacity(FLIGHT_CAPACITY);
            register_extra_fuzz_auditors(em, scenario.vcpus);
            em.attach_tap(recorder.tap());
        }
        vm.run_until(hypertap_hvsim::clock::SimTime::ZERO + warmup);
        let snapshot = vm.snapshot().map_err(|e| format!("capturing fork point: {e}"))?;
        let prefix_records = recorder.snapshot_records();
        vm.run_until(hypertap_hvsim::clock::SimTime::ZERO + scenario.duration);

        let flight = vm.flight_dump("scenariofuzz");
        let em = &mut vm.machine.hypervisor_mut().em;
        em.detach_tap();
        let trace = recorder.finish();
        let verdict = Verdict::collect(em, &trace);
        let mut stream = StreamCoverage::new();
        fold_trace(&trace, &mut stream);
        let mut coverage = CoverageMap::new();
        stream.fold_into(&mut coverage);
        let mut transitions = CoverageMap::new();
        fold_transitions(&flight, &mut coverage, &mut transitions);
        fold_verdict(&verdict, &mut coverage);

        let point = ForkPoint {
            scenario: scenario.clone(),
            variant: variant.clone(),
            warmup,
            snapshot,
            prefix_records,
        };
        Ok((point, RunObservation { trace, verdict, coverage, transitions, flight }))
    }

    /// The simulated time the captured guest has already run.
    pub fn warmup(&self) -> Duration {
        self.warmup
    }

    /// The recipe key this fork point serves (see [`recipe_key`]).
    pub fn key(&self) -> String {
        recipe_key(&self.scenario, &self.variant)
    }

    /// Size of the frozen state in bytes (snapshot + trace prefix) — what
    /// a fork saves over re-stepping the prefix costs in memory.
    pub fn frozen_bytes(&self) -> usize {
        self.snapshot.len() + self.prefix_records.len()
    }

    /// Explores one duration branch: restores the snapshot into a
    /// recipe-fresh VM, runs on until `total` simulated time, and returns
    /// the same observation a from-scratch run of duration `total` would
    /// produce — same trace bytes, verdict, flight dump and coverage.
    ///
    /// `name` replaces the scenario name in the returned trace header (the
    /// fuzzer names offspring after their iteration). `total` must be at
    /// least the warmup; a shorter branch has already been overrun by the
    /// prefix and must run from scratch instead.
    pub fn fork(&self, name: &str, total: Duration) -> Result<RunObservation, String> {
        if total < self.warmup {
            return Err(format!(
                "branch duration {total:?} is shorter than the {:?} warmup",
                self.warmup
            ));
        }
        let mut vm = build_scenario_vm(&self.scenario, &self.variant, VmId(0));
        {
            let em = &mut vm.machine.hypervisor_mut().em;
            em.flight_mut().set_capacity(FLIGHT_CAPACITY);
            register_extra_fuzz_auditors(em, self.scenario.vcpus);
        }
        vm.restore(&self.snapshot).map_err(|e| format!("restoring fork point: {e}"))?;

        let mut recorder = TraceRecorder::new(TraceHeader::new(
            self.scenario.vcpus as u64,
            self.scenario.seed,
            self.scenario.name.clone(),
            self.variant.label,
        ));
        recorder.restore_records(&self.prefix_records)?;
        vm.machine.hypervisor_mut().em.attach_tap(recorder.tap());

        // An absolute deadline, not `run_for`: if the guest went idle or
        // shut down inside the warmup, the restored clock sits before the
        // warmup mark, and a relative extension would overshoot the
        // deadline a from-scratch run of `total` observes.
        vm.run_until(hypertap_hvsim::clock::SimTime::ZERO + total);

        let flight = vm.flight_dump("scenariofuzz");
        let em = &mut vm.machine.hypervisor_mut().em;
        em.detach_tap();
        let mut trace = recorder.finish();
        trace.header.scenario = name.to_owned();
        let verdict = Verdict::collect(em, &trace);

        // The live collector tap's fold is a pure function of the record
        // stream, so folding the finished trace after the fact produces
        // the identical stream coverage (see `fold_trace`).
        let mut stream = StreamCoverage::new();
        fold_trace(&trace, &mut stream);
        let mut coverage = CoverageMap::new();
        stream.fold_into(&mut coverage);
        let mut transitions = CoverageMap::new();
        fold_transitions(&flight, &mut coverage, &mut transitions);
        fold_verdict(&verdict, &mut coverage);
        Ok(RunObservation { trace, verdict, coverage, transitions, flight })
    }
}
