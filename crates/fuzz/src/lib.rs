//! Coverage-guided scenario fuzzing for the HyperTap monitoring stack.
//!
//! The conformance fuzzer samples scenarios blindly from seeds; this crate
//! follows the IRIS direction instead and turns the replay + flight +
//! metrics layers into a feedback-driven bug-finding engine:
//!
//! * **Inputs** are scenario specs (run live, diffed against a partner
//!   configuration, cross-checked against replay) and recorded HTRC
//!   traces (mutated through the codec, run through replay alone).
//! * **Coverage** is deterministic feedback the stack already produces —
//!   auditor state-transition edges from the flight recorder, stream-edge
//!   and per-class histograms from an EM tap, finding counts from the
//!   verdict — folded into a [`CoverageMap`] fingerprint.
//! * **The corpus** keeps every input that reached new coverage; guided
//!   generation mutates corpus entries ([`mutate`],
//!   [`hypertap_replay::mutate`]) instead of sampling fresh.
//! * **Divergences** (pair mismatch, replay mismatch, codec or replay
//!   non-determinism) are shrunk to a minimal reproducer pair
//!   (`.htrz` + `.htfr`) via [`hypertap_replay::shrink`].
//!
//! Everything is seeded: the same seed and iteration budget produce a
//! byte-identical corpus and coverage fingerprint. (A wall-clock budget
//! can stop a run early, trading that guarantee for bounded latency.)

pub mod corpus;
pub mod fork;
pub mod harness;
pub mod mutate;

use crate::corpus::{CorpusItem, InputKind};
use crate::fork::{recipe_key, ForkPoint};
use crate::harness::{observe_replay, observe_scenario, write_reproducer, write_trace_artifact};
use crate::mutate::mutate_scenario;
use hypertap_core::coverage::CoverageMap;
use hypertap_hvsim::clock::Duration;
use hypertap_replay::prelude::*;
use hypertap_replay::scenario::{ConfigVariant, BATCHED_OFF, EXTRA_BITMAP, FLIGHT_OFF, NO_TLB};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

/// The Exact-policy partner variants a scenario input is diffed against.
pub const PARTNERS: [&ConfigVariant; 4] = [&NO_TLB, &BATCHED_OFF, &FLIGHT_OFF, &EXTRA_BITMAP];

/// A fuzzing budget and strategy.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed: drives every sampled choice in the run.
    pub seed: u64,
    /// Iteration budget (one generated input per iteration).
    pub iterations: u64,
    /// Duration cap applied to every scenario the fuzzer runs.
    pub cap: Duration,
    /// Coverage-guided corpus mutation (true) or blind seed sampling
    /// (false) — the baseline the guided loop is compared against.
    pub guided: bool,
    /// Optional wall-clock budget. Stops the loop early when exceeded;
    /// byte-determinism then only holds between runs hitting the same
    /// iteration count.
    pub deadline: Option<std::time::Instant>,
    /// Fork-from-snapshot: when set, scenarios longer than this warmup
    /// run from a cached [`ForkPoint`] of their recipe — the prefix is
    /// stepped once per recipe and every duration branch restores and
    /// runs only its extension. The snapshot equivalence contract makes
    /// the observations bit-identical to from-scratch runs, so coverage,
    /// corpus and divergence checks are unchanged; only wall-clock drops.
    pub fork_warmup: Option<Duration>,
}

impl FuzzConfig {
    /// A guided config with the default 100 ms cap.
    pub fn new(seed: u64, iterations: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            iterations,
            cap: Duration::from_millis(100),
            guided: true,
            deadline: None,
            fork_warmup: None,
        }
    }
}

/// One confirmed misbehaviour found while fuzzing.
#[derive(Debug)]
pub struct DivergenceReport {
    /// Iteration that found it (`u64::MAX` for the seeding phase).
    pub iteration: u64,
    /// What kind of check failed: `pair-divergence`, `replay-mismatch`,
    /// `provenance-invalid`, `codec-roundtrip`, `replay-nondeterminism`.
    pub kind: &'static str,
    /// The input's name.
    pub input: String,
    /// Human-readable description.
    pub detail: String,
    /// Reproducer artifacts written for it (empty when the run had no
    /// output directory).
    pub reproducer: Vec<PathBuf>,
}

/// The result of a fuzzing run.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Iterations actually executed (≤ the budget under a deadline).
    pub iterations: u64,
    /// Live simulator runs plus replays performed.
    pub executions: u64,
    /// How many base observations came from a fork instead of a
    /// from-scratch run (0 unless [`FuzzConfig::fork_warmup`] is set).
    pub forks: u64,
    /// The corpus: every input that reached new coverage, admission order.
    pub corpus: Vec<CorpusItem>,
    /// The merged coverage map.
    pub coverage: CoverageMap,
    /// Merged auditor state-transition edges only.
    pub transitions: CoverageMap,
    /// Everything that failed a check.
    pub divergences: Vec<DivergenceReport>,
}

impl FuzzOutcome {
    /// The run's coverage fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.coverage.fingerprint()
    }

    /// Distinct auditor state-transition edge bits reached.
    pub fn transition_edges(&self) -> u32 {
        self.transitions.bits()
    }
}

/// How many warmed-up recipes the fork cache keeps frozen at once. Each
/// entry holds a full machine snapshot (~100 KiB for a booted guest), so
/// the cache is bounded; when full it is cleared and re-warmed on demand,
/// which stays deterministic because cache state is a pure function of
/// the iteration sequence.
const FORK_CACHE_LIMIT: usize = 16;

struct Fuzzer {
    config: FuzzConfig,
    rng: StdRng,
    corpus: Vec<CorpusItem>,
    coverage: CoverageMap,
    transitions: CoverageMap,
    divergences: Vec<DivergenceReport>,
    executions: u64,
    repro_dir: Option<PathBuf>,
    fork_points: std::collections::BTreeMap<String, ForkPoint>,
    forks_taken: u64,
}

impl Fuzzer {
    fn clamp(&self, s: &mut Scenario) {
        if s.duration > self.config.cap {
            s.duration = self.config.cap;
        }
    }

    fn admit(
        &mut self,
        iteration: u64,
        name: String,
        parent: Option<String>,
        kind: InputKind,
        cov: &CoverageMap,
        trans: &CoverageMap,
    ) {
        let novel = self.coverage.novel_bits(cov) > 0;
        self.coverage.merge(cov);
        self.transitions.merge(trans);
        if novel {
            self.corpus.push(CorpusItem { name, parent, fingerprint: cov.fingerprint(), kind });
        }
        let _ = iteration;
    }

    fn report(
        &mut self,
        iteration: u64,
        kind: &'static str,
        input: &str,
        detail: String,
        reproducer: Vec<PathBuf>,
    ) {
        self.divergences.push(DivergenceReport {
            iteration,
            kind,
            input: input.to_owned(),
            detail,
            reproducer,
        });
    }

    /// The base observation for a scenario: a from-scratch run, or — when
    /// fork mode is on and the scenario outlives the warmup — a fork from
    /// its recipe's cached snapshot. The snapshot equivalence contract
    /// makes the two bit-identical, so callers never see the difference.
    fn observe_base(&mut self, s: &Scenario) -> crate::harness::RunObservation {
        let Some(warmup) = self.config.fork_warmup else {
            self.executions += 1;
            return observe_scenario(s, &BASE);
        };
        if s.duration <= warmup {
            self.executions += 1;
            return observe_scenario(s, &BASE);
        }
        let key = recipe_key(s, &BASE);
        self.executions += 1;
        if let Some(point) = self.fork_points.get(&key) {
            match point.fork(&s.name, s.duration) {
                Ok(obs) => {
                    self.forks_taken += 1;
                    return obs;
                }
                Err(_) => return observe_scenario(s, &BASE),
            }
        }
        // First branch of this recipe: one simulator pass produces both
        // the observation and the fork point later branches reuse.
        if self.fork_points.len() >= FORK_CACHE_LIMIT {
            self.fork_points.clear();
        }
        match ForkPoint::capture_observing(s, &BASE, warmup) {
            Ok((point, obs)) => {
                self.fork_points.insert(key, point);
                obs
            }
            Err(_) => observe_scenario(s, &BASE),
        }
    }

    /// Full checks for a scenario input: live base run, Exact diff against
    /// a sampled partner variant, replay cross-check, provenance check.
    /// Returns the base observation.
    fn check_scenario(&mut self, iteration: u64, s: &Scenario) -> crate::harness::RunObservation {
        let obs = self.observe_base(s);

        let partner = PARTNERS[self.rng.gen_range(0usize..PARTNERS.len())];
        let (partner_trace, _) = run_scenario(s, partner);
        self.executions += 1;
        if diff_traces(&obs.trace, &partner_trace, DiffPolicy::Exact).is_some() {
            let shrunk = shrink_diverging_prefix(&obs.trace, &partner_trace, DiffPolicy::Exact)
                .expect("a diverging pair shrinks");
            let stem = format!("repro-i{iteration}-pair");
            let reproducer = match &self.repro_dir {
                Some(dir) => write_reproducer(dir, &stem, &shrunk.left, &shrunk.right, &obs.flight)
                    .expect("reproducer artifacts must be writable"),
                None => Vec::new(),
            };
            let detail = format!(
                "{} vs {} diverge; shrunk to {} records\n{}",
                BASE.label, partner.label, shrunk.keep, shrunk.divergence
            );
            self.report(iteration, "pair-divergence", &s.name, detail, reproducer);
        }

        let replayed =
            replay_trace(&obs.trace, |em| crate::harness::register_fuzz_auditors(em, s.vcpus));
        self.executions += 1;
        if replayed != obs.verdict {
            let reproducer =
                self.trace_artifact(&format!("repro-i{iteration}-replay"), &obs.trace, &obs.flight);
            self.report(
                iteration,
                "replay-mismatch",
                &s.name,
                format!(
                    "live verdict != replayed verdict\nlive: {:?}\nreplayed: {replayed:?}",
                    obs.verdict
                ),
                reproducer,
            );
        }
        if let Err(e) = validate_provenance(&replayed, &obs.trace) {
            let reproducer = self.trace_artifact(
                &format!("repro-i{iteration}-provenance"),
                &obs.trace,
                &obs.flight,
            );
            self.report(iteration, "provenance-invalid", &s.name, e, reproducer);
        }
        obs
    }

    fn trace_artifact(&mut self, stem: &str, trace: &Trace, flight: &[u8]) -> Vec<PathBuf> {
        match &self.repro_dir {
            Some(dir) => write_trace_artifact(dir, stem, trace, flight)
                .expect("reproducer artifacts must be writable"),
            None => Vec::new(),
        }
    }

    /// Robustness checks for a trace input: codec round-trips, replay
    /// determinism, a one-byte corruption probe. Returns the replay
    /// observation's coverage maps.
    fn check_trace(&mut self, iteration: u64, name: &str, t: &Trace) -> (CoverageMap, CoverageMap) {
        let bytes = t.encode();
        match Trace::decode(&bytes) {
            Ok(decoded) if decoded == *t => {}
            Ok(_) => {
                let repro = self.trace_artifact(&format!("repro-i{iteration}-codec"), t, &[]);
                self.report(
                    iteration,
                    "codec-roundtrip",
                    name,
                    "decode(encode(t)) != t".into(),
                    repro,
                );
            }
            Err(e) => {
                let repro = self.trace_artifact(&format!("repro-i{iteration}-codec"), t, &[]);
                self.report(
                    iteration,
                    "codec-roundtrip",
                    name,
                    format!("decode failed: {e}"),
                    repro,
                );
            }
        }
        if decompress(&compress(&bytes)).as_deref() != Ok(&bytes[..]) {
            let repro = self.trace_artifact(&format!("repro-i{iteration}-compress"), t, &[]);
            self.report(
                iteration,
                "codec-roundtrip",
                name,
                "HTRZ round-trip mismatch".into(),
                repro,
            );
        }
        // Corruption probe: a flipped byte must yield Ok or a structured
        // error — a panic here would abort the fuzzer, which is the signal.
        if !bytes.is_empty() {
            let pos = self.rng.gen_range(0usize..bytes.len());
            let flip = self.rng.gen_range(1u64..256) as u8;
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= flip;
            let _ = Trace::decode(&corrupted);
        }

        let r1 = observe_replay(t);
        let r2 = observe_replay(t);
        self.executions += 2;
        if r1.verdict != r2.verdict {
            let repro =
                self.trace_artifact(&format!("repro-i{iteration}-replaydet"), t, &r1.flight);
            self.report(
                iteration,
                "replay-nondeterminism",
                name,
                format!("two replays disagree\nfirst: {:?}\nsecond: {:?}", r1.verdict, r2.verdict),
                repro,
            );
        }
        (r1.coverage, r1.transitions)
    }

    /// Runs the seeding phase: every starter item is executed once and
    /// admitted by novelty (the first item always is).
    fn seed_corpus(&mut self, starter: Vec<CorpusItem>) {
        for item in starter {
            match item.kind {
                InputKind::Scenario(mut s) => {
                    self.clamp(&mut s);
                    let obs = self.check_scenario(u64::MAX, &s);
                    self.admit(
                        u64::MAX,
                        item.name,
                        item.parent,
                        InputKind::Scenario(s),
                        &obs.coverage,
                        &obs.transitions,
                    );
                }
                InputKind::Trace(t) => {
                    let (cov, trans) = self.check_trace(u64::MAX, &item.name, &t);
                    self.admit(u64::MAX, item.name, item.parent, InputKind::Trace(t), &cov, &trans);
                }
            }
        }
    }

    fn iteration(&mut self, i: u64) {
        let pick = self.rng.gen_range(0usize..self.corpus.len().max(1));
        let (input, parent_name) = if self.config.guided {
            match &self.corpus[pick].kind {
                InputKind::Scenario(base) => {
                    let base = base.clone();
                    let parent = self.corpus[pick].name.clone();
                    let (mut s, _muts) =
                        mutate_scenario(&mut self.rng, &base, &format!("c{i:04}"), self.config.cap);
                    self.clamp(&mut s);
                    (InputKind::Scenario(s), Some(parent))
                }
                InputKind::Trace(base) => {
                    let base = base.clone();
                    let parent = self.corpus[pick].name.clone();
                    let mut t = base.clone();
                    let n = self.rng.gen_range(1usize..3);
                    for _ in 0..n {
                        TraceMutation::sample(&mut self.rng, t.records.len() as u64).apply(&mut t);
                    }
                    t.header.scenario = format!("t{i:04}");
                    (InputKind::Trace(t), Some(parent))
                }
            }
        } else {
            // Blind baseline: fresh sample from the seed distribution,
            // exactly like the conformance fuzzer, capped like the guided
            // runs.
            let mut s = Scenario::sample(self.config.seed, i);
            self.clamp(&mut s);
            s.name = format!("c{i:04}");
            (InputKind::Scenario(s), None)
        };

        match input {
            InputKind::Scenario(s) => {
                let obs = self.check_scenario(i, &s);
                // Derive an occasional replay-only input from the fresh
                // trace (both modes, so per-iteration work is comparable).
                let derived = if self.rng.gen_range(0u32..3) == 0 {
                    let mut t = obs.trace.clone();
                    let m = TraceMutation::sample(&mut self.rng, t.records.len() as u64);
                    m.apply(&mut t);
                    t.header.scenario = format!("t{i:04}");
                    let name = format!("t{i:04}");
                    let (cov, trans) = self.check_trace(i, &name, &t);
                    Some((name, t, cov, trans))
                } else {
                    None
                };
                self.admit(
                    i,
                    format!("c{i:04}"),
                    parent_name.clone(),
                    InputKind::Scenario(s),
                    &obs.coverage,
                    &obs.transitions,
                );
                if let Some((name, t, cov, trans)) = derived {
                    self.admit(
                        i,
                        name,
                        Some(format!("c{i:04}")),
                        InputKind::Trace(t),
                        &cov,
                        &trans,
                    );
                }
            }
            InputKind::Trace(t) => {
                let name = format!("t{i:04}");
                let (cov, trans) = self.check_trace(i, &name, &t);
                self.admit(i, name, parent_name, InputKind::Trace(t), &cov, &trans);
            }
        }
    }
}

/// Runs a fuzzing campaign. `starter` seeds the corpus (use
/// [`corpus::starter_scenarios`] wrapped in items, or a loaded corpus
/// directory); `repro_dir`, when given, receives reproducer artifacts for
/// every divergence found.
pub fn run_fuzz(
    config: FuzzConfig,
    starter: Vec<CorpusItem>,
    repro_dir: Option<&Path>,
) -> FuzzOutcome {
    let mut fuzzer = Fuzzer {
        rng: StdRng::seed_from_u64(config.seed),
        corpus: Vec::new(),
        coverage: CoverageMap::new(),
        transitions: CoverageMap::new(),
        divergences: Vec::new(),
        executions: 0,
        repro_dir: repro_dir.map(Path::to_path_buf),
        fork_points: std::collections::BTreeMap::new(),
        forks_taken: 0,
        config,
    };
    // The starter corpus is part of the guided system; the blind baseline
    // is exactly the conformance fuzzer's seed sampling, nothing more.
    if fuzzer.config.guided {
        let starter = if starter.is_empty() {
            crate::corpus::starter_scenarios()
                .into_iter()
                .map(|s| CorpusItem {
                    name: s.name.clone(),
                    parent: None,
                    fingerprint: 0,
                    kind: InputKind::Scenario(s),
                })
                .collect()
        } else {
            starter
        };
        fuzzer.seed_corpus(starter);
    }

    let mut ran = 0u64;
    for i in 0..fuzzer.config.iterations {
        if let Some(deadline) = fuzzer.config.deadline {
            if std::time::Instant::now() >= deadline {
                break;
            }
        }
        fuzzer.iteration(i);
        ran = i + 1;
    }
    FuzzOutcome {
        iterations: ran,
        executions: fuzzer.executions,
        forks: fuzzer.forks_taken,
        corpus: fuzzer.corpus,
        coverage: fuzzer.coverage,
        transitions: fuzzer.transitions,
        divergences: fuzzer.divergences,
    }
}
