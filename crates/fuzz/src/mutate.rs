//! Structured mutations over scenario specs.
//!
//! A [`Scenario`] fully determines guest behaviour, so mutating its fields
//! explores guest-state space directly: workload mixes, vCPU counts (up to
//! [`MAX_VCPUS`] — beyond the blind sampler's 1–2), preemption, run
//! length, fault-injection sites/persistence and rootkit insertion points.
//! Mutations are values so the fuzzer can log the exact edit chain that
//! produced each corpus entry.

use hypertap_attacks::rootkits::all_rootkits;
use hypertap_guestos::klocks::SITE_COUNT;
use hypertap_hvsim::clock::Duration;
use hypertap_replay::scenario::{Scenario, WorkloadMix};
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// Largest vCPU count the mutators will request. The blind sampler stays
/// at 1–2 vCPUs; scenarios above that are reachable only through guided
/// mutation, which is part of what the guided-vs-blind comparison shows.
pub const MAX_VCPUS: usize = 4;

/// Shortest mutated run, in milliseconds.
pub const MIN_DURATION_MS: u64 = 40;

/// One structured edit of a scenario spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioMutation {
    /// Replace the workload mix.
    Mix(WorkloadMix),
    /// Set the vCPU count (1..=[`MAX_VCPUS`]).
    Vcpus(usize),
    /// Flip kernel preemption.
    TogglePreemption,
    /// Set the run length in milliseconds.
    DurationMs(u64),
    /// Install (or move) a lock-discipline fault.
    Fault {
        /// Catalogue site index.
        site: u32,
        /// Persistent or one-shot.
        persistent: bool,
    },
    /// Remove the fault.
    DropFault,
    /// Install (or move) a rootkit insertion.
    Rootkit(usize),
    /// Remove the rootkit.
    DropRootkit,
}

impl fmt::Display for ScenarioMutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioMutation::Mix(m) => write!(f, "mix={}", m.label()),
            ScenarioMutation::Vcpus(n) => write!(f, "vcpus={n}"),
            ScenarioMutation::TogglePreemption => write!(f, "toggle-preempt"),
            ScenarioMutation::DurationMs(ms) => write!(f, "duration={ms}ms"),
            ScenarioMutation::Fault { site, persistent } => {
                write!(f, "fault={site}{}", if *persistent { ",persistent" } else { ",transient" })
            }
            ScenarioMutation::DropFault => write!(f, "drop-fault"),
            ScenarioMutation::Rootkit(i) => write!(f, "rootkit={i}"),
            ScenarioMutation::DropRootkit => write!(f, "drop-rootkit"),
        }
    }
}

impl ScenarioMutation {
    /// Samples a mutation; durations stay within
    /// [[`MIN_DURATION_MS`], `cap.as_millis()`].
    pub fn sample(rng: &mut StdRng, cap: Duration) -> ScenarioMutation {
        let cap_ms = cap.as_millis().max(MIN_DURATION_MS + 1);
        match rng.gen_range(0u32..8) {
            0 => ScenarioMutation::Mix(
                WorkloadMix::ALL[rng.gen_range(0usize..WorkloadMix::ALL.len())],
            ),
            1 => ScenarioMutation::Vcpus(rng.gen_range(1usize..MAX_VCPUS + 1)),
            2 => ScenarioMutation::TogglePreemption,
            3 => ScenarioMutation::DurationMs(rng.gen_range(MIN_DURATION_MS..cap_ms + 1)),
            4 => ScenarioMutation::Fault {
                site: rng.gen_range(0u32..SITE_COUNT as u32),
                persistent: rng.gen_range(0u32..2) == 1,
            },
            5 => ScenarioMutation::DropFault,
            6 => ScenarioMutation::Rootkit(rng.gen_range(0usize..all_rootkits().len())),
            _ => ScenarioMutation::DropRootkit,
        }
    }

    /// Applies the mutation in place (name and seed are left alone; the
    /// caller renames admitted offspring).
    pub fn apply(&self, s: &mut Scenario) {
        match *self {
            ScenarioMutation::Mix(m) => s.mix = m,
            ScenarioMutation::Vcpus(n) => s.vcpus = n.clamp(1, MAX_VCPUS),
            ScenarioMutation::TogglePreemption => s.preemptible = !s.preemptible,
            ScenarioMutation::DurationMs(ms) => {
                s.duration = Duration::from_millis(ms.max(MIN_DURATION_MS));
            }
            ScenarioMutation::Fault { site, persistent } => s.fault = Some((site, persistent)),
            ScenarioMutation::DropFault => s.fault = None,
            ScenarioMutation::Rootkit(i) => s.rootkit = Some(i % all_rootkits().len()),
            ScenarioMutation::DropRootkit => s.rootkit = None,
        }
    }
}

/// Derives a mutated offspring of `base`: 1–3 sampled mutations, renamed
/// to `name`. Returns the offspring and the applied edit chain.
pub fn mutate_scenario(
    rng: &mut StdRng,
    base: &Scenario,
    name: &str,
    cap: Duration,
) -> (Scenario, Vec<ScenarioMutation>) {
    let mut s = base.clone();
    let n = rng.gen_range(1usize..4);
    let muts: Vec<ScenarioMutation> = (0..n).map(|_| ScenarioMutation::sample(rng, cap)).collect();
    for m in &muts {
        m.apply(&mut s);
    }
    s.name = name.to_owned();
    (s, muts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn base() -> Scenario {
        let mut s = Scenario::sample(1, 0);
        s.duration = Duration::from_millis(100);
        s
    }

    #[test]
    fn mutations_keep_scenarios_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let cap = Duration::from_millis(120);
        for i in 0..200 {
            let (s, muts) = mutate_scenario(&mut rng, &base(), &format!("m{i}"), cap);
            assert!((1..=MAX_VCPUS).contains(&s.vcpus), "vcpus after {muts:?}");
            assert!(s.duration.as_millis() >= MIN_DURATION_MS);
            assert!(s.duration.as_millis() <= cap.as_millis().max(base().duration.as_millis()));
            if let Some((site, _)) = s.fault {
                assert!((site as usize) < SITE_COUNT);
            }
            if let Some(idx) = s.rootkit {
                assert!(idx < all_rootkits().len());
            }
            assert!(!muts.is_empty() && muts.len() <= 3);
        }
    }

    #[test]
    fn mutation_sampling_is_deterministic() {
        let cap = Duration::from_millis(120);
        let run = || {
            let mut rng = StdRng::seed_from_u64(77);
            (0..32).map(|_| ScenarioMutation::sample(&mut rng, cap)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
