//! Running fuzz inputs and extracting their coverage.
//!
//! A scenario input runs in the live simulator with the EM tap slot split
//! between the trace recorder and a coverage tap ([`TeeTap`]); a trace
//! input runs through the replay path with the same auditor registration
//! the conformance fuzzer uses. Both produce a [`RunObservation`]: the
//! trace, the verdict, the flight dump, and a coverage map folding
//!
//! * consecutive-class stream edges and per-class histograms (the tap),
//! * auditor state-transition edges from the flight recorder (normalized
//!   so embedded quantities collapse onto the structural edge),
//! * finding/alarm counts from the verdict.
//!
//! Coverage is a pure function of the deterministic run, so the same input
//! always fingerprints identically — live, replayed, or sharded.

use hypertap_core::coverage::{
    feature, normalize_detail, CoverageCollector, CoverageMap, StreamCoverage,
};
use hypertap_core::em::{EventMultiplexer, TeeTap};
use hypertap_core::flight::{DumpRecord, FlightDump};
use hypertap_core::prelude::VmId;
use hypertap_monitors::goshd::{Goshd, GoshdConfig};
use hypertap_replay::prelude::*;
use hypertap_replay::replay::placeholder_vm;
use hypertap_replay::scenario::ConfigVariant;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Flight-ring capacity fuzz runs use, large enough that auditor
/// transitions are not evicted before coverage extraction.
pub const FLIGHT_CAPACITY: usize = 1 << 15;

/// GOSHD hang threshold for the fuzz-scale auditors, in milliseconds.
/// The paper threshold (4 s) matches production profiling but can never
/// fire inside a ~100 ms fuzz run; the fuzz-scale instance is profiled
/// against the simulator's millisecond-scale scheduler instead.
pub const FUZZ_GOSHD_THRESHOLD_MS: u64 = 10;

/// Registers the fuzz-scale auditors on top of the conformance set: a
/// second GOSHD with a threshold that can fire inside a capped fuzz run.
/// It is a passive observer that consults only its own last-switch state,
/// so it changes what the flight recorder sees — the coverage signal —
/// without perturbing the recorded trace, and it stays safe on the replay
/// path's placeholder VM (unlike HRKD's periodic VMI scan, which walks
/// guest page tables that only exist live). Live runs and replays must
/// both use this registration for verdicts to be comparable.
pub fn register_fuzz_auditors(em: &mut EventMultiplexer, vcpus: usize) {
    register_auditors(em, vcpus);
    register_extra_fuzz_auditors(em, vcpus);
}

/// Only the fuzz-scale additions, for EMs that already carry the
/// conformance set (the live path: `build_scenario_vm` registers it).
pub fn register_extra_fuzz_auditors(em: &mut EventMultiplexer, vcpus: usize) {
    let threshold = hypertap_hvsim::clock::Duration::from_millis(FUZZ_GOSHD_THRESHOLD_MS);
    em.register(Box::new(Goshd::new(vcpus, GoshdConfig::from_profiled_slice(threshold))));
}

/// Everything observed from running one input.
#[derive(Debug)]
pub struct RunObservation {
    /// The recorded (scenario input) or replayed (trace input) stream.
    pub trace: Trace,
    /// The run's verdict.
    pub verdict: Verdict,
    /// The full coverage map of the run.
    pub coverage: CoverageMap,
    /// Only the auditor state-transition edges — the guided-vs-blind
    /// comparison metric.
    pub transitions: CoverageMap,
    /// The run's `.htfr` flight dump.
    pub flight: Vec<u8>,
}

/// Folds the flight dump's auditor transitions into coverage maps. Each
/// transition contributes two features with AFL-bucketed counts: the raw
/// `(auditor, detail)` edge — auditor details are deterministic and carry
/// no timestamps, so per-vCPU identity survives — and the normalized edge,
/// where digit runs are masked so structurally-equal transitions from
/// future auditors that do embed quantities still collapse together.
pub fn fold_transitions(flight: &[u8], full: &mut CoverageMap, transitions: &mut CoverageMap) {
    let Ok(dump) = FlightDump::decode(flight) else { return };
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    for rec in &dump.records {
        if let DumpRecord::Transition { auditor, detail, .. } = rec {
            *counts.entry((auditor.clone(), detail.clone())).or_insert(0) += 1;
        }
    }
    let mut normalized: BTreeMap<(String, String), u64> = BTreeMap::new();
    for ((auditor, detail), count) in counts {
        *normalized.entry((auditor.clone(), normalize_detail(&detail))).or_insert(0) += count;
        let f = feature("transition-raw", &[&auditor, &detail]);
        full.observe(f, count);
        transitions.observe(f, count);
    }
    for ((auditor, detail), count) in normalized {
        let f = feature("transition", &[&auditor, &detail]);
        full.observe(f, count);
        transitions.observe(f, count);
    }
}

/// Folds verdict-derived features (finding shapes, alarm and finding
/// counts) into a coverage map.
pub fn fold_verdict(verdict: &Verdict, map: &mut CoverageMap) {
    let mut finding_counts: BTreeMap<String, u64> = BTreeMap::new();
    for rendered in &verdict.findings {
        *finding_counts.entry(normalize_detail(rendered)).or_insert(0) += 1;
    }
    for (shape, count) in finding_counts {
        map.observe(feature("finding", &[&shape]), count);
    }
    map.observe(feature("findings-total", &[]), verdict.findings.len() as u64);
    map.observe(feature("goshd-alarms", &[]), verdict.goshd_alarms.len() as u64);
    if verdict.counted_events > 0 {
        let mag = 64 - verdict.counted_events.leading_zeros();
        map.hit(feature("counted-mag", &[&mag.to_string()]));
    }
}

/// Folds a trace's record stream into a [`StreamCoverage`] — the same fold
/// the live [`CoverageCollector`] tap performs, applied after the fact.
pub fn fold_trace(trace: &Trace, stream: &mut StreamCoverage) {
    for rec in &trace.records {
        match rec {
            TraceRecord::Event(e) => stream.see_event(e.vcpu.0, e.class()),
            TraceRecord::Tick(_) => stream.see_tick(),
        }
    }
}

/// Runs a scenario live under `variant`, recording the trace and folding
/// coverage in a single pass through a [`TeeTap`] at the EM boundary.
pub fn observe_scenario(scenario: &Scenario, variant: &ConfigVariant) -> RunObservation {
    let mut vm = build_scenario_vm(scenario, variant, VmId(0));
    let recorder = TraceRecorder::new(TraceHeader::new(
        scenario.vcpus as u64,
        scenario.seed,
        scenario.name.clone(),
        variant.label,
    ));
    let collector = CoverageCollector::new();
    {
        let em = &mut vm.machine.hypervisor_mut().em;
        em.flight_mut().set_capacity(FLIGHT_CAPACITY);
        register_extra_fuzz_auditors(em, scenario.vcpus);
        em.attach_tap(Box::new(TeeTap::new(recorder.tap(), collector.tap())));
    }
    vm.run_for(scenario.duration);
    let flight = vm.flight_dump("scenariofuzz");
    let em = &mut vm.machine.hypervisor_mut().em;
    em.detach_tap();
    let trace = recorder.finish();
    let verdict = Verdict::collect(em, &trace);

    let mut coverage = CoverageMap::new();
    collector.fold_into(&mut coverage);
    let mut transitions = CoverageMap::new();
    fold_transitions(&flight, &mut coverage, &mut transitions);
    fold_verdict(&verdict, &mut coverage);
    RunObservation { trace, verdict, coverage, transitions, flight }
}

/// Runs a trace input through the replay path — the conformance auditor
/// set against a placeholder VM — capturing the same observation shape as
/// a live run (flight transitions included).
pub fn observe_replay(trace: &Trace) -> RunObservation {
    let mut em = EventMultiplexer::new();
    em.flight_mut().set_capacity(FLIGHT_CAPACITY);
    register_fuzz_auditors(&mut em, trace.header.vcpus as usize);
    let mut vm = placeholder_vm(trace.header.vcpus as usize);
    for rec in &trace.records {
        match rec {
            TraceRecord::Event(ev) => {
                em.deliver_all(&mut vm, std::slice::from_ref(ev));
            }
            TraceRecord::Tick(t) => em.tick(&mut vm, *t),
        }
    }
    let flight = em.flight().dump_bytes("scenariofuzz-replay");
    let verdict = Verdict::collect(&mut em, trace);

    let mut stream = StreamCoverage::new();
    fold_trace(trace, &mut stream);
    let mut coverage = CoverageMap::new();
    stream.fold_into(&mut coverage);
    let mut transitions = CoverageMap::new();
    fold_transitions(&flight, &mut coverage, &mut transitions);
    fold_verdict(&verdict, &mut coverage);
    RunObservation { trace: trace.clone(), verdict, coverage, transitions, flight }
}

/// Writes a reproducer for a diverging pair: `<stem>-left.htrz`,
/// `<stem>-right.htrz` and `<stem>.htfr`. Returns the written paths.
pub fn write_reproducer(
    dir: &Path,
    stem: &str,
    left: &Trace,
    right: &Trace,
    flight: &[u8],
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let paths = vec![
        dir.join(format!("{stem}-left.htrz")),
        dir.join(format!("{stem}-right.htrz")),
        dir.join(format!("{stem}.htfr")),
    ];
    std::fs::write(&paths[0], compress(&left.encode()))?;
    std::fs::write(&paths[1], compress(&right.encode()))?;
    std::fs::write(&paths[2], flight)?;
    Ok(paths)
}

/// Writes a single-trace reproducer: `<stem>.htrz` plus, when a flight
/// dump is available, `<stem>.htfr`. Returns the written paths.
pub fn write_trace_artifact(
    dir: &Path,
    stem: &str,
    trace: &Trace,
    flight: &[u8],
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = vec![dir.join(format!("{stem}.htrz"))];
    std::fs::write(&paths[0], compress(&trace.encode()))?;
    if !flight.is_empty() {
        paths.push(dir.join(format!("{stem}.htfr")));
        std::fs::write(&paths[1], flight)?;
    }
    Ok(paths)
}

/// Reads back a reproducer pair written by [`write_reproducer`] and
/// returns the divergence it replays to, if any.
pub fn replay_reproducer(dir: &Path, stem: &str) -> Result<Option<Divergence>, TraceError> {
    let read = |name: String| -> Result<Trace, TraceError> {
        let bytes =
            std::fs::read(dir.join(name)).map_err(|_| TraceError::UnexpectedEof { offset: 0 })?;
        Trace::decode(&decompress(&bytes)?)
    };
    let left = read(format!("{stem}-left.htrz"))?;
    let right = read(format!("{stem}-right.htrz"))?;
    Ok(diff_traces(&left, &right, DiffPolicy::Exact))
}
