//! Coverage-guided scenario fuzzer.
//!
//! ```text
//! scenariofuzz [--seed N] [--iters N] [--seconds N] [--cap-ms N]
//!              [--out DIR] [--blind] [--compare] [--corpus]
//!              [--shrink-selftest] [--record-corpus DIR]
//! ```
//!
//! * default: guided fuzzing from the built-in starter scenarios;
//!   `--corpus` seeds from the checked-in corpus directory instead.
//! * `--blind`: blind seed sampling (the baseline), same checks.
//! * `--compare`: run guided and blind at the same budget and report the
//!   auditor-transition-edge counts side by side.
//! * `--shrink-selftest`: inject a divergence, shrink it, write the
//!   reproducer pair and verify it replays the same divergence.
//! * `--record-corpus DIR`: regenerate the starter corpus fixtures.
//!
//! Exit codes: 0 clean, 1 divergences found (reproducers written when
//! `--out` is set), 2 self-test or compare failure, 3 usage error.

use hypertap_bench::cli::Args;
use hypertap_fuzz::corpus::{load_corpus, record_starter_corpus, CORPUS_DIR};
use hypertap_fuzz::harness::{observe_scenario, replay_reproducer, write_reproducer};
use hypertap_fuzz::{run_fuzz, FuzzConfig, FuzzOutcome};
use hypertap_hvsim::clock::Duration;
use hypertap_replay::prelude::*;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn parse_u64(args: &Args, name: &str, default: u64) -> Result<u64, String> {
    match args.get_str(name) {
        None => Ok(default),
        Some(v) => v
            .parse::<u64>()
            .map_err(|e| format!("--{name} expects an unsigned integer, got {v:?}: {e}")),
    }
}

fn print_outcome(label: &str, out: &FuzzOutcome) {
    let scenarios = out
        .corpus
        .iter()
        .filter(|i| matches!(i.kind, hypertap_fuzz::corpus::InputKind::Scenario(_)))
        .count();
    println!("{label}: {} iterations, {} executions", out.iterations, out.executions);
    println!(
        "  corpus: {} entries ({} scenario, {} trace)",
        out.corpus.len(),
        scenarios,
        out.corpus.len() - scenarios
    );
    println!("  coverage: {} bits, fingerprint {:#018x}", out.coverage.bits(), out.fingerprint());
    println!("  transition edges: {}", out.transition_edges());
    println!("  divergences: {}", out.divergences.len());
    for d in &out.divergences {
        let at =
            if d.iteration == u64::MAX { "seed".to_owned() } else { format!("i{}", d.iteration) };
        println!("  [{at}] {} in {}: {}", d.kind, d.input, d.detail.lines().next().unwrap_or(""));
        for p in &d.reproducer {
            println!("    reproducer: {}", p.display());
        }
    }
}

/// Injects a tampered divergence into a recorded trace, shrinks it,
/// writes the reproducer pair, and verifies the pair replays to the same
/// divergence bit-for-bit.
fn shrink_selftest(out_dir: &Path) -> Result<(), String> {
    let mut scenario = Scenario::sample(4242, 0);
    scenario.duration = Duration::from_millis(80);
    scenario.name = "shrink-selftest".to_owned();
    let obs = observe_scenario(&scenario, &BASE);
    let len = obs.trace.records.len() as u64;
    if len < 3 {
        return Err(format!("self-test trace too short: {len} records"));
    }
    let at = len / 3;
    let mut tampered = obs.trace.clone();
    tampered.tamper(at);

    let shrunk = shrink_diverging_prefix(&obs.trace, &tampered, DiffPolicy::Exact)
        .ok_or("tampered trace did not diverge")?;
    if shrunk.keep as u64 != at + 1 {
        return Err(format!(
            "shrinker kept {} records for a divergence at index {at}; expected {}",
            shrunk.keep,
            at + 1
        ));
    }
    if shrunk.divergence.index != at {
        return Err(format!(
            "shrunk divergence at index {}, expected {at}",
            shrunk.divergence.index
        ));
    }

    let paths = write_reproducer(out_dir, "selftest", &shrunk.left, &shrunk.right, &obs.flight)
        .map_err(|e| format!("writing reproducer: {e}"))?;
    let replayed = replay_reproducer(out_dir, "selftest")
        .map_err(|e| format!("replaying reproducer: {e}"))?
        .ok_or("reproducer pair replayed conformant")?;
    if format!("{replayed}") != format!("{}", shrunk.divergence) {
        return Err(format!(
            "reproducer divergence differs:\nshrunk:   {}\nreplayed: {replayed}",
            shrunk.divergence
        ));
    }
    println!(
        "shrink self-test: divergence at index {at} shrunk to {} records, reproducer verified",
        shrunk.keep
    );
    for p in paths {
        println!("  artifact: {}", p.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse();
    let seed = match parse_u64(&args, "seed", 42) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(3);
        }
    };
    let iters = match parse_u64(&args, "iters", 25) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(3);
        }
    };
    let cap_ms = match parse_u64(&args, "cap-ms", 100) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(3);
        }
    };
    let seconds = match parse_u64(&args, "seconds", 0) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(3);
        }
    };
    let out_dir: Option<PathBuf> = args.get_str("out").map(PathBuf::from);

    if let Some(dir) = args.get_str("record-corpus") {
        return match record_starter_corpus(Path::new(dir)) {
            Ok(items) => {
                println!("recorded {} starter corpus entries under {dir}", items.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("recording corpus: {e}");
                ExitCode::from(3)
            }
        };
    }

    if args.has("shrink-selftest") {
        let dir = out_dir.unwrap_or_else(std::env::temp_dir);
        return match shrink_selftest(&dir) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("shrink self-test FAILED: {e}");
                ExitCode::from(2)
            }
        };
    }

    let starter = if args.has("corpus") {
        match load_corpus(Path::new(CORPUS_DIR)) {
            Ok(items) => {
                println!("seeded from {} checked-in corpus entries", items.len());
                items
            }
            Err(e) => {
                eprintln!("loading corpus from {CORPUS_DIR}: {e}");
                return ExitCode::from(3);
            }
        }
    } else {
        Vec::new()
    };

    let deadline =
        (seconds > 0).then(|| std::time::Instant::now() + std::time::Duration::from_secs(seconds));
    let config = FuzzConfig {
        seed,
        iterations: iters,
        cap: Duration::from_millis(cap_ms),
        guided: !args.has("blind"),
        deadline,
    };

    if args.has("compare") {
        let guided = run_fuzz(
            FuzzConfig { guided: true, ..config.clone() },
            starter.clone(),
            out_dir.as_deref(),
        );
        let blind = run_fuzz(FuzzConfig { guided: false, ..config }, starter, out_dir.as_deref());
        print_outcome("guided", &guided);
        print_outcome("blind", &blind);
        let (g, b) = (guided.transition_edges(), blind.transition_edges());
        println!("transition-edge advantage: guided {g} vs blind {b}");
        if !guided.divergences.is_empty() || !blind.divergences.is_empty() {
            return ExitCode::from(1);
        }
        return if g > b {
            ExitCode::SUCCESS
        } else {
            eprintln!("compare FAILED: guided did not beat blind");
            ExitCode::from(2)
        };
    }

    let label = if config.guided { "guided fuzz" } else { "blind fuzz" };
    let outcome = run_fuzz(config, starter, out_dir.as_deref());
    print_outcome(label, &outcome);
    if outcome.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
