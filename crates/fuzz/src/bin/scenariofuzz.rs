//! Coverage-guided scenario fuzzer.
//!
//! ```text
//! scenariofuzz [--seed N] [--iters N] [--seconds N] [--cap-ms N]
//!              [--out DIR] [--blind] [--compare] [--corpus]
//!              [--fork-warmup-ms N] [--fork-bench]
//!              [--shrink-selftest] [--record-corpus DIR]
//! ```
//!
//! * default: guided fuzzing from the built-in starter scenarios;
//!   `--corpus` seeds from the checked-in corpus directory instead.
//! * `--blind`: blind seed sampling (the baseline), same checks.
//! * `--compare`: run guided and blind at the same budget and report the
//!   auditor-transition-edge counts side by side.
//! * `--fork-warmup-ms N`: fork-from-snapshot — scenarios longer than the
//!   warmup explore from a cached machine snapshot of their recipe.
//! * `--fork-bench`: measure the fork speedup: duration branches of one
//!   warmed-up guest, forked vs from scratch, equivalence verified.
//! * `--shrink-selftest`: inject a divergence, shrink it, write the
//!   reproducer pair and verify it replays the same divergence.
//! * `--record-corpus DIR`: regenerate the starter corpus fixtures.
//!
//! Exit codes: 0 clean, 1 divergences found (reproducers written when
//! `--out` is set), 2 self-test or compare failure, 3 usage error.

use hypertap_bench::cli::Args;
use hypertap_fuzz::corpus::{load_corpus, record_starter_corpus, CORPUS_DIR};
use hypertap_fuzz::fork::ForkPoint;
use hypertap_fuzz::harness::{observe_scenario, replay_reproducer, write_reproducer};
use hypertap_fuzz::{run_fuzz, FuzzConfig, FuzzOutcome};
use hypertap_hvsim::clock::Duration;
use hypertap_replay::prelude::*;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

fn parse_u64(args: &Args, name: &str, default: u64) -> Result<u64, String> {
    match args.get_str(name) {
        None => Ok(default),
        Some(v) => v
            .parse::<u64>()
            .map_err(|e| format!("--{name} expects an unsigned integer, got {v:?}: {e}")),
    }
}

fn print_outcome(label: &str, out: &FuzzOutcome) {
    let scenarios = out
        .corpus
        .iter()
        .filter(|i| matches!(i.kind, hypertap_fuzz::corpus::InputKind::Scenario(_)))
        .count();
    println!(
        "{label}: {} iterations, {} executions{}",
        out.iterations,
        out.executions,
        if out.forks > 0 { format!(" ({} forked)", out.forks) } else { String::new() }
    );
    println!(
        "  corpus: {} entries ({} scenario, {} trace)",
        out.corpus.len(),
        scenarios,
        out.corpus.len() - scenarios
    );
    println!("  coverage: {} bits, fingerprint {:#018x}", out.coverage.bits(), out.fingerprint());
    println!("  transition edges: {}", out.transition_edges());
    println!("  divergences: {}", out.divergences.len());
    for d in &out.divergences {
        let at =
            if d.iteration == u64::MAX { "seed".to_owned() } else { format!("i{}", d.iteration) };
        println!("  [{at}] {} in {}: {}", d.kind, d.input, d.detail.lines().next().unwrap_or(""));
        for p in &d.reproducer {
            println!("    reproducer: {}", p.display());
        }
    }
}

/// Injects a tampered divergence into a recorded trace, shrinks it,
/// writes the reproducer pair, and verifies the pair replays to the same
/// divergence bit-for-bit.
fn shrink_selftest(out_dir: &Path) -> Result<(), String> {
    let mut scenario = Scenario::sample(4242, 0);
    scenario.duration = Duration::from_millis(80);
    scenario.name = "shrink-selftest".to_owned();
    let obs = observe_scenario(&scenario, &BASE);
    let len = obs.trace.records.len() as u64;
    if len < 3 {
        return Err(format!("self-test trace too short: {len} records"));
    }
    let at = len / 3;
    let mut tampered = obs.trace.clone();
    tampered.tamper(at);

    let shrunk = shrink_diverging_prefix(&obs.trace, &tampered, DiffPolicy::Exact)
        .ok_or("tampered trace did not diverge")?;
    if shrunk.keep as u64 != at + 1 {
        return Err(format!(
            "shrinker kept {} records for a divergence at index {at}; expected {}",
            shrunk.keep,
            at + 1
        ));
    }
    if shrunk.divergence.index != at {
        return Err(format!(
            "shrunk divergence at index {}, expected {at}",
            shrunk.divergence.index
        ));
    }

    let paths = write_reproducer(out_dir, "selftest", &shrunk.left, &shrunk.right, &obs.flight)
        .map_err(|e| format!("writing reproducer: {e}"))?;
    let replayed = replay_reproducer(out_dir, "selftest")
        .map_err(|e| format!("replaying reproducer: {e}"))?
        .ok_or("reproducer pair replayed conformant")?;
    if format!("{replayed}") != format!("{}", shrunk.divergence) {
        return Err(format!(
            "reproducer divergence differs:\nshrunk:   {}\nreplayed: {replayed}",
            shrunk.divergence
        ));
    }
    println!(
        "shrink self-test: divergence at index {at} shrunk to {} records, reproducer verified",
        shrunk.keep
    );
    for p in paths {
        println!("  artifact: {}", p.display());
    }
    Ok(())
}

/// Measures what fork-from-snapshot saves: `branches` duration branches
/// of one scenario, each run from scratch and each forked from a single
/// warmed-up snapshot, with bit-for-bit equivalence verified per branch.
fn fork_bench(seed: u64, warmup_ms: u64, branches: u64) -> Result<(), String> {
    let mut scenario = Scenario::sample(seed, 0);
    scenario.name = "fork-bench".to_owned();
    let warmup = Duration::from_millis(warmup_ms);
    let totals: Vec<Duration> =
        (1..=branches).map(|i| warmup + Duration::from_millis(5 * i)).collect();

    let t0 = Instant::now();
    let mut scratch = Vec::new();
    for total in &totals {
        scenario.duration = *total;
        scratch.push(observe_scenario(&scenario, &BASE));
    }
    let scratch_time = t0.elapsed();

    let t1 = Instant::now();
    let point = ForkPoint::capture(&scenario, &BASE, warmup)?;
    let mut forked = Vec::new();
    for total in &totals {
        forked.push(point.fork(&scenario.name, *total)?);
    }
    let fork_time = t1.elapsed();

    for ((total, s), f) in totals.iter().zip(&scratch).zip(&forked) {
        if f.trace.encode() != s.trace.encode() {
            return Err(format!("branch {total:?}: forked trace differs from scratch"));
        }
        if f.verdict != s.verdict {
            return Err(format!("branch {total:?}: forked verdict differs from scratch"));
        }
        if f.flight != s.flight {
            return Err(format!("branch {total:?}: forked flight dump differs from scratch"));
        }
        if f.coverage.fingerprint() != s.coverage.fingerprint() {
            return Err(format!("branch {total:?}: forked coverage differs from scratch"));
        }
    }

    let speedup = scratch_time.as_secs_f64() / fork_time.as_secs_f64().max(1e-9);
    println!(
        "fork bench: {branches} duration branches of {} ms warmup (+5 ms steps), all equivalent",
        warmup.as_millis()
    );
    println!("  from scratch: {:>8.1} ms", scratch_time.as_secs_f64() * 1e3);
    println!(
        "  forked:       {:>8.1} ms (capture + {} forks, {} frozen bytes)",
        fork_time.as_secs_f64() * 1e3,
        branches,
        point.frozen_bytes()
    );
    println!("  speedup:      {speedup:>8.2}x");
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse();
    let seed = match parse_u64(&args, "seed", 42) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(3);
        }
    };
    let iters = match parse_u64(&args, "iters", 25) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(3);
        }
    };
    let cap_ms = match parse_u64(&args, "cap-ms", 100) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(3);
        }
    };
    let seconds = match parse_u64(&args, "seconds", 0) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(3);
        }
    };
    let fork_warmup_ms = match parse_u64(&args, "fork-warmup-ms", 0) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(3);
        }
    };
    let out_dir: Option<PathBuf> = args.get_str("out").map(PathBuf::from);

    if args.has("fork-bench") {
        let warmup = if fork_warmup_ms > 0 { fork_warmup_ms } else { 80 };
        return match fork_bench(seed, warmup, 8) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("fork bench FAILED: {e}");
                ExitCode::from(2)
            }
        };
    }

    if let Some(dir) = args.get_str("record-corpus") {
        return match record_starter_corpus(Path::new(dir)) {
            Ok(items) => {
                println!("recorded {} starter corpus entries under {dir}", items.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("recording corpus: {e}");
                ExitCode::from(3)
            }
        };
    }

    if args.has("shrink-selftest") {
        let dir = out_dir.unwrap_or_else(std::env::temp_dir);
        return match shrink_selftest(&dir) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("shrink self-test FAILED: {e}");
                ExitCode::from(2)
            }
        };
    }

    let starter = if args.has("corpus") {
        match load_corpus(Path::new(CORPUS_DIR)) {
            Ok(items) => {
                println!("seeded from {} checked-in corpus entries", items.len());
                items
            }
            Err(e) => {
                eprintln!("loading corpus from {CORPUS_DIR}: {e}");
                return ExitCode::from(3);
            }
        }
    } else {
        Vec::new()
    };

    let deadline =
        (seconds > 0).then(|| std::time::Instant::now() + std::time::Duration::from_secs(seconds));
    let config = FuzzConfig {
        seed,
        iterations: iters,
        cap: Duration::from_millis(cap_ms),
        guided: !args.has("blind"),
        deadline,
        fork_warmup: (fork_warmup_ms > 0).then(|| Duration::from_millis(fork_warmup_ms)),
    };

    if args.has("compare") {
        let guided = run_fuzz(
            FuzzConfig { guided: true, ..config.clone() },
            starter.clone(),
            out_dir.as_deref(),
        );
        let blind = run_fuzz(FuzzConfig { guided: false, ..config }, starter, out_dir.as_deref());
        print_outcome("guided", &guided);
        print_outcome("blind", &blind);
        let (g, b) = (guided.transition_edges(), blind.transition_edges());
        println!("transition-edge advantage: guided {g} vs blind {b}");
        if !guided.divergences.is_empty() || !blind.divergences.is_empty() {
            return ExitCode::from(1);
        }
        return if g > b {
            ExitCode::SUCCESS
        } else {
            eprintln!("compare FAILED: guided did not beat blind");
            ExitCode::from(2)
        };
    }

    let label = if config.guided { "guided fuzz" } else { "blind fuzz" };
    let outcome = run_fuzz(config, starter, out_dir.as_deref());
    print_outcome(label, &outcome);
    if outcome.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
