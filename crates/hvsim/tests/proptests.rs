//! Property-based tests for the simulator's core data structures: guest
//! memory, guest paging and EPT permissions, each checked against a simple
//! reference model.

use hypertap_hvsim::ept::{AccessKind, Ept, EptPerm};
use hypertap_hvsim::mem::{Gfn, Gpa, GuestMemory, Gva, PAGE_SIZE};
use hypertap_hvsim::paging::{self, AddressSpaceBuilder, FrameAllocator};
use hypertap_hvsim::tlb::Tlb;
use proptest::prelude::*;
use std::collections::HashMap;

const MEM_SIZE: u64 = 32 << 20;

proptest! {
    /// Guest memory behaves like a flat byte array: reads return the last
    /// bytes written, across arbitrary (possibly page-crossing) ranges.
    #[test]
    fn memory_matches_flat_model(
        writes in prop::collection::vec(
            (0u64..MEM_SIZE - 64, prop::collection::vec(any::<u8>(), 1..64)),
            1..40
        ),
        probe in 0u64..MEM_SIZE - 64,
    ) {
        let mut mem = GuestMemory::new(MEM_SIZE);
        let mut model = HashMap::<u64, u8>::new();
        for (addr, bytes) in &writes {
            mem.write(Gpa::new(*addr), bytes);
            for (i, b) in bytes.iter().enumerate() {
                model.insert(addr + i as u64, *b);
            }
        }
        let mut buf = [0u8; 64];
        mem.read(Gpa::new(probe), &mut buf);
        for (i, got) in buf.iter().enumerate() {
            let expect = model.get(&(probe + i as u64)).copied().unwrap_or(0);
            prop_assert_eq!(*got, expect, "byte at {:#x}", probe + i as u64);
        }
    }

    /// u64 accessors agree with byte-level little-endian writes.
    #[test]
    fn memory_u64_is_little_endian(addr in 0u64..MEM_SIZE - 8, value: u64) {
        let mut mem = GuestMemory::new(MEM_SIZE);
        mem.write_u64(Gpa::new(addr), value);
        let mut bytes = [0u8; 8];
        mem.read(Gpa::new(addr), &mut bytes);
        prop_assert_eq!(u64::from_le_bytes(bytes), value);
        prop_assert_eq!(mem.read_u64(Gpa::new(addr)), value);
    }

    /// The page walker agrees with a model map over arbitrary mapping
    /// sequences, and unmapped pages fault.
    #[test]
    fn paging_matches_model(
        pages in prop::collection::vec(0u64..512, 1..30),
        probes in prop::collection::vec((0u64..512, 0u64..PAGE_SIZE), 1..20),
    ) {
        let mut mem = GuestMemory::new(MEM_SIZE);
        let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new(MEM_SIZE / PAGE_SIZE));
        let mut asb = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        let mut model = HashMap::<u64, Gfn>::new();
        for page in &pages {
            let gva = Gva::new(page * PAGE_SIZE);
            let frame = falloc.alloc(&mut mem);
            asb.map(&mut mem, &mut falloc, gva, frame);
            model.insert(*page, frame);
        }
        for (page, offset) in &probes {
            let gva = Gva::new(page * PAGE_SIZE + offset);
            match (paging::walk(&mem, asb.pdba(), gva), model.get(page)) {
                (Ok(gpa), Some(frame)) => {
                    prop_assert_eq!(gpa, frame.base().offset(*offset));
                }
                (Err(_), None) => {}
                (got, want) => prop_assert!(false, "walk {gva}: {got:?} vs model {want:?}"),
            }
        }
    }

    /// EPT permission checks agree with the stored permission for every
    /// access kind, and restoring RWX always clears the override.
    #[test]
    fn ept_matches_model(
        ops in prop::collection::vec((0u64..256, 0u8..4), 1..50),
        probes in prop::collection::vec(0u64..256, 1..20),
    ) {
        let mut ept = Ept::new();
        let mut model = HashMap::<u64, EptPerm>::new();
        for (gfn, p) in &ops {
            let perm = match p {
                0 => EptPerm::RWX,
                1 => EptPerm::RX,
                2 => EptPerm::RW,
                _ => EptPerm::NONE,
            };
            ept.set_perm(Gfn::new(*gfn), perm);
            if perm == EptPerm::RWX {
                model.remove(gfn);
            } else {
                model.insert(*gfn, perm);
            }
        }
        prop_assert_eq!(ept.restricted_frames(), model.len());
        for gfn in &probes {
            let perm = model.get(gfn).copied().unwrap_or(EptPerm::RWX);
            for kind in [AccessKind::Read, AccessKind::Write, AccessKind::Execute] {
                let allowed = ept.check(Gfn::new(*gfn).base(), None, kind).is_ok();
                prop_assert_eq!(allowed, perm.allows(kind), "gfn {} {}", gfn, kind);
            }
        }
    }

    /// The software TLB is coherent: under random interleavings of mapped
    /// and unmapped accesses, CR3 switches, page-table edits (maps and raw
    /// PTE clears) and EPT permission flips, a TLB-cached translation always
    /// returns exactly what a fresh TLB-less walk (plus a fresh EPT lookup)
    /// returns. Page-table edits deliberately do NOT flush the TLB: the
    /// tracked-frame generations must catch them on their own.
    #[test]
    fn tlb_coherence(
        ops in prop::collection::vec((0u8..5, 0u64..64, 0u64..PAGE_SIZE), 1..200),
    ) {
        let mut mem = GuestMemory::new(MEM_SIZE);
        let mut ept = Ept::new();
        let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new(MEM_SIZE / PAGE_SIZE));
        let spaces = [
            AddressSpaceBuilder::new(&mut mem, &mut falloc).pdba(),
            AddressSpaceBuilder::new(&mut mem, &mut falloc).pdba(),
        ];
        let mut current = 0usize;
        let mut tlb = Tlb::new();
        let mut mapped_frames: Vec<Gfn> = Vec::new();
        for (kind, a, b) in &ops {
            let cr3 = spaces[current];
            match kind {
                // An access: the TLB must agree with the reference walk.
                0 => {
                    let gva = Gva::new(a * PAGE_SIZE + b);
                    let cached = tlb.translate(&mut mem, &ept, cr3, gva);
                    let reference = paging::walk(&mem, cr3, gva)
                        .map(|gpa| (gpa, ept.perm(gpa.gfn())));
                    prop_assert_eq!(cached, reference, "divergence at {} (space {})", gva, current);
                }
                // A CR3 switch: architectural full flush.
                1 => {
                    current = (a % 2) as usize;
                    tlb.flush();
                }
                // Map a page to a fresh frame (a page-table edit; no flush).
                2 => {
                    let frame = falloc.alloc(&mut mem);
                    AddressSpaceBuilder::from_pdba(cr3)
                        .map(&mut mem, &mut falloc, Gva::new(a * PAGE_SIZE), frame);
                    mapped_frames.push(frame);
                }
                // Clear a PTE in place (an unmap the guest performs by raw
                // store, bypassing any builder API; no flush).
                3 => {
                    let gva = Gva::new(a * PAGE_SIZE);
                    let pde = mem.read_u64(cr3.offset((gva.value() >> 21) * 8));
                    if pde & 1 != 0 {
                        let pt_base = Gpa::new(pde & !(PAGE_SIZE - 1));
                        let slot = ((gva.value() >> 12) & 511) * 8;
                        mem.write_u64(pt_base.offset(slot), 0);
                    }
                }
                // Flip an EPT permission on a mapped frame.
                _ => {
                    if let Some(&frame) = mapped_frames.get((*a as usize) % mapped_frames.len().max(1)) {
                        let perm = match b % 4 {
                            0 => EptPerm::RWX,
                            1 => EptPerm::RX,
                            2 => EptPerm::RW,
                            _ => EptPerm::NONE,
                        };
                        ept.set_perm(frame, perm);
                    }
                }
            }
        }
        // Final sweep: every page in both spaces agrees with the reference.
        for (si, &cr3) in spaces.iter().enumerate() {
            for page in 0..64u64 {
                let gva = Gva::new(page * PAGE_SIZE);
                let cached = tlb.translate(&mut mem, &ept, cr3, gva);
                let reference = paging::walk(&mem, cr3, gva)
                    .map(|gpa| (gpa, ept.perm(gpa.gfn())));
                prop_assert_eq!(cached, reference, "final sweep {} (space {})", gva, si);
            }
        }
    }

    /// Frame allocation never hands out the same live frame twice, and
    /// freed frames come back zeroed.
    #[test]
    fn allocator_uniqueness(frees in prop::collection::vec(any::<bool>(), 1..60)) {
        let mut mem = GuestMemory::new(MEM_SIZE);
        let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new(MEM_SIZE / PAGE_SIZE));
        let mut live = Vec::new();
        for free in frees {
            if free && !live.is_empty() {
                let f = live.swap_remove(0);
                mem.write_u64(f, 0xdead);
                falloc.free(&mut mem, f.gfn());
            } else {
                let f = falloc.alloc(&mut mem).base();
                prop_assert_eq!(mem.read_u64(f), 0, "fresh frames are zeroed");
                prop_assert!(!live.contains(&f), "double allocation of {f}");
                live.push(f);
            }
        }
    }
}
