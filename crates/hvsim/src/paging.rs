//! Guest page tables, stored **in guest memory**.
//!
//! The x86 architectural invariant HyperTap exploits for process tracking is
//! that CR3 always holds the Page-Directory Base Address (PDBA) of the
//! running process. For that invariant to be *checkable* from the hypervisor
//! (the validity test in the paper's Fig. 3A walks the page directory of each
//! remembered PDBA), the paging structures must be real bytes in
//! guest-physical memory — not host-side bookkeeping. This module provides:
//!
//! * a simple two-level, 4 KiB-page format (512-entry page directory and
//!   512-entry page tables with 8-byte entries, covering a 1 GiB virtual
//!   space — a compacted cousin of x86 PAE paging);
//! * [`walk`], the translation function used both by the simulated MMU and by
//!   hypervisor-side introspection (`gva_to_gpa` in the paper's pseudo-code);
//! * [`AddressSpaceBuilder`], used by the guest kernel to construct address
//!   spaces; and
//! * [`FrameAllocator`], a bump-plus-free-list guest frame allocator.
//!
//! Entry format: bit 0 = present; bits 12.. = target frame base. All other
//! bits are ignored (reserved).

use crate::mem::{Gfn, Gpa, GuestMemory, Gva, PAGE_SIZE};
use crate::snap::{SnapError, SnapReader, SnapWriter};
use std::fmt;

/// Bits of a GVA consumed by the page offset.
const OFFSET_BITS: u32 = 12;
/// Bits of a GVA consumed by the page-table index.
const PT_BITS: u32 = 9;
/// Bits of a GVA consumed by the page-directory index.
const PD_BITS: u32 = 9;
/// Present bit in directory/table entries.
const ENTRY_PRESENT: u64 = 1;

/// Highest GVA (exclusive) representable by the two-level format: 1 GiB.
pub const VIRT_SPACE_SIZE: u64 = 1 << (OFFSET_BITS + PT_BITS + PD_BITS);

/// A failed guest-virtual-address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageFault {
    /// The address is beyond the supported virtual space.
    OutOfRange(Gva),
    /// The page-directory entry for the address is not present.
    NotPresentPde(Gva),
    /// The page-table entry for the address is not present.
    NotPresentPte(Gva),
}

impl PageFault {
    /// The faulting guest-virtual address.
    pub fn gva(self) -> Gva {
        match self {
            PageFault::OutOfRange(g)
            | PageFault::NotPresentPde(g)
            | PageFault::NotPresentPte(g) => g,
        }
    }
}

impl fmt::Display for PageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageFault::OutOfRange(g) => write!(f, "page fault: {g} outside virtual space"),
            PageFault::NotPresentPde(g) => {
                write!(f, "page fault: directory entry not present for {g}")
            }
            PageFault::NotPresentPte(g) => write!(f, "page fault: table entry not present for {g}"),
        }
    }
}

impl std::error::Error for PageFault {}

fn pd_index(gva: Gva) -> u64 {
    (gva.value() >> (OFFSET_BITS + PT_BITS)) & ((1 << PD_BITS) - 1)
}

fn pt_index(gva: Gva) -> u64 {
    (gva.value() >> OFFSET_BITS) & ((1 << PT_BITS) - 1)
}

/// Translates a guest-virtual address under the page directory rooted at
/// `pdba` by reading the paging structures from guest memory.
///
/// This is exactly the `gva_to_gpa` primitive in the paper's Fig. 3A: it
/// works for the guest MMU and for hypervisor-side checks alike, because both
/// read the same in-memory structures.
///
/// # Errors
///
/// Returns a [`PageFault`] describing the failing level if the address is
/// unmapped.
pub fn walk(mem: &GuestMemory, pdba: Gpa, gva: Gva) -> Result<Gpa, PageFault> {
    walk_traced(mem, pdba, gva).map(|t| t.gpa)
}

/// The result of a [`walk_traced`] translation: the target address plus the
/// frames of the two paging structures the walk read. A software TLB needs
/// those frames to know which guest stores can invalidate the cached
/// translation (see [`crate::tlb`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkTrace {
    /// The translated guest-physical address.
    pub gpa: Gpa,
    /// Frame holding the page-directory entry that was read.
    pub pd_gfn: Gfn,
    /// Frame holding the page-table entry that was read.
    pub pt_gfn: Gfn,
}

/// Like [`walk`], but also reports which paging-structure frames the
/// translation depended on.
///
/// # Errors
///
/// Returns a [`PageFault`] describing the failing level if the address is
/// unmapped.
pub fn walk_traced(mem: &GuestMemory, pdba: Gpa, gva: Gva) -> Result<WalkTrace, PageFault> {
    if gva.value() >= VIRT_SPACE_SIZE {
        return Err(PageFault::OutOfRange(gva));
    }
    let pde_addr = pdba.offset(pd_index(gva) * 8);
    let pde = mem.read_u64(pde_addr);
    if pde & ENTRY_PRESENT == 0 {
        return Err(PageFault::NotPresentPde(gva));
    }
    let pt_base = Gpa::new(pde & !(PAGE_SIZE - 1));
    let pte_addr = pt_base.offset(pt_index(gva) * 8);
    let pte = mem.read_u64(pte_addr);
    if pte & ENTRY_PRESENT == 0 {
        return Err(PageFault::NotPresentPte(gva));
    }
    let frame = Gpa::new(pte & !(PAGE_SIZE - 1));
    Ok(WalkTrace {
        gpa: frame.offset(gva.page_offset()),
        pd_gfn: pde_addr.gfn(),
        pt_gfn: pte_addr.gfn(),
    })
}

/// Guest-physical frame allocator: bump allocation with a free list.
///
/// Frames returned to the allocator are zeroed immediately, so any stale
/// paging entry pointing into a freed frame reads as "not present" — the
/// property the process-counting algorithm's validity test relies on to
/// discard dead PDBAs.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    next: u64,
    limit: u64,
    free: Vec<Gfn>,
}

impl FrameAllocator {
    /// Creates an allocator handing out frames in `[first, limit)` (frame
    /// numbers, not byte addresses).
    ///
    /// # Panics
    ///
    /// Panics if `first >= limit`.
    pub fn new(first: Gfn, limit: Gfn) -> Self {
        assert!(first.value() < limit.value(), "empty frame range");
        FrameAllocator { next: first.value(), limit: limit.value(), free: Vec::new() }
    }

    /// Number of frames still available.
    pub fn available(&self) -> u64 {
        (self.limit - self.next) + self.free.len() as u64
    }

    /// Allocates one zeroed frame.
    ///
    /// # Panics
    ///
    /// Panics if guest-physical memory is exhausted — a harness sizing error,
    /// not a modelled guest condition.
    pub fn alloc(&mut self, mem: &mut GuestMemory) -> Gfn {
        if let Some(gfn) = self.free.pop() {
            return gfn;
        }
        assert!(self.next < self.limit, "guest frame allocator exhausted");
        let gfn = Gfn::new(self.next);
        self.next += 1;
        mem.zero_frame(gfn);
        gfn
    }

    /// Returns a frame to the allocator, zeroing it.
    pub fn free(&mut self, mem: &mut GuestMemory, gfn: Gfn) {
        mem.zero_frame(gfn);
        self.free.push(gfn);
    }

    /// Serializes the allocator (bump pointer, limit, free list in order —
    /// the list is LIFO, so order matters for deterministic reuse).
    pub fn save(&self, w: &mut SnapWriter) {
        w.varint(self.next);
        w.varint(self.limit);
        w.varint(self.free.len() as u64);
        for gfn in &self.free {
            w.varint(gfn.value());
        }
    }

    /// Restores an allocator saved by [`FrameAllocator::save`].
    ///
    /// # Errors
    ///
    /// Returns a structured [`SnapError`] on truncated or invalid input.
    pub fn load(r: &mut SnapReader<'_>) -> Result<FrameAllocator, SnapError> {
        let off = r.offset();
        let next = r.varint()?;
        let limit = r.varint()?;
        if next > limit {
            return Err(SnapError::BadValue { offset: off, what: "frame allocator bounds" });
        }
        let n = r.count(limit as usize, "free list length")?;
        let mut free = Vec::with_capacity(n);
        for _ in 0..n {
            free.push(Gfn::new(r.varint()?));
        }
        Ok(FrameAllocator { next, limit, free })
    }
}

/// Builds and edits an address space (a page directory plus its page tables)
/// in guest memory. Used by the simulated guest kernel; the hypervisor never
/// needs it because it only *reads* paging structures via [`walk`].
#[derive(Debug)]
pub struct AddressSpaceBuilder {
    pdba: Gpa,
}

impl AddressSpaceBuilder {
    /// Allocates a fresh, empty page directory.
    pub fn new(mem: &mut GuestMemory, falloc: &mut FrameAllocator) -> Self {
        let pd = falloc.alloc(mem);
        AddressSpaceBuilder { pdba: pd.base() }
    }

    /// Wraps an existing page directory for further editing.
    pub fn from_pdba(pdba: Gpa) -> Self {
        assert_eq!(pdba.page_offset(), 0, "PDBA must be page-aligned");
        AddressSpaceBuilder { pdba }
    }

    /// The Page-Directory Base Address — the value the kernel loads into CR3.
    pub fn pdba(&self) -> Gpa {
        self.pdba
    }

    /// Maps the page containing `gva` to the frame `gfn`, allocating a page
    /// table if needed.
    ///
    /// # Panics
    ///
    /// Panics if `gva` is outside the supported virtual space.
    pub fn map(&mut self, mem: &mut GuestMemory, falloc: &mut FrameAllocator, gva: Gva, gfn: Gfn) {
        assert!(gva.value() < VIRT_SPACE_SIZE, "gva outside virtual space");
        let pde_addr = self.pdba.offset(pd_index(gva) * 8);
        let pde = mem.read_u64(pde_addr);
        let pt_base = if pde & ENTRY_PRESENT == 0 {
            let pt = falloc.alloc(mem);
            mem.write_u64(pde_addr, pt.base().value() | ENTRY_PRESENT);
            pt.base()
        } else {
            Gpa::new(pde & !(PAGE_SIZE - 1))
        };
        mem.write_u64(pt_base.offset(pt_index(gva) * 8), gfn.base().value() | ENTRY_PRESENT);
    }

    /// Maps `pages` consecutive pages starting at `gva`, allocating fresh
    /// frames for each, and returns the allocated frames.
    pub fn map_fresh_range(
        &mut self,
        mem: &mut GuestMemory,
        falloc: &mut FrameAllocator,
        gva: Gva,
        pages: u64,
    ) -> Vec<Gfn> {
        let mut frames = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let frame = falloc.alloc(mem);
            self.map(mem, falloc, gva.offset(i * PAGE_SIZE), frame);
            frames.push(frame);
        }
        frames
    }

    /// Copies the page-directory entries covering `[start, end)` from another
    /// page directory, so both address spaces share the same page tables for
    /// that range. This is how the guest kernel gives every process the same
    /// kernel mapping (as Linux does) — and why a *kernel* GVA is a valid
    /// probe address for the paper's PDBA validity test.
    pub fn share_range_from(
        &mut self,
        mem: &mut GuestMemory,
        other_pdba: Gpa,
        start: Gva,
        end: Gva,
    ) {
        assert!(end.value() <= VIRT_SPACE_SIZE);
        let first = pd_index(start);
        // `end` is exclusive; cover any partial final directory entry.
        let last = pd_index(Gva::new(end.value() - 1));
        for idx in first..=last {
            let pde = mem.read_u64(other_pdba.offset(idx * 8));
            mem.write_u64(self.pdba.offset(idx * 8), pde);
        }
    }

    /// Tears down this address space: frees every *private* page table and
    /// the directory itself. Page tables shared with `shared_with` (same
    /// physical page table reachable from the other directory at the same
    /// index) are left alone. Mapped data frames are the caller's to free.
    pub fn destroy(
        self,
        mem: &mut GuestMemory,
        falloc: &mut FrameAllocator,
        shared_with: Option<Gpa>,
    ) {
        for idx in 0..(1u64 << PD_BITS) {
            let pde = mem.read_u64(self.pdba.offset(idx * 8));
            if pde & ENTRY_PRESENT == 0 {
                continue;
            }
            let shared = shared_with
                .map(|other| mem.read_u64(other.offset(idx * 8)) == pde)
                .unwrap_or(false);
            if !shared {
                falloc.free(mem, Gpa::new(pde & !(PAGE_SIZE - 1)).gfn());
            }
        }
        falloc.free(mem, self.pdba.gfn());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GuestMemory, FrameAllocator) {
        let mem = GuestMemory::new(64 << 20);
        let falloc = FrameAllocator::new(Gfn::new(16), Gfn::new((64 << 20) / PAGE_SIZE));
        (mem, falloc)
    }

    #[test]
    fn unmapped_faults() {
        let (mut mem, mut falloc) = setup();
        let asb = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        assert!(matches!(
            walk(&mem, asb.pdba(), Gva::new(0x4000)),
            Err(PageFault::NotPresentPde(_))
        ));
    }

    #[test]
    fn map_then_walk() {
        let (mut mem, mut falloc) = setup();
        let mut asb = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        let frame = falloc.alloc(&mut mem);
        asb.map(&mut mem, &mut falloc, Gva::new(0x40_0000), frame);
        let gpa = walk(&mem, asb.pdba(), Gva::new(0x40_0123)).unwrap();
        assert_eq!(gpa, frame.base().offset(0x123));
    }

    #[test]
    fn sibling_page_unmapped() {
        let (mut mem, mut falloc) = setup();
        let mut asb = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        let frame = falloc.alloc(&mut mem);
        asb.map(&mut mem, &mut falloc, Gva::new(0x40_0000), frame);
        // Same directory entry, different table entry: PTE-level fault.
        assert!(matches!(
            walk(&mem, asb.pdba(), Gva::new(0x40_1000)),
            Err(PageFault::NotPresentPte(_))
        ));
    }

    #[test]
    fn out_of_range_faults() {
        let (mut mem, mut falloc) = setup();
        let asb = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        assert!(matches!(
            walk(&mem, asb.pdba(), Gva::new(VIRT_SPACE_SIZE)),
            Err(PageFault::OutOfRange(_))
        ));
    }

    #[test]
    fn shared_kernel_range_visible_in_both_spaces() {
        let (mut mem, mut falloc) = setup();
        let kernel_base = Gva::new(0x3000_0000);
        let mut kpd = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        let kframe = falloc.alloc(&mut mem);
        kpd.map(&mut mem, &mut falloc, kernel_base, kframe);
        mem.write_u64(kframe.base(), 0xdead_beef);

        let mut upd = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        upd.share_range_from(&mut mem, kpd.pdba(), kernel_base, Gva::new(0x3000_0000 + PAGE_SIZE));

        let gpa = walk(&mem, upd.pdba(), kernel_base).unwrap();
        assert_eq!(mem.read_u64(gpa), 0xdead_beef);
    }

    #[test]
    fn destroy_invalidates_walks_and_respects_sharing() {
        let (mut mem, mut falloc) = setup();
        let kernel_base = Gva::new(0x3000_0000);
        let mut kpd = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        let kframe = falloc.alloc(&mut mem);
        kpd.map(&mut mem, &mut falloc, kernel_base, kframe);

        let mut upd = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        upd.share_range_from(&mut mem, kpd.pdba(), kernel_base, Gva::new(0x3000_0000 + PAGE_SIZE));
        let uframe = falloc.alloc(&mut mem);
        upd.map(&mut mem, &mut falloc, Gva::new(0x1000), uframe);
        let updba = upd.pdba();

        let avail_before = falloc.available();
        upd.destroy(&mut mem, &mut falloc, Some(kpd.pdba()));
        // Freed: the user page table + the directory (but NOT the shared kernel PT).
        assert_eq!(falloc.available(), avail_before + 2);
        // The stale PDBA no longer translates anything — the Fig. 3A validity test.
        assert!(walk(&mem, updba, kernel_base).is_err());
        assert!(walk(&mem, updba, Gva::new(0x1000)).is_err());
        // The kernel's own view is intact.
        assert!(walk(&mem, kpd.pdba(), kernel_base).is_ok());
    }

    #[test]
    fn walk_traced_reports_paging_frames() {
        let (mut mem, mut falloc) = setup();
        let mut asb = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        let frame = falloc.alloc(&mut mem);
        asb.map(&mut mem, &mut falloc, Gva::new(0x40_0000), frame);
        let t = walk_traced(&mem, asb.pdba(), Gva::new(0x40_0123)).unwrap();
        assert_eq!(t.gpa, frame.base().offset(0x123));
        assert_eq!(t.pd_gfn, asb.pdba().gfn());
        // The PT frame is whatever the PDE points at.
        let pde = mem.read_u64(asb.pdba().offset(pd_index(Gva::new(0x40_0000)) * 8));
        assert_eq!(t.pt_gfn, Gpa::new(pde & !(PAGE_SIZE - 1)).gfn());
        assert_ne!(t.pd_gfn, t.pt_gfn);
    }

    #[test]
    fn allocator_recycles_and_zeroes() {
        let (mut mem, mut falloc) = setup();
        let a = falloc.alloc(&mut mem);
        mem.write_u64(a.base(), 7);
        falloc.free(&mut mem, a);
        let b = falloc.alloc(&mut mem);
        assert_eq!(b, a, "free list is LIFO");
        assert_eq!(mem.read_u64(b.base()), 0, "recycled frame is zeroed");
    }

    #[test]
    fn map_fresh_range_is_contiguous_virtually() {
        let (mut mem, mut falloc) = setup();
        let mut asb = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        let frames = asb.map_fresh_range(&mut mem, &mut falloc, Gva::new(0x10_0000), 3);
        assert_eq!(frames.len(), 3);
        for (i, f) in frames.iter().enumerate() {
            let gpa = walk(&mem, asb.pdba(), Gva::new(0x10_0000 + i as u64 * PAGE_SIZE)).unwrap();
            assert_eq!(gpa, f.base());
        }
    }
}
