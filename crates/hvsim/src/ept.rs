//! Extended Page Tables (EPT): guest-physical access permissions.
//!
//! EPT is the hardware mechanism HyperTap uses both for thread-switch
//! interception (write-protecting the pages holding TSS structures) and for
//! fast-system-call interception (execute-protecting the page holding the
//! `SYSENTER` entry point). The simulator models EPT as a per-frame
//! permission map with a default of read+write+execute; a guest access that
//! lacks the required permission raises an `EPT_VIOLATION` VM Exit carrying
//! the guest-physical address, the faulting guest-virtual address, and the
//! access kind — the same exit qualification information VT-x provides.

use crate::mem::{Gfn, Gpa, Gva};
use crate::snap::{SnapError, SnapReader, SnapWriter};
use std::collections::HashMap;
use std::fmt;

/// The kind of memory access being attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Execute => "execute",
        })
    }
}

/// Permission bits for one guest frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EptPerm {
    read: bool,
    write: bool,
    execute: bool,
}

impl EptPerm {
    /// Read + write + execute (the EPT default).
    pub const RWX: EptPerm = EptPerm { read: true, write: true, execute: true };
    /// Read + execute: the write-protection used for TSS tracking.
    pub const RX: EptPerm = EptPerm { read: true, write: false, execute: true };
    /// Read + write: the execute-protection used for SYSENTER tracking.
    pub const RW: EptPerm = EptPerm { read: true, write: true, execute: false };
    /// No access at all (used for MMIO trapping).
    pub const NONE: EptPerm = EptPerm { read: false, write: false, execute: false };

    /// Whether this permission allows the given access kind.
    pub fn allows(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read,
            AccessKind::Write => self.write,
            AccessKind::Execute => self.execute,
        }
    }

    /// Packs the permission into a 3-bit value for serialization.
    pub fn to_bits(self) -> u8 {
        (self.read as u8) | (self.write as u8) << 1 | (self.execute as u8) << 2
    }

    /// Inverse of [`EptPerm::to_bits`]; `None` for out-of-range values.
    pub fn from_bits(bits: u8) -> Option<EptPerm> {
        if bits > 0b111 {
            return None;
        }
        Some(EptPerm { read: bits & 1 != 0, write: bits & 2 != 0, execute: bits & 4 != 0 })
    }
}

impl Default for EptPerm {
    fn default() -> Self {
        EptPerm::RWX
    }
}

impl fmt::Display for EptPerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.execute { 'x' } else { '-' }
        )
    }
}

/// Exit-qualification payload of an EPT violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EptViolation {
    /// The guest-physical address whose access faulted.
    pub gpa: Gpa,
    /// The guest-virtual address the guest used (when known).
    pub gva: Option<Gva>,
    /// The attempted access.
    pub access: AccessKind,
    /// For write accesses of at most 8 bytes, the value being written.
    /// A real hypervisor obtains this by decoding the faulting instruction
    /// when it emulates the access.
    pub value: Option<u64>,
}

/// The EPT permission map: default RWX with sparse overrides.
#[derive(Debug, Clone, Default)]
pub struct Ept {
    overrides: HashMap<Gfn, EptPerm>,
    /// Bumped on every permission edit. Software TLBs cache a frame's
    /// [`EptPerm`] alongside the translation and revalidate it whenever this
    /// generation moves — the simulator's analogue of the INVEPT a real
    /// hypervisor issues after editing EPT entries.
    generation: u64,
}

impl Ept {
    /// Creates an EPT with every frame mapped read+write+execute.
    pub fn new() -> Self {
        Ept::default()
    }

    /// Current permission of a frame.
    #[inline]
    pub fn perm(&self, gfn: Gfn) -> EptPerm {
        self.overrides.get(&gfn).copied().unwrap_or_default()
    }

    /// Sets the permission of a frame, returning the previous permission.
    pub fn set_perm(&mut self, gfn: Gfn, perm: EptPerm) -> EptPerm {
        let prev = self.perm(gfn);
        if perm == EptPerm::RWX {
            self.overrides.remove(&gfn);
        } else {
            self.overrides.insert(gfn, perm);
        }
        if perm != prev {
            self.generation += 1;
        }
        prev
    }

    /// The permission-edit generation (see the field documentation).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of frames with non-default permissions.
    pub fn restricted_frames(&self) -> usize {
        self.overrides.len()
    }

    /// Serializes the permission map. Overrides are written in ascending
    /// frame order so the encoding is byte-stable regardless of hash-map
    /// iteration order.
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        w.varint(self.generation);
        let mut overrides: Vec<(Gfn, EptPerm)> =
            self.overrides.iter().map(|(g, p)| (*g, *p)).collect();
        overrides.sort_by_key(|(g, _)| *g);
        w.varint(overrides.len() as u64);
        for (gfn, perm) in overrides {
            w.varint(gfn.value());
            w.byte(perm.to_bits());
        }
    }

    /// Restores state saved by [`Ept::save`].
    pub(crate) fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.generation = r.varint()?;
        self.overrides.clear();
        let n = r.count(1 << 24, "ept override count")?;
        for _ in 0..n {
            let gfn = Gfn::new(r.varint()?);
            let off = r.offset();
            let perm = EptPerm::from_bits(r.byte()?)
                .ok_or(SnapError::BadValue { offset: off, what: "ept permission" })?;
            self.overrides.insert(gfn, perm);
        }
        Ok(())
    }

    /// Checks an access; `Ok` if allowed, `Err` with the violation otherwise.
    /// The returned violation carries no written value; callers that know it
    /// (the instruction emulator) fill it in.
    pub fn check(
        &self,
        gpa: Gpa,
        gva: Option<Gva>,
        access: AccessKind,
    ) -> Result<(), EptViolation> {
        if self.perm(gpa.gfn()).allows(access) {
            Ok(())
        } else {
            Err(EptViolation { gpa, gva, access, value: None })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_rwx() {
        let ept = Ept::new();
        for kind in [AccessKind::Read, AccessKind::Write, AccessKind::Execute] {
            assert!(ept.check(Gpa::new(0x5000), None, kind).is_ok());
        }
        assert_eq!(ept.restricted_frames(), 0);
    }

    #[test]
    fn write_protection_traps_writes_only() {
        let mut ept = Ept::new();
        ept.set_perm(Gfn::new(5), EptPerm::RX);
        assert!(ept.check(Gpa::new(0x5000), None, AccessKind::Read).is_ok());
        assert!(ept.check(Gpa::new(0x5000), None, AccessKind::Execute).is_ok());
        let v = ept.check(Gpa::new(0x5123), Some(Gva::new(0x1123)), AccessKind::Write).unwrap_err();
        assert_eq!(v.gpa, Gpa::new(0x5123));
        assert_eq!(v.gva, Some(Gva::new(0x1123)));
        assert_eq!(v.access, AccessKind::Write);
    }

    #[test]
    fn execute_protection_traps_fetches_only() {
        let mut ept = Ept::new();
        ept.set_perm(Gfn::new(9), EptPerm::RW);
        assert!(ept.check(Gpa::new(0x9000), None, AccessKind::Read).is_ok());
        assert!(ept.check(Gpa::new(0x9000), None, AccessKind::Write).is_ok());
        assert!(ept.check(Gpa::new(0x9000), None, AccessKind::Execute).is_err());
    }

    #[test]
    fn restoring_rwx_removes_override() {
        let mut ept = Ept::new();
        ept.set_perm(Gfn::new(1), EptPerm::NONE);
        assert_eq!(ept.restricted_frames(), 1);
        let prev = ept.set_perm(Gfn::new(1), EptPerm::RWX);
        assert_eq!(prev, EptPerm::NONE);
        assert_eq!(ept.restricted_frames(), 0);
    }

    #[test]
    fn generation_moves_only_on_real_edits() {
        let mut ept = Ept::new();
        assert_eq!(ept.generation(), 0);
        ept.set_perm(Gfn::new(7), EptPerm::RX);
        assert_eq!(ept.generation(), 1);
        // A no-op edit (same permission) does not invalidate TLB caches.
        ept.set_perm(Gfn::new(7), EptPerm::RX);
        assert_eq!(ept.generation(), 1);
        ept.set_perm(Gfn::new(7), EptPerm::RWX);
        assert_eq!(ept.generation(), 2);
        // Restoring RWX on an already-default frame is a no-op too.
        ept.set_perm(Gfn::new(8), EptPerm::RWX);
        assert_eq!(ept.generation(), 2);
    }

    #[test]
    fn perm_display() {
        assert_eq!(EptPerm::RWX.to_string(), "rwx");
        assert_eq!(EptPerm::RX.to_string(), "r-x");
        assert_eq!(EptPerm::RW.to_string(), "rw-");
        assert_eq!(EptPerm::NONE.to_string(), "---");
    }

    #[test]
    fn granularity_is_per_frame() {
        let mut ept = Ept::new();
        ept.set_perm(Gfn::new(2), EptPerm::RX);
        // Last byte of frame 2 is protected; first byte of frame 3 is not.
        assert!(ept.check(Gpa::new(0x2fff), None, AccessKind::Write).is_err());
        assert!(ept.check(Gpa::new(0x3000), None, AccessKind::Write).is_ok());
    }
}
