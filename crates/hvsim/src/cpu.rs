//! The guest-visible CPU interface — where architectural invariants are
//! enforced.
//!
//! Guest software (the simulated kernel and, through it, user programs) can
//! only act on the machine through a [`CpuCtx`]. Every operation below
//! consults the VM's exit controls and EPT, raises the appropriate VM Exit
//! to the hypervisor *before* its architectural effect takes place (the
//! trap-and-emulate order of Popek & Goldberg), charges simulated time from
//! the cost model, and then performs the effect (unless the hypervisor
//! returned [`ExitAction::Suppress`]).
//!
//! This is what makes the simulator's invariants equivalent in force to
//! hardware ones: there is no API through which guest code can change the
//! address space, the task register, the kernel stack pointer in the TSS, or
//! the privilege level without going through this module.

use crate::clock::{Duration, SimTime};
use crate::ept::AccessKind;
use crate::exit::{ExceptionType, ExitAction, VcpuSnapshot, VmExit, VmExitKind};
use crate::machine::{Hypervisor, VmState};
use crate::mem::{Gpa, Gva};
use crate::paging::{self, PageFault};
use crate::vcpu::{Cpl, Gpr, Msr, Vcpu, VcpuId};

/// Byte offset of the ring-0 stack pointer (`RSP0`) within a TSS.
///
/// This matches the x86 TSS layout (ESP0/RSP0 at offset 4); the thread-switch
/// interception algorithm (paper Fig. 3B) watches writes to exactly
/// `TR.base + TSS_RSP0_OFFSET`.
pub const TSS_RSP0_OFFSET: u64 = 4;

/// APIC register offset of the timer initial-count register.
pub const APIC_TIMER_INIT: u16 = 0x380;
/// APIC register offset of the interrupt-command register (IPIs).
pub const APIC_ICR: u16 = 0x300;
/// APIC register offset of the end-of-interrupt register.
pub const APIC_EOI: u16 = 0x0B0;

/// Result of one guest step (see [`crate::machine::GuestProgram`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepOutcome {
    /// Keep running.
    Continue,
    /// Power off the VM.
    Shutdown,
}

/// Mediated access to one vCPU and its VM, handed to guest code for the
/// duration of a step.
pub struct CpuCtx<'a> {
    vm: &'a mut VmState,
    hv: &'a mut dyn Hypervisor,
    vcpu: VcpuId,
}

impl<'a> CpuCtx<'a> {
    /// Binds a context to one vCPU. Normally called only by the run loop.
    pub fn new(vm: &'a mut VmState, hv: &'a mut dyn Hypervisor, vcpu: VcpuId) -> Self {
        CpuCtx { vm, hv, vcpu }
    }

    /// The vCPU this context executes on.
    pub fn vcpu_id(&self) -> VcpuId {
        self.vcpu
    }

    /// This vCPU's local clock.
    pub fn now(&self) -> SimTime {
        self.vcpu_ref().clock
    }

    /// Read-only view of the whole VM (guest code uses this sparingly; it
    /// exists mainly for tests and in-step assertions).
    pub fn vm(&self) -> &VmState {
        self.vm
    }

    /// Mutable view of the VM. Exposed for host-written test guests; the
    /// simulated kernel confines itself to the mediated operations.
    pub fn vm_mut(&mut self) -> &mut VmState {
        self.vm
    }

    fn vcpu_ref(&self) -> &Vcpu {
        self.vm.vcpu(self.vcpu)
    }

    fn vcpu_mut(&mut self) -> &mut Vcpu {
        self.vm.vcpu_mut(self.vcpu)
    }

    #[inline]
    fn charge(&mut self, d: Duration) {
        self.vcpu_mut().clock += d;
    }

    /// Burns `units` abstract compute units of guest time.
    pub fn compute(&mut self, units: u64) {
        let d = self.vm.cost().compute_unit.saturating_mul(units);
        self.charge(d);
    }

    /// Advances this vCPU's clock by an explicit duration (used by workload
    /// scripts that model fixed-latency work).
    pub fn advance(&mut self, d: Duration) {
        self.charge(d);
    }

    /// Reads a general-purpose register.
    pub fn gpr(&self, r: Gpr) -> u64 {
        self.vcpu_ref().gpr(r)
    }

    /// Writes a general-purpose register (unprivileged; no exit).
    pub fn set_gpr(&mut self, r: Gpr, value: u64) {
        self.vcpu_mut().set_gpr(r, value);
    }

    /// Sets the instruction pointer (models a jump; no exit).
    pub fn set_rip(&mut self, rip: Gva) {
        self.vcpu_mut().set_rip(rip);
    }

    /// Current privilege level.
    pub fn cpl(&self) -> Cpl {
        self.vcpu_ref().cpl()
    }

    /// Enables or disables maskable interrupts (`STI`/`CLI`).
    pub fn set_interrupts_enabled(&mut self, on: bool) {
        self.charge(self.vm.cost().reg_op);
        self.vcpu_mut().interrupts_enabled = on;
    }

    /// Whether maskable interrupts are enabled.
    pub fn interrupts_enabled(&self) -> bool {
        self.vcpu_ref().interrupts_enabled
    }

    fn fire_exit(&mut self, kind: VmExitKind) -> ExitAction {
        let cost = self.vm.cost().exit_cost(&kind);
        self.charge(cost);
        self.vm.stats_mut().record(&kind, cost);
        let exit = VmExit {
            vcpu: self.vcpu,
            time: self.vcpu_ref().clock,
            kind,
            state: VcpuSnapshot::capture(self.vcpu_ref()),
        };
        self.hv.handle_exit(self.vm, &exit)
    }

    // ----- control registers & task register -------------------------------

    /// Current CR3 (Page-Directory Base Address of the running process).
    pub fn cr3(&self) -> Gpa {
        self.vcpu_ref().cr3()
    }

    /// Loads CR3 — the architectural process context switch. Raises a
    /// `CR_ACCESS` VM Exit when CR3-load exiting is enabled. As on hardware,
    /// a CR3 load that takes effect flushes this vCPU's TLB (a suppressed
    /// load has no architectural effect, so nothing is flushed).
    pub fn write_cr3(&mut self, pdba: Gpa) {
        self.charge(self.vm.cost().reg_op);
        if self.vm.controls().cr3_load_exiting() {
            let action = self.fire_exit(VmExitKind::CrAccess { cr: 3, value: pdba.value() });
            if action == ExitAction::Suppress {
                return;
            }
        }
        self.vcpu_mut().set_cr3(pdba);
        self.vm.flush_tlb(self.vcpu);
    }

    /// Current TR base (address of the running task's TSS).
    pub fn tr_base(&self) -> Gva {
        self.vcpu_ref().tr_base()
    }

    /// Loads the task register (`LTR`). Privileged, but does not exit under
    /// default VT-x controls — the hypervisor instead reads the saved TR from
    /// the VMCS, which is why the paper's TSS-integrity check (Fig. 3C)
    /// compares saved TR values on every exit rather than trapping `LTR`.
    pub fn load_task_register(&mut self, tss_base: Gva) {
        self.charge(self.vm.cost().reg_op);
        self.vcpu_mut().set_tr_base(tss_base);
    }

    /// Current stack pointer.
    pub fn rsp(&self) -> Gva {
        self.vcpu_ref().rsp()
    }

    /// Sets the stack pointer (unprivileged; no exit).
    pub fn set_rsp(&mut self, rsp: Gva) {
        self.vcpu_mut().set_rsp(rsp);
    }

    // ----- memory -----------------------------------------------------------

    /// Translates a guest-virtual address under the current CR3 by walking
    /// the in-memory page tables. This is the uncached reference walk; the
    /// MMU's data path goes through the per-vCPU software TLB instead (see
    /// [`crate::tlb`]), which by construction returns the same results.
    ///
    /// # Errors
    ///
    /// Returns the [`PageFault`] a real MMU would raise.
    pub fn translate(&self, gva: Gva) -> Result<Gpa, PageFault> {
        paging::walk(&self.vm.mem, self.cr3(), gva)
    }

    #[inline]
    fn access_checked(
        &mut self,
        gva: Gva,
        len: u64,
        access: AccessKind,
        value: Option<u64>,
    ) -> Result<Option<Gpa>, PageFault> {
        let (gpa, perm) = self.vm.translate_for(self.vcpu, gva)?;
        self.charge(self.vm.cost().mem_cost(len));
        if self.vm.io.is_mmio(gpa) {
            // MMIO regions are never RAM-backed: the access always exits.
            let violation = crate::ept::EptViolation { gpa, gva: Some(gva), access, value };
            let action = self.fire_exit(VmExitKind::EptViolation(violation));
            if action == ExitAction::Suppress {
                return Ok(None);
            }
            return Ok(Some(gpa)); // caller routes to the device
        }
        // `perm` is the frame's current EPT permission (the TLB revalidates
        // its cached copy against the EPT generation), so the common allowed
        // case skips the permission-map lookup entirely.
        if !perm.allows(access) {
            let violation = crate::ept::EptViolation { gpa, gva: Some(gva), access, value };
            let action = self.fire_exit(VmExitKind::EptViolation(violation));
            if action == ExitAction::Suppress {
                return Ok(None);
            }
            // Resume = the hypervisor emulated the access; it proceeds.
        }
        Ok(Some(gpa))
    }

    /// Reads guest memory at a virtual address.
    ///
    /// # Errors
    ///
    /// Returns a [`PageFault`] if translation fails.
    pub fn read_gva(&mut self, gva: Gva, buf: &mut [u8]) -> Result<(), PageFault> {
        match self.access_checked(gva, buf.len() as u64, AccessKind::Read, None)? {
            Some(gpa) => {
                if self.vm.io.is_mmio(gpa) {
                    let v = self.vm.io.mmio_device(gpa).map(|d| d.mmio_read(gpa)).unwrap_or(0xFF);
                    let n = buf.len().min(8);
                    buf[..n].copy_from_slice(&v.to_le_bytes()[..n]);
                } else {
                    self.vm.mem.read(gpa, buf);
                }
            }
            None => buf.fill(0),
        }
        Ok(())
    }

    /// Writes guest memory at a virtual address.
    ///
    /// # Errors
    ///
    /// Returns a [`PageFault`] if translation fails.
    pub fn write_gva(&mut self, gva: Gva, buf: &[u8]) -> Result<(), PageFault> {
        let value = (buf.len() <= 8).then(|| {
            let mut v = [0u8; 8];
            v[..buf.len()].copy_from_slice(buf);
            u64::from_le_bytes(v)
        });
        if let Some(gpa) = self.access_checked(gva, buf.len() as u64, AccessKind::Write, value)? {
            if self.vm.io.is_mmio(gpa) {
                let mut v = [0u8; 8];
                let n = buf.len().min(8);
                v[..n].copy_from_slice(&buf[..n]);
                if let Some(d) = self.vm.io.mmio_device(gpa) {
                    d.mmio_write(gpa, u64::from_le_bytes(v));
                }
            } else {
                self.vm.mem.write(gpa, buf);
            }
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at a guest-virtual address.
    ///
    /// Dedicated width-8 path: skips the byte-buffer plumbing of
    /// [`CpuCtx::read_gva`] and goes straight to the memory's `u64` accessor
    /// (behaviour is identical, including MMIO routing and suppression).
    ///
    /// # Errors
    ///
    /// Returns a [`PageFault`] if translation fails.
    #[inline]
    pub fn read_u64_gva(&mut self, gva: Gva) -> Result<u64, PageFault> {
        match self.access_checked(gva, 8, AccessKind::Read, None)? {
            Some(gpa) => {
                if self.vm.io.is_mmio(gpa) {
                    Ok(self.vm.io.mmio_device(gpa).map(|d| d.mmio_read(gpa)).unwrap_or(0xFF))
                } else {
                    Ok(self.vm.mem.read_u64(gpa))
                }
            }
            None => Ok(0),
        }
    }

    /// Writes a little-endian `u64` at a guest-virtual address.
    ///
    /// # Errors
    ///
    /// Returns a [`PageFault`] if translation fails.
    #[inline]
    pub fn write_u64_gva(&mut self, gva: Gva, value: u64) -> Result<(), PageFault> {
        if let Some(gpa) = self.access_checked(gva, 8, AccessKind::Write, Some(value))? {
            if self.vm.io.is_mmio(gpa) {
                if let Some(d) = self.vm.io.mmio_device(gpa) {
                    d.mmio_write(gpa, value);
                }
            } else {
                self.vm.mem.write_u64(gpa, value);
            }
        }
        Ok(())
    }

    /// Physical-mode memory read (paging off — early boot only).
    pub fn read_gpa(&mut self, gpa: Gpa, buf: &mut [u8]) {
        self.charge(self.vm.cost().mem_cost(buf.len() as u64));
        self.vm.mem.read(gpa, buf);
    }

    /// Physical-mode memory write (paging off — early boot only).
    pub fn write_gpa(&mut self, gpa: Gpa, buf: &[u8]) {
        self.charge(self.vm.cost().mem_cost(buf.len() as u64));
        self.vm.mem.write(gpa, buf);
    }

    // ----- privilege transitions -------------------------------------------

    /// Raises software interrupt `vector` (`INT n`) — the legacy system-call
    /// gate. If the exception bitmap selects the vector, an `EXCEPTION` VM
    /// Exit fires first. On the user→kernel transition the CPU loads the
    /// kernel stack pointer from `TSS.RSP0`, the architectural step that
    /// makes `RSP0` a reliable thread identifier.
    ///
    /// # Errors
    ///
    /// Returns a [`PageFault`] if the TSS is not mapped in the current
    /// address space.
    pub fn int_n(&mut self, vector: u8) -> Result<(), PageFault> {
        self.charge(self.vm.cost().reg_op);
        if self.vm.controls().exception_exiting(vector) {
            let action = self.fire_exit(VmExitKind::Exception {
                vector,
                ex_type: ExceptionType::SoftwareInterrupt,
            });
            if action == ExitAction::Suppress {
                return Ok(());
            }
        }
        if self.cpl() == Cpl::User {
            let tr = self.tr_base();
            let rsp0_addr = tr.offset(TSS_RSP0_OFFSET);
            let gpa = self.translate(rsp0_addr)?;
            self.charge(self.vm.cost().mem_cost(8));
            let rsp0 = self.vm.mem.read_u64(gpa);
            let v = self.vcpu_mut();
            v.set_rsp(Gva::new(rsp0));
            v.set_cpl(Cpl::Kernel);
        }
        Ok(())
    }

    /// Returns from kernel to user mode (`IRET`), restoring the given user
    /// stack pointer.
    pub fn iret(&mut self, user_rsp: Gva) {
        self.charge(self.vm.cost().reg_op);
        let v = self.vcpu_mut();
        v.set_rsp(user_rsp);
        v.set_cpl(Cpl::User);
    }

    /// Executes `SYSENTER`: jumps to the entry point in
    /// `IA32_SYSENTER_EIP`, loading the kernel stack from
    /// `IA32_SYSENTER_ESP`. If the entry point's page is execute-protected
    /// in EPT, an `EPT_VIOLATION` exit fires — the paper's fast-system-call
    /// interception (Fig. 3E).
    ///
    /// # Errors
    ///
    /// Returns a [`PageFault`] if the entry point is not mapped.
    pub fn sysenter(&mut self) -> Result<(), PageFault> {
        self.charge(self.vm.cost().reg_op);
        let target = Gva::new(self.vcpu_ref().msr(Msr::SysenterEip));
        let gpa = self.translate(target)?;
        if let Err(violation) = self.vm.ept.check(gpa, Some(target), AccessKind::Execute) {
            let action = self.fire_exit(VmExitKind::EptViolation(violation));
            if action == ExitAction::Suppress {
                return Ok(());
            }
        }
        let kernel_rsp = self.vcpu_ref().msr(Msr::SysenterEsp);
        let v = self.vcpu_mut();
        v.set_rip(target);
        v.set_rsp(Gva::new(kernel_rsp));
        v.set_cpl(Cpl::Kernel);
        Ok(())
    }

    /// Executes `SYSEXIT`: returns to user mode at the given stack pointer.
    pub fn sysexit(&mut self, user_rsp: Gva) {
        self.charge(self.vm.cost().reg_op);
        let v = self.vcpu_mut();
        v.set_rsp(user_rsp);
        v.set_cpl(Cpl::User);
    }

    // ----- MSRs --------------------------------------------------------------

    /// Writes a model-specific register (`WRMSR`). Raises a `WRMSR` VM Exit
    /// when the MSR bitmap selects the register.
    pub fn wrmsr(&mut self, msr: Msr, value: u64) {
        self.charge(self.vm.cost().reg_op);
        if self.vm.controls().msr_write_exiting(msr) {
            let action = self.fire_exit(VmExitKind::Wrmsr { msr, value });
            if action == ExitAction::Suppress {
                return;
            }
        }
        self.vcpu_mut().set_msr(msr, value);
    }

    /// Reads a model-specific register (`RDMSR`; not trapped).
    pub fn rdmsr(&self, msr: Msr) -> u64 {
        self.vcpu_ref().msr(msr)
    }

    // ----- I/O ----------------------------------------------------------------

    /// Executes `OUT port, value`. Always raises an `IO_INST` exit (the
    /// hypervisor multiplexes devices), then the access is routed to the
    /// device mapped at the port.
    pub fn pio_out(&mut self, port: u16, value: u64) {
        let action = self.fire_exit(VmExitKind::IoInst { port, write: true, value });
        if action == ExitAction::Suppress {
            return;
        }
        if let Some(dev) = self.vm.io.pio_device(port) {
            dev.pio_write(port, value);
        }
    }

    /// Executes `IN port`. Always raises an `IO_INST` exit, then reads from
    /// the device mapped at the port (floating bus `0xFF` if none).
    pub fn pio_in(&mut self, port: u16) -> u64 {
        let action = self.fire_exit(VmExitKind::IoInst { port, write: false, value: 0 });
        if action == ExitAction::Suppress {
            return 0;
        }
        self.vm.io.pio_device(port).map(|d| d.pio_read(port)).unwrap_or(0xFF)
    }

    // ----- APIC & interrupts ---------------------------------------------------

    /// Programs this vCPU's local APIC timer to fire every `period`
    /// (vector 0x20). Raises an `APIC_ACCESS` exit.
    pub fn program_apic_timer(&mut self, period: Duration) {
        let action = self.fire_exit(VmExitKind::ApicAccess {
            offset: APIC_TIMER_INIT,
            write: true,
            value: period.as_nanos(),
        });
        if action == ExitAction::Suppress {
            return;
        }
        let now = self.vcpu_ref().clock;
        let t = &mut self.vm.apic_timers[self.vcpu.0];
        if period == Duration::ZERO {
            t.period = None;
        } else {
            t.period = Some(period);
            t.next_due = now + period;
        }
    }

    /// Sends an inter-processor interrupt to another vCPU. Raises an
    /// `APIC_ACCESS` exit (ICR write).
    pub fn send_ipi(&mut self, target: VcpuId, vector: u8) {
        let value = (vector as u64) | ((target.0 as u64) << 8);
        let action =
            self.fire_exit(VmExitKind::ApicAccess { offset: APIC_ICR, write: true, value });
        if action == ExitAction::Suppress {
            return;
        }
        self.vm.inject_irq(target, vector);
    }

    /// Signals end-of-interrupt to the local APIC.
    pub fn apic_eoi(&mut self) {
        let _ = self.fire_exit(VmExitKind::ApicAccess { offset: APIC_EOI, write: true, value: 0 });
    }

    /// Takes the next pending external interrupt, if interrupts are enabled.
    /// Taking one raises an `EXTERNAL_INT` VM Exit (interrupts are acked by
    /// the hypervisor first under HAV) and returns the vector for the guest
    /// to dispatch.
    pub fn poll_interrupt(&mut self) -> Option<u8> {
        if !self.vcpu_ref().interrupts_enabled {
            return None;
        }
        if self.vm.vcpu(self.vcpu).pending_irqs.is_empty() {
            return None;
        }
        let vector = self.vm.vcpu_mut(self.vcpu).pending_irqs.remove(0);
        let action = self.fire_exit(VmExitKind::ExternalInterrupt { vector });
        if action == ExitAction::Suppress {
            return None;
        }
        // Interrupt delivery switches to the kernel stack via TSS.RSP0 as
        // well, but the simulated kernel performs its own dispatch after
        // this returns; privilege bookkeeping happens there.
        Some(vector)
    }

    /// Executes `HLT`: the vCPU idles until the next interrupt.
    pub fn hlt(&mut self) {
        let action = self.fire_exit(VmExitKind::Hlt);
        if action == ExitAction::Suppress {
            return;
        }
        let has_irq = self.vcpu_ref().has_pending_irq();
        if !has_irq {
            self.vcpu_mut().halted = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::device::LatchDevice;
    use crate::ept::EptPerm;
    use crate::machine::{Machine, VmConfig};
    use crate::mem::{Gfn, PAGE_SIZE};
    use crate::paging::{AddressSpaceBuilder, FrameAllocator};

    /// Hypervisor recording exits, optionally suppressing some kinds.
    #[derive(Debug, Default)]
    struct TestHv {
        exits: Vec<VmExitKind>,
        suppress_wrmsr: bool,
        suppress_cr3: bool,
    }

    impl Hypervisor for TestHv {
        fn handle_exit(&mut self, _vm: &mut VmState, exit: &VmExit) -> ExitAction {
            self.exits.push(exit.kind);
            match exit.kind {
                VmExitKind::Wrmsr { .. } if self.suppress_wrmsr => ExitAction::Suppress,
                VmExitKind::CrAccess { .. } if self.suppress_cr3 => ExitAction::Suppress,
                _ => ExitAction::Resume,
            }
        }
    }

    fn machine() -> Machine<TestHv> {
        Machine::new(
            VmConfig::new(2, 32 << 20).with_cost(CostModel::calibrated()),
            TestHv::default(),
        )
    }

    fn with_cpu<R>(m: &mut Machine<TestHv>, f: impl FnOnce(&mut CpuCtx<'_>) -> R) -> R {
        let (vm, hv) = m.parts_mut();
        let mut cpu = CpuCtx::new(vm, hv, VcpuId(0));
        f(&mut cpu)
    }

    /// Builds an address space with one mapped page and loads it.
    fn setup_paged(m: &mut Machine<TestHv>) -> (Gva, Gpa) {
        let gva = Gva::new(0x40_0000);
        with_cpu(m, |cpu| {
            let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new(1024));
            let vm = cpu.vm_mut();
            let mut asb = AddressSpaceBuilder::new(&mut vm.mem, &mut falloc);
            let frame = falloc.alloc(&mut vm.mem);
            asb.map(&mut vm.mem, &mut falloc, gva, frame);
            let pdba = asb.pdba();
            cpu.write_cr3(pdba);
            (gva, frame.base())
        })
    }

    #[test]
    fn cr3_write_exits_only_when_enabled() {
        let mut m = machine();
        with_cpu(&mut m, |cpu| cpu.write_cr3(Gpa::new(0x5000)));
        assert!(m.hypervisor().exits.is_empty());
        m.vm_mut().controls_mut().set_cr3_load_exiting(true);
        with_cpu(&mut m, |cpu| cpu.write_cr3(Gpa::new(0x6000)));
        assert_eq!(m.hypervisor().exits, vec![VmExitKind::CrAccess { cr: 3, value: 0x6000 }]);
        assert_eq!(m.vm().vcpu(VcpuId(0)).cr3(), Gpa::new(0x6000));
    }

    #[test]
    fn suppressed_cr3_write_has_no_effect() {
        let mut m = machine();
        m.vm_mut().controls_mut().set_cr3_load_exiting(true);
        m.hypervisor_mut().suppress_cr3 = true;
        with_cpu(&mut m, |cpu| cpu.write_cr3(Gpa::new(0x7000)));
        assert_eq!(m.vm().vcpu(VcpuId(0)).cr3(), Gpa::NULL);
    }

    #[test]
    fn gva_rw_through_page_tables() {
        let mut m = machine();
        let (gva, gpa) = setup_paged(&mut m);
        with_cpu(&mut m, |cpu| {
            cpu.write_u64_gva(gva, 0xabcd).unwrap();
            assert_eq!(cpu.read_u64_gva(gva).unwrap(), 0xabcd);
        });
        assert_eq!(m.vm().mem.read_u64(gpa), 0xabcd);
    }

    #[test]
    fn unmapped_gva_faults() {
        let mut m = machine();
        setup_paged(&mut m);
        with_cpu(&mut m, |cpu| {
            assert!(cpu.read_u64_gva(Gva::new(0x90_0000)).is_err());
        });
    }

    #[test]
    fn ept_write_protection_raises_violation_then_write_proceeds() {
        let mut m = machine();
        let (gva, gpa) = setup_paged(&mut m);
        m.vm_mut().ept.set_perm(gpa.gfn(), EptPerm::RX);
        with_cpu(&mut m, |cpu| {
            cpu.write_u64_gva(gva, 77).unwrap();
        });
        // One EPT_VIOLATION exit with the right qualification...
        assert_eq!(m.hypervisor().exits.len(), 1);
        match m.hypervisor().exits[0] {
            VmExitKind::EptViolation(v) => {
                assert_eq!(v.gpa, gpa);
                assert_eq!(v.gva, Some(gva));
                assert_eq!(v.access, AccessKind::Write);
            }
            other => panic!("unexpected exit {other:?}"),
        }
        // ...and the emulated write completed.
        assert_eq!(m.vm().mem.read_u64(gpa), 77);
        // Reads do not trap.
        with_cpu(&mut m, |cpu| {
            assert_eq!(cpu.read_u64_gva(gva).unwrap(), 77);
        });
        assert_eq!(m.hypervisor().exits.len(), 1);
    }

    #[test]
    fn int80_exits_when_bitmapped_and_switches_stack_from_tss() {
        let mut m = machine();
        let (tss_gva, tss_gpa) = setup_paged(&mut m);
        // Set up the TSS: RSP0 lives at offset 4.
        m.vm_mut().mem.write_u64(tss_gpa.offset(TSS_RSP0_OFFSET), 0xdead_0000);
        m.vm_mut().controls_mut().set_exception_exiting(0x80, true);
        with_cpu(&mut m, |cpu| {
            cpu.load_task_register(tss_gva);
            cpu.iret(Gva::new(0x1234)); // drop to user mode
            assert_eq!(cpu.cpl(), Cpl::User);
            cpu.set_gpr(Gpr::Rax, 42); // syscall number
            cpu.int_n(0x80).unwrap();
            assert_eq!(cpu.cpl(), Cpl::Kernel);
            assert_eq!(cpu.rsp(), Gva::new(0xdead_0000));
        });
        let ex = m
            .hypervisor()
            .exits
            .iter()
            .find(|e| matches!(e, VmExitKind::Exception { .. }))
            .expect("exception exit");
        assert!(matches!(
            ex,
            VmExitKind::Exception { vector: 0x80, ex_type: ExceptionType::SoftwareInterrupt }
        ));
    }

    #[test]
    fn int80_does_not_exit_without_bitmap() {
        let mut m = machine();
        let (tss_gva, _) = setup_paged(&mut m);
        with_cpu(&mut m, |cpu| {
            cpu.load_task_register(tss_gva);
            cpu.iret(Gva::new(0));
            cpu.int_n(0x80).unwrap();
        });
        assert!(m.hypervisor().exits.iter().all(|e| !matches!(e, VmExitKind::Exception { .. })));
    }

    #[test]
    fn wrmsr_exit_and_suppression() {
        let mut m = machine();
        m.vm_mut().controls_mut().set_msr_write_exiting(Msr::SysenterEip, true);
        with_cpu(&mut m, |cpu| cpu.wrmsr(Msr::SysenterEip, 0xc000_0000));
        assert_eq!(m.vm().vcpu(VcpuId(0)).msr(Msr::SysenterEip), 0xc000_0000);
        assert_eq!(m.hypervisor().exits.len(), 1);
        // Untracked MSR: no exit.
        with_cpu(&mut m, |cpu| cpu.wrmsr(Msr::SysenterEsp, 0x1000));
        assert_eq!(m.hypervisor().exits.len(), 1);
        // Suppressed write leaves the MSR unchanged.
        m.hypervisor_mut().suppress_wrmsr = true;
        with_cpu(&mut m, |cpu| cpu.wrmsr(Msr::SysenterEip, 0x1));
        assert_eq!(m.vm().vcpu(VcpuId(0)).msr(Msr::SysenterEip), 0xc000_0000);
    }

    #[test]
    fn sysenter_traps_on_exec_protected_entry_page() {
        let mut m = machine();
        let (entry_gva, entry_gpa) = setup_paged(&mut m);
        with_cpu(&mut m, |cpu| {
            cpu.wrmsr(Msr::SysenterEip, entry_gva.value());
            cpu.wrmsr(Msr::SysenterEsp, 0xbeef_0000);
        });
        // Unprotected: no exit.
        with_cpu(&mut m, |cpu| {
            cpu.sysexit(Gva::new(0));
            cpu.sysenter().unwrap();
            assert_eq!(cpu.cpl(), Cpl::Kernel);
            assert_eq!(cpu.rsp(), Gva::new(0xbeef_0000));
            assert_eq!(cpu.vm().vcpu(VcpuId(0)).rip(), entry_gva);
        });
        assert!(m.hypervisor().exits.is_empty());
        // Execute-protected: EPT_VIOLATION with Execute access.
        m.vm_mut().ept.set_perm(entry_gpa.gfn(), EptPerm::RW);
        with_cpu(&mut m, |cpu| {
            cpu.sysexit(Gva::new(0));
            cpu.sysenter().unwrap();
        });
        assert!(matches!(
            m.hypervisor().exits[..],
            [VmExitKind::EptViolation(v)] if v.access == AccessKind::Execute
        ));
    }

    #[test]
    fn pio_always_exits_and_reaches_device() {
        let mut m = machine();
        let id = m.vm_mut().io.register(Box::<LatchDevice>::default());
        m.vm_mut().io.map_pio(0x1f0..0x1f8, id);
        with_cpu(&mut m, |cpu| {
            cpu.pio_out(0x1f0, 0x55);
            assert_eq!(cpu.pio_in(0x1f1), 0x55);
            assert_eq!(cpu.pio_in(0x999), 0xFF, "unmapped port floats high");
        });
        let io_exits =
            m.hypervisor().exits.iter().filter(|e| matches!(e, VmExitKind::IoInst { .. })).count();
        assert_eq!(io_exits, 3);
    }

    #[test]
    fn mmio_routes_to_device_not_ram() {
        let mut m = machine();
        let (gva, gpa) = setup_paged(&mut m);
        let id = m.vm_mut().io.register(Box::<LatchDevice>::default());
        m.vm_mut().io.map_mmio(gpa.value()..gpa.value() + PAGE_SIZE, id);
        with_cpu(&mut m, |cpu| {
            cpu.write_u64_gva(gva, 0x77).unwrap();
            assert_eq!(cpu.read_u64_gva(gva).unwrap(), 0x77);
        });
        // RAM behind the MMIO window is untouched.
        assert_eq!(m.vm().mem.read_u64(gpa), 0);
        let ept_exits = m
            .hypervisor()
            .exits
            .iter()
            .filter(|e| matches!(e, VmExitKind::EptViolation(_)))
            .count();
        assert_eq!(ept_exits, 2, "every MMIO access exits");
    }

    #[test]
    fn apic_timer_and_ipi() {
        let mut m = machine();
        with_cpu(&mut m, |cpu| {
            cpu.program_apic_timer(Duration::from_millis(1));
            cpu.send_ipi(VcpuId(1), 0x30);
        });
        assert_eq!(m.vm().vcpu(VcpuId(1)).pending_irqs, vec![0x30]);
        let apic_exits = m
            .hypervisor()
            .exits
            .iter()
            .filter(|e| matches!(e, VmExitKind::ApicAccess { .. }))
            .count();
        assert_eq!(apic_exits, 2);
    }

    #[test]
    fn interrupts_respect_if_flag() {
        let mut m = machine();
        m.vm_mut().inject_irq(VcpuId(0), 0x21);
        with_cpu(&mut m, |cpu| {
            cpu.set_interrupts_enabled(false);
            assert_eq!(cpu.poll_interrupt(), None);
            cpu.set_interrupts_enabled(true);
            assert_eq!(cpu.poll_interrupt(), Some(0x21));
            assert_eq!(cpu.poll_interrupt(), None);
        });
        let int_exits = m
            .hypervisor()
            .exits
            .iter()
            .filter(|e| matches!(e, VmExitKind::ExternalInterrupt { .. }))
            .count();
        assert_eq!(int_exits, 1);
    }

    #[test]
    fn repeated_gva_access_hits_tlb() {
        let mut m = machine();
        let (gva, _) = setup_paged(&mut m);
        with_cpu(&mut m, |cpu| {
            for i in 0..10 {
                cpu.write_u64_gva(gva.offset(i * 8), i).unwrap();
            }
        });
        let stats = m.vm().tlb_stats();
        assert_eq!(stats.misses, 1, "one compulsory miss for the page");
        assert_eq!(stats.hits, 9);
    }

    #[test]
    fn cr3_load_flushes_tlb_unless_suppressed() {
        let mut m = machine();
        let (gva, _) = setup_paged(&mut m);
        with_cpu(&mut m, |cpu| {
            cpu.read_u64_gva(gva).unwrap();
        });
        assert_eq!(m.vm().tlb_stats().flushes, 1, "setup_paged loads CR3 once");
        let cr3 = m.vm().vcpu(VcpuId(0)).cr3();
        with_cpu(&mut m, |cpu| cpu.write_cr3(cr3));
        assert_eq!(m.vm().tlb_stats().flushes, 2);
        // A suppressed CR3 load has no architectural effect — no flush.
        m.vm_mut().controls_mut().set_cr3_load_exiting(true);
        m.hypervisor_mut().suppress_cr3 = true;
        with_cpu(&mut m, |cpu| cpu.write_cr3(Gpa::new(0x9000)));
        assert_eq!(m.vm().tlb_stats().flushes, 2);
    }

    #[test]
    fn tlb_disabled_vm_behaves_identically() {
        let run = |tlb: bool| {
            let mut m = Machine::new(VmConfig::new(2, 32 << 20).with_tlb(tlb), TestHv::default());
            let (gva, gpa) = setup_paged(&mut m);
            m.vm_mut().ept.set_perm(gpa.gfn(), EptPerm::RX);
            with_cpu(&mut m, |cpu| {
                cpu.write_u64_gva(gva, 7).unwrap();
                cpu.read_u64_gva(gva).unwrap();
            });
            (
                m.vm().now(),
                m.hypervisor().exits.clone(),
                m.vm().mem.read_u64(gpa),
                m.vm().tlb_stats().lookups(),
            )
        };
        let (t_on, exits_on, val_on, lookups_on) = run(true);
        let (t_off, exits_off, val_off, lookups_off) = run(false);
        assert_eq!(t_on, t_off, "TLB must not change simulated time");
        assert_eq!(exits_on, exits_off, "TLB must not change the exit stream");
        assert_eq!(val_on, val_off);
        assert!(lookups_on > 0);
        assert_eq!(lookups_off, 0, "disabled TLB records nothing");
    }

    #[test]
    fn page_table_edit_is_visible_through_tlb() {
        let mut m = machine();
        let gva = Gva::new(0x40_0000);
        with_cpu(&mut m, |cpu| {
            let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new(1024));
            let vm = cpu.vm_mut();
            let mut asb = AddressSpaceBuilder::new(&mut vm.mem, &mut falloc);
            let f1 = falloc.alloc(&mut vm.mem);
            let f2 = falloc.alloc(&mut vm.mem);
            asb.map(&mut vm.mem, &mut falloc, gva, f1);
            cpu.write_cr3(asb.pdba());
            cpu.write_u64_gva(gva, 0x11).unwrap();
            // Remap the page without touching CR3 — only the tracked
            // page-table write invalidates the cached translation.
            let vm = cpu.vm_mut();
            asb.map(&mut vm.mem, &mut falloc, gva, f2);
            cpu.write_u64_gva(gva, 0x22).unwrap();
            assert_eq!(cpu.vm().mem.read_u64(f1.base()), 0x11);
            assert_eq!(cpu.vm().mem.read_u64(f2.base()), 0x22);
        });
    }

    #[test]
    fn hlt_with_pending_irq_does_not_sleep() {
        let mut m = machine();
        m.vm_mut().inject_irq(VcpuId(0), 0x20);
        with_cpu(&mut m, |cpu| cpu.hlt());
        assert!(!m.vm().vcpu(VcpuId(0)).is_halted());
        with_cpu(&mut m, |cpu| {
            let _ = cpu.poll_interrupt();
            cpu.hlt();
        });
        assert!(m.vm().vcpu(VcpuId(0)).is_halted());
    }
}
