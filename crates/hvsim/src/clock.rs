//! Simulated time.
//!
//! All time in the simulator is virtual: a monotonically increasing count of
//! nanoseconds since the machine was powered on. Each vCPU carries its own
//! local clock (they advance independently, as physical cores do), and the
//! machine's notion of "now" is the minimum over all vCPU clocks — the
//! standard conservative discrete-event scheme that keeps multi-vCPU runs
//! deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since machine power-on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The instant of machine power-on.
    pub const ZERO: SimTime = SimTime(0);

    /// A time that sorts after every reachable simulated instant.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This time expressed in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`, zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: Duration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This duration expressed in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Duration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
    }

    #[test]
    fn saturating_since_is_zero_for_later_reference() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_millis(1));
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(Duration::from_nanos(12).to_string(), "12ns");
        assert_eq!(Duration::from_micros(12).to_string(), "12.000us");
        assert_eq!(Duration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Duration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = [1u64, 2, 3].iter().map(|&n| Duration::from_nanos(n)).sum();
        assert_eq!(total.as_nanos(), 6);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::FAR_FUTURE);
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
    }
}
