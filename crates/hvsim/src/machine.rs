//! The virtual machine: state container, hypervisor trait and run loop.
//!
//! A [`Machine`] pairs one VM's state ([`VmState`]) with a [`Hypervisor`]
//! implementation (in the HyperTap stack, the KVM model carrying the Event
//! Forwarder). Guest software is supplied as a [`GuestProgram`] and driven by
//! the deterministic run loop: at every iteration the vCPU with the smallest
//! local clock executes one bounded step, giving a conservative discrete-
//! event interleaving of multiprocessor guests.

use crate::clock::{Duration, SimTime};
use crate::cost::CostModel;
use crate::cpu::{CpuCtx, StepOutcome};
use crate::device::IoBus;
use crate::ept::{Ept, EptPerm};
use crate::exit::{ExitAction, ExitControls, ExitStats, VmExit};
use crate::mem::{Gpa, GuestMemory, Gva};
use crate::paging::{self, PageFault};
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::tlb::{Tlb, TlbStats};
use crate::vcpu::{Vcpu, VcpuId};
use std::collections::BinaryHeap;

/// Lifecycle of a virtual machine.
///
/// The run loop honours the state machine `Uninit → Running ⇄ Paused →
/// Stopped`: a freshly built VM is `Uninit` until first stepped, `pause`/
/// `resume` toggle between `Paused` and `Running`, and `Stopped` is
/// terminal. Snapshots capture the lifecycle so a restored VM resumes in
/// exactly the phase it was captured in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VmLifecycle {
    /// Built but never stepped.
    #[default]
    Uninit,
    /// Actively runnable.
    Running,
    /// Paused by the hypervisor or an auditor; `resume` re-enables running.
    Paused,
    /// Shut down; the run loop will not step the guest again.
    Stopped,
}

impl VmLifecycle {
    fn to_tag(self) -> u8 {
        match self {
            VmLifecycle::Uninit => 0,
            VmLifecycle::Running => 1,
            VmLifecycle::Paused => 2,
            VmLifecycle::Stopped => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<VmLifecycle> {
        Some(match tag {
            0 => VmLifecycle::Uninit,
            1 => VmLifecycle::Running,
            2 => VmLifecycle::Paused,
            3 => VmLifecycle::Stopped,
            _ => return None,
        })
    }
}

/// Identifier of a recurring host timer registered on a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) usize);

#[derive(Debug, Clone)]
struct HostTimer {
    period: Duration,
    next_due: SimTime,
    cancelled: bool,
}

/// A scheduled external interrupt (e.g. a network packet arrival generated
/// by a load source outside the VM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScheduledIrq {
    due: SimTime,
    vcpu: VcpuId,
    vector: u8,
}

impl PartialOrd for ScheduledIrq {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledIrq {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.vcpu.cmp(&self.vcpu))
            .then_with(|| other.vector.cmp(&self.vector))
    }
}

/// Per-vCPU local APIC timer programmed by the guest.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ApicTimer {
    pub(crate) period: Option<Duration>,
    pub(crate) next_due: SimTime,
}

/// Configuration for building a VM.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Number of virtual CPUs.
    pub vcpus: usize,
    /// Guest-physical memory size in bytes.
    pub memory: u64,
    /// Cost model for guest operations and exits.
    pub cost: CostModel,
    /// Whether the per-vCPU software TLB caches translations (on by
    /// default). Purely a host-side optimisation: simulated behaviour is
    /// identical either way (see [`crate::tlb`]).
    pub tlb_enabled: bool,
}

impl VmConfig {
    /// A VM with the calibrated cost model.
    pub fn new(vcpus: usize, memory: u64) -> Self {
        VmConfig { vcpus, memory, cost: CostModel::calibrated(), tlb_enabled: true }
    }

    /// Replaces the cost model (builder style).
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Enables or disables the software TLB (builder style).
    pub fn with_tlb(mut self, enabled: bool) -> Self {
        self.tlb_enabled = enabled;
        self
    }
}

/// All mutable state of one virtual machine, as visible to the hypervisor.
#[derive(Debug)]
pub struct VmState {
    /// Guest-physical memory.
    pub mem: GuestMemory,
    /// Extended page tables.
    pub ept: Ept,
    /// I/O devices.
    pub io: IoBus,
    vcpus: Vec<Vcpu>,
    controls: ExitControls,
    cost: CostModel,
    stats: ExitStats,
    lifecycle: VmLifecycle,
    timers: Vec<HostTimer>,
    irq_schedule: BinaryHeap<ScheduledIrq>,
    pub(crate) apic_timers: Vec<ApicTimer>,
    tlbs: Vec<Tlb>,
    tlb_enabled: bool,
}

impl VmState {
    fn new(config: &VmConfig) -> Self {
        assert!(config.vcpus > 0, "a VM needs at least one vCPU");
        VmState {
            mem: GuestMemory::new(config.memory),
            ept: Ept::new(),
            io: IoBus::new(),
            vcpus: (0..config.vcpus).map(|i| Vcpu::new(VcpuId(i))).collect(),
            controls: ExitControls::new(),
            cost: config.cost.clone(),
            stats: ExitStats::new(),
            lifecycle: VmLifecycle::Uninit,
            timers: Vec::new(),
            irq_schedule: BinaryHeap::new(),
            apic_timers: vec![ApicTimer::default(); config.vcpus],
            tlbs: (0..config.vcpus).map(|_| Tlb::new()).collect(),
            tlb_enabled: config.tlb_enabled,
        }
    }

    /// Number of vCPUs.
    pub fn vcpu_count(&self) -> usize {
        self.vcpus.len()
    }

    /// Read access to a vCPU's architectural state.
    pub fn vcpu(&self, id: VcpuId) -> &Vcpu {
        &self.vcpus[id.0]
    }

    /// Mutable access to a vCPU (host side, e.g. for boot-state setup).
    pub fn vcpu_mut(&mut self, id: VcpuId) -> &mut Vcpu {
        &mut self.vcpus[id.0]
    }

    /// Iterates over all vCPUs.
    pub fn vcpus(&self) -> impl Iterator<Item = &Vcpu> {
        self.vcpus.iter()
    }

    /// The VM's exit controls.
    pub fn controls(&self) -> &ExitControls {
        &self.controls
    }

    /// Mutable exit controls (hypervisor programming).
    pub fn controls_mut(&mut self) -> &mut ExitControls {
        &mut self.controls
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Exit statistics accumulated so far.
    pub fn stats(&self) -> &ExitStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut ExitStats {
        &mut self.stats
    }

    /// Whether the software TLB is in use.
    pub fn tlb_enabled(&self) -> bool {
        self.tlb_enabled
    }

    /// TLB counters aggregated across all vCPUs (all zero when disabled).
    pub fn tlb_stats(&self) -> TlbStats {
        let mut total = TlbStats::default();
        for t in &self.tlbs {
            total.merge(&t.stats());
        }
        total
    }

    /// Translates `gva` for `vcpu` under its current CR3, through the
    /// vCPU's TLB when enabled, and returns the guest-physical address with
    /// the frame's current EPT permission. The MMU's hot path.
    #[inline]
    pub(crate) fn translate_for(
        &mut self,
        vcpu: VcpuId,
        gva: Gva,
    ) -> Result<(Gpa, EptPerm), PageFault> {
        let cr3 = self.vcpus[vcpu.0].cr3();
        if self.tlb_enabled {
            self.tlbs[vcpu.0].translate(&mut self.mem, &self.ept, cr3, gva)
        } else {
            let gpa = paging::walk(&self.mem, cr3, gva)?;
            Ok((gpa, self.ept.perm(gpa.gfn())))
        }
    }

    /// Flushes `vcpu`'s TLB (called on CR3 loads).
    pub(crate) fn flush_tlb(&mut self, vcpu: VcpuId) {
        if self.tlb_enabled {
            self.tlbs[vcpu.0].flush();
        }
    }

    /// The earliest vCPU clock — the VM's conservative notion of "now".
    pub fn now(&self) -> SimTime {
        self.vcpus.iter().map(|v| v.clock).min().unwrap_or(SimTime::ZERO)
    }

    /// The VM's current lifecycle phase.
    pub fn lifecycle(&self) -> VmLifecycle {
        self.lifecycle
    }

    /// Pauses the VM: the run loop returns [`RunExit::Paused`] before the
    /// next guest step. Auditors use this to stop a VM during an attack.
    /// Ignored once the VM is stopped (shutdown is terminal).
    pub fn pause(&mut self) {
        if self.lifecycle != VmLifecycle::Stopped {
            self.lifecycle = VmLifecycle::Paused;
        }
    }

    /// Clears a pause request.
    pub fn resume(&mut self) {
        if self.lifecycle == VmLifecycle::Paused {
            self.lifecycle = VmLifecycle::Running;
        }
    }

    /// Whether a pause has been requested.
    pub fn is_paused(&self) -> bool {
        self.lifecycle == VmLifecycle::Paused
    }

    /// Requests an orderly shutdown of the run loop.
    pub fn request_shutdown(&mut self) {
        self.lifecycle = VmLifecycle::Stopped;
    }

    /// Whether shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.lifecycle == VmLifecycle::Stopped
    }

    /// Registers a recurring host-side timer; the hypervisor's
    /// [`Hypervisor::on_timer`] fires every `period`, first at
    /// `now + period`. Host timers model work the monitoring stack does off
    /// the guest's back (polling auditors, watchdog checks); they consume no
    /// guest time.
    pub fn register_host_timer(&mut self, period: Duration) -> TimerId {
        assert!(period > Duration::ZERO, "timer period must be positive");
        let id = TimerId(self.timers.len());
        let next_due = self.now() + period;
        self.timers.push(HostTimer { period, next_due, cancelled: false });
        id
    }

    /// Cancels a recurring host timer.
    pub fn cancel_host_timer(&mut self, id: TimerId) {
        self.timers[id.0].cancelled = true;
    }

    /// Schedules an external interrupt (e.g. an I/O completion or a network
    /// packet from an external load generator) for delivery to `vcpu` at
    /// simulated time `due`.
    pub fn schedule_irq(&mut self, due: SimTime, vcpu: VcpuId, vector: u8) {
        self.irq_schedule.push(ScheduledIrq { due, vcpu, vector });
    }

    /// Queues an interrupt for immediate delivery to `vcpu` (it is taken at
    /// the vCPU's next interrupt poll, provided interrupts are enabled).
    /// A halted vCPU wakes only if it can actually take the interrupt —
    /// `HLT` with interrupts disabled deadlocks the CPU, exactly as on
    /// hardware.
    pub fn inject_irq(&mut self, vcpu: VcpuId, vector: u8) {
        let v = &mut self.vcpus[vcpu.0];
        v.pending_irqs.push(vector);
        if v.interrupts_enabled {
            v.halted = false;
        }
    }

    /// The earliest pending wake-up event (host timer, APIC timer or
    /// scheduled IRQ), if any.
    fn next_event_time(&self) -> Option<SimTime> {
        let timer = self.timers.iter().filter(|t| !t.cancelled).map(|t| t.next_due).min();
        let apic = self.apic_timers.iter().filter(|t| t.period.is_some()).map(|t| t.next_due).min();
        let irq = self.irq_schedule.peek().map(|s| s.due);
        [timer, apic, irq].into_iter().flatten().min()
    }

    fn deliver_due_irqs(&mut self, now: SimTime) {
        while let Some(s) = self.irq_schedule.peek() {
            if s.due > now {
                break;
            }
            let s = self.irq_schedule.pop().expect("peeked");
            self.inject_irq(s.vcpu, s.vector);
        }
    }

    fn fire_due_apic_timers(&mut self, now: SimTime) {
        for i in 0..self.apic_timers.len() {
            let Some(period) = self.apic_timers[i].period else { continue };
            while self.apic_timers[i].next_due <= now {
                let due = self.apic_timers[i].next_due;
                self.apic_timers[i].next_due = due + period;
                // Vector 0x20: the conventional timer interrupt.
                self.inject_irq(VcpuId(i), 0x20);
            }
        }
    }

    /// Serializes everything the machine layer owns: lifecycle, memory, EPT,
    /// device state, vCPUs, exit controls/statistics, host and APIC timers,
    /// the IRQ schedule, and the per-vCPU TLBs. The cost model and device
    /// topology are recipe state and are not captured — a restore target is
    /// rebuilt from the same recipe first.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.byte(self.lifecycle.to_tag());
        self.mem.save(w);
        self.ept.save(w);
        self.io.save_devices(w);
        w.varint(self.vcpus.len() as u64);
        for v in &self.vcpus {
            v.save(w);
        }
        self.controls.save(w);
        self.stats.save(w);
        w.varint(self.timers.len() as u64);
        for t in &self.timers {
            w.varint(t.period.as_nanos());
            w.varint(t.next_due.as_nanos());
            w.boolean(t.cancelled);
        }
        // The heap pops in (due, vcpu, vector) order; serializing that order
        // keeps the encoding canonical.
        let mut irqs: Vec<ScheduledIrq> = self.irq_schedule.iter().copied().collect();
        irqs.sort_by_key(|s| (s.due, s.vcpu, s.vector));
        w.varint(irqs.len() as u64);
        for s in irqs {
            w.varint(s.due.as_nanos());
            w.varint(s.vcpu.0 as u64);
            w.byte(s.vector);
        }
        w.varint(self.apic_timers.len() as u64);
        for t in &self.apic_timers {
            w.opt_varint(t.period.map(|p| p.as_nanos()));
            w.varint(t.next_due.as_nanos());
        }
        w.boolean(self.tlb_enabled);
        for t in &self.tlbs {
            t.save(w);
        }
    }

    /// Restores state saved by [`VmState::save_state`] into a VM built from
    /// the same recipe (vCPU count, memory size, TLB setting and registered
    /// devices must match).
    ///
    /// # Errors
    ///
    /// Returns a structured [`SnapError`] on malformed input or a recipe
    /// mismatch; the VM may be partially overwritten in that case and should
    /// be discarded.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let off = r.offset();
        self.lifecycle = VmLifecycle::from_tag(r.byte()?)
            .ok_or(SnapError::BadValue { offset: off, what: "lifecycle" })?;
        self.mem.load(r)?;
        self.ept.load(r)?;
        self.io.load_devices(r)?;
        let off = r.offset();
        let nvcpus = r.varint()? as usize;
        if nvcpus != self.vcpus.len() {
            return Err(SnapError::BadValue { offset: off, what: "vcpu count" });
        }
        for v in &mut self.vcpus {
            v.load(r)?;
        }
        self.controls.load(r)?;
        self.stats.load(r)?;
        let ntimers = r.count(1 << 20, "host timer count")?;
        self.timers.clear();
        for _ in 0..ntimers {
            let off = r.offset();
            let period = Duration::from_nanos(r.varint()?);
            if period == Duration::ZERO {
                return Err(SnapError::BadValue { offset: off, what: "timer period" });
            }
            let next_due = SimTime::from_nanos(r.varint()?);
            let cancelled = r.boolean()?;
            self.timers.push(HostTimer { period, next_due, cancelled });
        }
        let nirqs = r.count(1 << 24, "scheduled irq count")?;
        self.irq_schedule.clear();
        for _ in 0..nirqs {
            let due = SimTime::from_nanos(r.varint()?);
            let off = r.offset();
            let vcpu = r.varint()? as usize;
            if vcpu >= self.vcpus.len() {
                return Err(SnapError::BadValue { offset: off, what: "irq vcpu" });
            }
            let vector = r.byte()?;
            self.irq_schedule.push(ScheduledIrq { due, vcpu: VcpuId(vcpu), vector });
        }
        let off = r.offset();
        let napic = r.varint()? as usize;
        if napic != self.apic_timers.len() {
            return Err(SnapError::BadValue { offset: off, what: "apic timer count" });
        }
        for t in &mut self.apic_timers {
            t.period = r.opt_varint()?.map(Duration::from_nanos);
            t.next_due = SimTime::from_nanos(r.varint()?);
        }
        let off = r.offset();
        let tlb_enabled = r.boolean()?;
        if tlb_enabled != self.tlb_enabled {
            return Err(SnapError::BadValue { offset: off, what: "tlb setting" });
        }
        for t in &mut self.tlbs {
            t.load(r)?;
        }
        Ok(())
    }
}

/// The host-side handler for VM Exits — in the HyperTap stack, the KVM model
/// with the Event Forwarder compiled in.
pub trait Hypervisor {
    /// Handles one VM Exit. Returning [`ExitAction::Suppress`] prevents the
    /// exiting operation's architectural effect.
    fn handle_exit(&mut self, vm: &mut VmState, exit: &VmExit) -> ExitAction;

    /// Fires when a registered host timer elapses.
    fn on_timer(&mut self, _vm: &mut VmState, _timer: TimerId, _now: SimTime) {}
}

/// Guest software: steps one vCPU at a time under the run loop's direction.
pub trait GuestProgram {
    /// Executes a bounded burst of work on the vCPU selected by
    /// `cpu.vcpu_id()`. Implementations must keep each step short (at most a
    /// scheduler quantum) so vCPU clocks stay interleaved.
    fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome;
}

/// Why the run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunExit {
    /// The requested deadline was reached.
    Deadline,
    /// The VM was paused by the hypervisor or an auditor.
    Paused,
    /// The guest (or an auditor) requested shutdown.
    Shutdown,
    /// Every vCPU is halted and no timers or interrupts are pending.
    AllIdle,
}

/// A virtual machine bound to its hypervisor.
#[derive(Debug)]
pub struct Machine<H> {
    vm: VmState,
    hv: H,
}

impl<H: Hypervisor> Machine<H> {
    /// Builds a machine from a config and a hypervisor.
    pub fn new(config: VmConfig, hypervisor: H) -> Self {
        Machine { vm: VmState::new(&config), hv: hypervisor }
    }

    /// The VM state.
    pub fn vm(&self) -> &VmState {
        &self.vm
    }

    /// Mutable VM state.
    pub fn vm_mut(&mut self) -> &mut VmState {
        &mut self.vm
    }

    /// The hypervisor.
    pub fn hypervisor(&self) -> &H {
        &self.hv
    }

    /// Mutable hypervisor.
    pub fn hypervisor_mut(&mut self) -> &mut H {
        &mut self.hv
    }

    /// Splits the machine into VM state and hypervisor (both mutable), for
    /// host-side code that needs to thread them separately.
    pub fn parts_mut(&mut self) -> (&mut VmState, &mut H) {
        (&mut self.vm, &mut self.hv)
    }

    /// Consumes the machine, returning its parts.
    pub fn into_parts(self) -> (VmState, H) {
        (self.vm, self.hv)
    }

    fn fire_due_host_timers(&mut self, now: SimTime) {
        for i in 0..self.vm.timers.len() {
            loop {
                let t = &self.vm.timers[i];
                if t.cancelled || t.next_due > now {
                    break;
                }
                let due = t.next_due;
                let period = t.period;
                self.vm.timers[i].next_due = due + period;
                self.hv.on_timer(&mut self.vm, TimerId(i), due);
            }
        }
    }

    /// Runs the guest until `deadline` (exclusive) or an earlier stop cause.
    pub fn run_until(&mut self, guest: &mut dyn GuestProgram, deadline: SimTime) -> RunExit {
        loop {
            match self.vm.lifecycle {
                VmLifecycle::Stopped => return RunExit::Shutdown,
                VmLifecycle::Paused => return RunExit::Paused,
                VmLifecycle::Uninit => self.vm.lifecycle = VmLifecycle::Running,
                VmLifecycle::Running => {}
            }
            // Pick the vCPU with the smallest local clock.
            let vcpu_id = self
                .vm
                .vcpus
                .iter()
                .min_by_key(|v| (v.clock, v.id().0))
                .map(|v| v.id())
                .expect("at least one vCPU");
            let now = self.vm.vcpus[vcpu_id.0].clock;
            if now >= deadline {
                return RunExit::Deadline;
            }

            self.fire_due_host_timers(now);
            self.vm.fire_due_apic_timers(now);
            self.vm.deliver_due_irqs(now);
            match self.vm.lifecycle {
                VmLifecycle::Stopped => return RunExit::Shutdown,
                VmLifecycle::Paused => return RunExit::Paused,
                VmLifecycle::Uninit | VmLifecycle::Running => {}
            }

            if self.vm.vcpus[vcpu_id.0].halted {
                // Skip idle time to the next wake-up event.
                match self.vm.next_event_time() {
                    Some(t) => {
                        let target = t.max(now).min(deadline);
                        if target == now && t <= now {
                            // An event at `now` was just delivered; re-check halt.
                            if self.vm.vcpus[vcpu_id.0].halted {
                                // Nothing woke this vCPU; let another run.
                                self.vm.vcpus[vcpu_id.0].clock = now + Duration::from_nanos(1);
                            }
                            continue;
                        }
                        self.vm.vcpus[vcpu_id.0].clock = target;
                        continue;
                    }
                    None => {
                        // No future events can wake anyone.
                        if self.vm.vcpus.iter().all(|v| v.halted) {
                            return RunExit::AllIdle;
                        }
                        self.vm.vcpus[vcpu_id.0].clock = deadline;
                        continue;
                    }
                }
            }

            let mut cpu = CpuCtx::new(&mut self.vm, &mut self.hv, vcpu_id);
            match guest.step(&mut cpu) {
                StepOutcome::Continue => {}
                StepOutcome::Shutdown => {
                    self.vm.lifecycle = VmLifecycle::Stopped;
                    return RunExit::Shutdown;
                }
            }
        }
    }

    /// Runs exactly `n` guest steps (testing convenience; ignores halts and
    /// pauses, always stepping the earliest-clock vCPU).
    pub fn run_steps(&mut self, guest: &mut dyn GuestProgram, n: usize) {
        if self.vm.lifecycle == VmLifecycle::Uninit {
            self.vm.lifecycle = VmLifecycle::Running;
        }
        for _ in 0..n {
            let vcpu_id = self
                .vm
                .vcpus
                .iter()
                .min_by_key(|v| (v.clock, v.id().0))
                .map(|v| v.id())
                .expect("at least one vCPU");
            let mut cpu = CpuCtx::new(&mut self.vm, &mut self.hv, vcpu_id);
            if guest.step(&mut cpu) == StepOutcome::Shutdown {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exit::VmExitKind;
    use crate::mem::Gpa;

    /// Hypervisor that records exits and timer firings.
    #[derive(Debug, Default)]
    struct Recorder {
        exits: Vec<VmExitKind>,
        timer_fires: Vec<SimTime>,
    }

    impl Hypervisor for Recorder {
        fn handle_exit(&mut self, _vm: &mut VmState, exit: &VmExit) -> ExitAction {
            self.exits.push(exit.kind);
            ExitAction::Resume
        }
        fn on_timer(&mut self, _vm: &mut VmState, _timer: TimerId, now: SimTime) {
            self.timer_fires.push(now);
        }
    }

    /// Guest that just burns compute time.
    struct Burner;
    impl GuestProgram for Burner {
        fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
            cpu.compute(1_000); // 1 µs at calibrated cost
            StepOutcome::Continue
        }
    }

    #[test]
    fn run_until_reaches_deadline() {
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Recorder::default());
        let r = m.run_until(&mut Burner, SimTime::from_micros(100));
        assert_eq!(r, RunExit::Deadline);
        assert!(m.vm().now() >= SimTime::from_micros(100));
    }

    #[test]
    fn vcpus_interleave_by_clock() {
        struct Tagger {
            order: Vec<usize>,
        }
        impl GuestProgram for Tagger {
            fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
                self.order.push(cpu.vcpu_id().0);
                // vCPU 0 runs long steps, vCPU 1 short ones.
                cpu.compute(if cpu.vcpu_id().0 == 0 { 3_000 } else { 1_000 });
                StepOutcome::Continue
            }
        }
        let mut m = Machine::new(VmConfig::new(2, 1 << 20), Recorder::default());
        let mut g = Tagger { order: Vec::new() };
        m.run_steps(&mut g, 8);
        // vCPU 1 must step roughly 3x as often as vCPU 0.
        let c0 = g.order.iter().filter(|&&v| v == 0).count();
        let c1 = g.order.iter().filter(|&&v| v == 1).count();
        assert!(c1 > c0, "faster-stepping vCPU runs more often: {c0} vs {c1}");
    }

    #[test]
    fn host_timer_fires_periodically() {
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Recorder::default());
        m.vm_mut().register_host_timer(Duration::from_micros(10));
        m.run_until(&mut Burner, SimTime::from_micros(100));
        let fires = &m.hypervisor().timer_fires;
        assert!(fires.len() >= 9, "expected ~10 firings, got {}", fires.len());
        assert_eq!(fires[0], SimTime::from_micros(10));
        assert_eq!(fires[1], SimTime::from_micros(20));
    }

    #[test]
    fn pause_stops_the_loop() {
        struct PauseSelf;
        impl GuestProgram for PauseSelf {
            fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
                cpu.compute(100);
                cpu.vm_mut().pause();
                StepOutcome::Continue
            }
        }
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Recorder::default());
        let r = m.run_until(&mut PauseSelf, SimTime::from_secs(1));
        assert_eq!(r, RunExit::Paused);
        m.vm_mut().resume();
        let r = m.run_until(&mut PauseSelf, SimTime::from_secs(1));
        assert_eq!(r, RunExit::Paused);
    }

    #[test]
    fn halted_vcpu_skips_to_next_event_and_wakes_on_irq() {
        struct HaltThenCount {
            wakes: usize,
        }
        impl GuestProgram for HaltThenCount {
            fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
                if cpu.poll_interrupt().is_some() {
                    self.wakes += 1;
                }
                cpu.hlt();
                StepOutcome::Continue
            }
        }
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Recorder::default());
        m.vm_mut().schedule_irq(SimTime::from_millis(5), VcpuId(0), 0x21);
        let mut g = HaltThenCount { wakes: 0 };
        let r = m.run_until(&mut g, SimTime::from_millis(100));
        assert_eq!(r, RunExit::AllIdle);
        assert_eq!(g.wakes, 1);
        assert!(m.vm().now() >= SimTime::from_millis(5));
    }

    #[test]
    fn all_idle_when_nothing_pending() {
        struct HaltNow;
        impl GuestProgram for HaltNow {
            fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
                cpu.hlt();
                StepOutcome::Continue
            }
        }
        let mut m = Machine::new(VmConfig::new(2, 1 << 20), Recorder::default());
        let r = m.run_until(&mut HaltNow, SimTime::from_secs(1));
        assert_eq!(r, RunExit::AllIdle);
    }

    #[test]
    fn shutdown_from_guest() {
        struct Quit;
        impl GuestProgram for Quit {
            fn step(&mut self, _cpu: &mut CpuCtx<'_>) -> StepOutcome {
                StepOutcome::Shutdown
            }
        }
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Recorder::default());
        assert_eq!(m.run_until(&mut Quit, SimTime::from_secs(1)), RunExit::Shutdown);
        assert!(m.vm().shutdown_requested());
    }

    #[test]
    fn scheduled_irq_is_delivered_in_order() {
        let mut vm = VmState::new(&VmConfig::new(1, 1 << 20));
        vm.schedule_irq(SimTime::from_millis(2), VcpuId(0), 2);
        vm.schedule_irq(SimTime::from_millis(1), VcpuId(0), 1);
        vm.deliver_due_irqs(SimTime::from_millis(1));
        assert_eq!(vm.vcpu(VcpuId(0)).pending_irqs, vec![1]);
        vm.deliver_due_irqs(SimTime::from_millis(2));
        assert_eq!(vm.vcpu(VcpuId(0)).pending_irqs, vec![1, 2]);
    }

    #[test]
    fn exit_cost_advances_guest_clock() {
        struct Cr3Writer;
        impl GuestProgram for Cr3Writer {
            fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
                cpu.write_cr3(Gpa::new(0x1000));
                StepOutcome::Continue
            }
        }
        // Without CR3 exiting: only the register-op cost.
        let mut m = Machine::new(VmConfig::new(1, 1 << 20), Recorder::default());
        m.run_steps(&mut Cr3Writer, 1);
        let quiet = m.vm().now();
        // With CR3 exiting: the exit cost is added.
        let mut m2 = Machine::new(VmConfig::new(1, 1 << 20), Recorder::default());
        m2.vm_mut().controls_mut().set_cr3_load_exiting(true);
        m2.run_steps(&mut Cr3Writer, 1);
        assert!(m2.vm().now() > quiet);
        assert_eq!(m2.hypervisor().exits.len(), 1);
        assert_eq!(m2.vm().stats().count_by_name("CR_ACCESS"), 1);
    }
}
