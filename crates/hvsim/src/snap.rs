//! Shared byte codec for machine-state snapshots (the `.htsp` family).
//!
//! Snapshots serialize *private* state owned by many modules across several
//! crates. Rather than widening every type's public API with state-view
//! structs, each module implements its own `save`/`load` against the small
//! writer/reader pair defined here; the `.htsp` envelope (magic, version,
//! section table) lives in `hypertap-monitors` and merely composes sections.
//!
//! The wire format follows the HTRC trace codec: LEB128 varints for unsigned
//! integers, zigzag + varint for signed ones, length-prefixed strings and
//! byte blobs, and a byte-oriented run-length scheme for frame payloads.
//! Errors are structured ([`SnapError`]) and every decode path is total —
//! truncated or corrupt input must return an error, never panic.

use std::fmt;

/// Structured decode/encode errors for snapshot data.
///
/// The taxonomy mirrors the HTRC `TraceError` so tooling can treat both
/// codecs uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The format version is newer than this decoder understands.
    UnsupportedVersion(u64),
    /// The buffer ended in the middle of a field.
    UnexpectedEof {
        /// Byte offset at which more data was needed.
        offset: usize,
    },
    /// A varint ran past its maximum encodable length.
    VarintOverflow {
        /// Byte offset of the offending varint.
        offset: usize,
    },
    /// A tag byte had no defined meaning.
    BadTag {
        /// Byte offset of the tag.
        offset: usize,
        /// The unrecognized tag value.
        tag: u8,
    },
    /// A decoded value was structurally invalid.
    BadValue {
        /// Byte offset of the value.
        offset: usize,
        /// What was being decoded.
        what: &'static str,
    },
    /// A string field was not valid UTF-8.
    BadString {
        /// Byte offset of the string.
        offset: usize,
    },
    /// Decoding finished but bytes remained.
    TrailingGarbage {
        /// Byte offset of the first unconsumed byte.
        offset: usize,
    },
    /// The live state contains something that cannot be serialized
    /// (e.g. a closure-backed guest program with no save protocol).
    Unsupported {
        /// Human-readable description of the unsupported state.
        what: String,
    },
    /// Compressed frame data was malformed.
    CorruptCompression,
    /// A section or blob decoded to a different length than declared.
    LengthMismatch,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => f.write_str("bad snapshot magic"),
            SnapError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of snapshot at offset {offset}")
            }
            SnapError::VarintOverflow { offset } => {
                write!(f, "varint overflow at offset {offset}")
            }
            SnapError::BadTag { offset, tag } => {
                write!(f, "unknown tag {tag:#04x} at offset {offset}")
            }
            SnapError::BadValue { offset, what } => {
                write!(f, "invalid {what} at offset {offset}")
            }
            SnapError::BadString { offset } => {
                write!(f, "invalid UTF-8 string at offset {offset}")
            }
            SnapError::TrailingGarbage { offset } => {
                write!(f, "trailing garbage at offset {offset}")
            }
            SnapError::Unsupported { what } => write!(f, "state not snapshottable: {what}"),
            SnapError::CorruptCompression => f.write_str("corrupt frame compression"),
            SnapError::LengthMismatch => f.write_str("section length mismatch"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Maps `n` to an unsigned value with small magnitudes near zero.
pub fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append-only snapshot section writer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Writes raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes an unsigned integer as a LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Writes a signed integer as zigzag + varint.
    pub fn svarint(&mut self, v: i64) {
        self.varint(zigzag(v));
    }

    /// Writes a boolean as one byte (0 or 1).
    pub fn boolean(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(&mut self, b: &[u8]) {
        self.varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes `None` as a 0 byte or `Some(v)` as a 1 byte followed by a
    /// varint.
    pub fn opt_varint(&mut self, v: Option<u64>) {
        match v {
            None => self.byte(0),
            Some(v) => {
                self.byte(1);
                self.varint(v);
            }
        }
    }
}

/// Position-tracked snapshot section reader.
#[derive(Debug)]
pub struct SnapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        SnapReader { bytes, pos: 0 }
    }

    /// Current byte offset (for error reporting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Fails with [`SnapError::TrailingGarbage`] unless every byte was
    /// consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(SnapError::TrailingGarbage { offset: self.pos })
        }
    }

    /// Reads one raw byte.
    pub fn byte(&mut self) -> Result<u8, SnapError> {
        let b = *self.bytes.get(self.pos).ok_or(SnapError::UnexpectedEof { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads exactly `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.pos + n > self.bytes.len() {
            return Err(SnapError::UnexpectedEof { offset: self.pos });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, SnapError> {
        let start = self.pos;
        let mut v = 0u64;
        let mut shift = 0u32;
        for i in 0..10 {
            let b = self.byte()?;
            let payload = (b & 0x7f) as u64;
            if i == 9 && payload > 1 {
                return Err(SnapError::VarintOverflow { offset: start });
            }
            v |= payload << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
        Err(SnapError::VarintOverflow { offset: start })
    }

    /// Reads a zigzag-encoded signed integer.
    pub fn svarint(&mut self) -> Result<i64, SnapError> {
        Ok(unzigzag(self.varint()?))
    }

    /// Reads a boolean byte, rejecting anything but 0 or 1.
    pub fn boolean(&mut self) -> Result<bool, SnapError> {
        let start = self.pos;
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::BadValue { offset: start, what: "boolean" }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, SnapError> {
        let start = self.pos;
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::BadString { offset: start })
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.varint()? as usize;
        self.take(len)
    }

    /// Reads an optional varint written by [`SnapWriter::opt_varint`].
    pub fn opt_varint(&mut self) -> Result<Option<u64>, SnapError> {
        let start = self.pos;
        match self.byte()? {
            0 => Ok(None),
            1 => Ok(Some(self.varint()?)),
            _ => Err(SnapError::BadValue { offset: start, what: "option tag" }),
        }
    }

    /// Reads a varint and checks it fits in `usize` bounded by `max`,
    /// guarding collection preallocation against corrupt lengths.
    pub fn count(&mut self, max: usize, what: &'static str) -> Result<usize, SnapError> {
        let start = self.pos;
        let n = self.varint()?;
        if n > max as u64 {
            return Err(SnapError::BadValue { offset: start, what });
        }
        Ok(n as usize)
    }
}

/// Byte-oriented run-length compression for frame payloads (the HTRZ
/// scheme): a control byte `< 0x80` introduces a literal run of `c + 1`
/// bytes; a control byte `>= 0x80` repeats the following byte
/// `(c & 0x7f) + 3` times. Zero-filled guest frames collapse to a few bytes.
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        // Measure the run of equal bytes starting here.
        let b = data[i];
        let mut run = 1;
        while i + run < data.len() && data[i + run] == b && run < 0x7f + 3 {
            run += 1;
        }
        if run >= 3 {
            out.push(0x80 | (run - 3) as u8);
            out.push(b);
            i += run;
            continue;
        }
        // Literal run: scan forward until a compressible repeat starts.
        let start = i;
        while i < data.len() && i - start < 0x80 {
            let b = data[i];
            let mut run = 1;
            while i + run < data.len() && data[i + run] == b {
                run += 1;
            }
            if run >= 3 {
                break;
            }
            i += run;
        }
        let end = usize::min(i, start + 0x80);
        i = end;
        out.push((end - start - 1) as u8);
        out.extend_from_slice(&data[start..end]);
    }
    out
}

/// Inverse of [`rle_compress`]; `expected_len` bounds the output so corrupt
/// input cannot balloon memory.
pub fn rle_decompress(data: &[u8], expected_len: usize) -> Result<Vec<u8>, SnapError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0;
    while i < data.len() {
        let c = data[i];
        i += 1;
        if c < 0x80 {
            let n = c as usize + 1;
            if i + n > data.len() {
                return Err(SnapError::CorruptCompression);
            }
            out.extend_from_slice(&data[i..i + n]);
            i += n;
        } else {
            let n = (c & 0x7f) as usize + 3;
            let b = *data.get(i).ok_or(SnapError::CorruptCompression)?;
            i += 1;
            out.extend(std::iter::repeat_n(b, n));
        }
        if out.len() > expected_len {
            return Err(SnapError::CorruptCompression);
        }
    }
    if out.len() != expected_len {
        return Err(SnapError::LengthMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut w = SnapWriter::new();
        for v in values {
            w.varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        for v in values {
            assert_eq!(r.varint().unwrap(), v);
        }
        r.finish().unwrap();
    }

    #[test]
    fn svarint_round_trip() {
        let values = [0i64, -1, 1, i64::MIN, i64::MAX, -1000, 1000];
        let mut w = SnapWriter::new();
        for v in values {
            w.svarint(v);
        }
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        for v in values {
            assert_eq!(r.svarint().unwrap(), v);
        }
    }

    #[test]
    fn string_bytes_bool_round_trip() {
        let mut w = SnapWriter::new();
        w.string("héllo");
        w.bytes(&[1, 2, 3]);
        w.boolean(true);
        w.boolean(false);
        w.opt_varint(None);
        w.opt_varint(Some(42));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.boolean().unwrap());
        assert!(!r.boolean().unwrap());
        assert_eq!(r.opt_varint().unwrap(), None);
        assert_eq!(r.opt_varint().unwrap(), Some(42));
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_always_a_structured_error() {
        let mut w = SnapWriter::new();
        w.varint(u64::MAX);
        w.string("hello world");
        w.bytes(&[9; 40]);
        w.svarint(-123456789);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            let res = (|| -> Result<(), SnapError> {
                r.varint()?;
                r.string()?;
                r.bytes()?;
                r.svarint()?;
                r.finish()
            })();
            assert!(res.is_err(), "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn bad_boolean_is_rejected() {
        let mut r = SnapReader::new(&[7]);
        assert!(matches!(r.boolean(), Err(SnapError::BadValue { .. })));
    }

    #[test]
    fn varint_overflow_detected() {
        let bytes = [0xffu8; 11];
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.varint(), Err(SnapError::VarintOverflow { .. })));
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut w = SnapWriter::new();
        w.varint(5);
        let mut bytes = w.into_bytes();
        bytes.push(0);
        let mut r = SnapReader::new(&bytes);
        r.varint().unwrap();
        assert!(matches!(r.finish(), Err(SnapError::TrailingGarbage { .. })));
    }

    #[test]
    fn rle_round_trips() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0; 4096],
            vec![1, 2, 3, 4, 5],
            vec![7; 3],
            vec![7; 2],
            (0..=255u8).cycle().take(5000).collect(),
            {
                let mut v = vec![0u8; 4096];
                v[100] = 1;
                v[4000] = 2;
                v
            },
        ];
        for case in cases {
            let packed = rle_compress(&case);
            let unpacked = rle_decompress(&packed, case.len()).unwrap();
            assert_eq!(unpacked, case);
        }
    }

    #[test]
    fn zero_frame_compresses_small() {
        let packed = rle_compress(&[0u8; 4096]);
        assert!(packed.len() <= 64, "zero page should collapse, got {}", packed.len());
    }

    #[test]
    fn corrupt_rle_is_an_error_not_a_panic() {
        // Literal run claims more bytes than remain.
        assert!(rle_decompress(&[0x10, 1, 2], 32).is_err());
        // Repeat with missing payload byte.
        assert!(rle_decompress(&[0x85], 8).is_err());
        // Output longer than expected.
        assert!(rle_decompress(&[0x83, 9], 2).is_err());
        // Output shorter than expected.
        assert!(rle_decompress(&[0x00, 5], 9).is_err());
    }

    #[test]
    fn count_guard_rejects_huge_lengths() {
        let mut w = SnapWriter::new();
        w.varint(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.count(1024, "frames"), Err(SnapError::BadValue { .. })));
    }
}
