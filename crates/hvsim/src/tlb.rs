//! Per-vCPU software TLB: a cache of guest-virtual → guest-physical
//! translations with architecturally faithful invalidation.
//!
//! Every mediated guest memory access walks the guest page tables
//! ([`crate::paging::walk`]) and consults EPT ([`crate::ept`]). Both are pure
//! functions of guest state, so their results can be cached exactly like a
//! hardware TLB caches translations — provided the cache is invalidated
//! whenever the underlying structures change. The simulator enforces the
//! same three invalidation rules real x86 hardware and hypervisors do:
//!
//! 1. **CR3 load** — an address-space switch flushes the whole TLB (the
//!    simulator does not model global pages or PCIDs), mirroring the
//!    hardware flush a `mov cr3` performs.
//! 2. **Page-table edit** — x86 requires `invlpg` after an edit, but a
//!    monitor cannot trust the guest to be well behaved, so the simulator is
//!    *stricter* than hardware: guest memory tracks the frames that hold
//!    paging structures ([`crate::mem::GuestMemory::track_paging_frame`]) and
//!    any store to one of them invalidates the translations that walked
//!    through it. A malicious guest therefore cannot desynchronise the TLB
//!    from its page tables, which keeps cached translation transparent to
//!    HyperTap's invariant checks.
//! 3. **EPT permission edit** — the hypervisor bumps an EPT generation
//!    counter on every [`crate::ept::Ept::set_perm`]; cached permissions are
//!    refreshed when the generation moves (the analogue of `INVEPT`).
//!
//! The cache is a fixed-size direct-mapped array keyed on `(CR3, virtual
//! page number)`, so behaviour is deterministic and memory use is bounded.
//! Crucially, translation charges **no simulated time** — the cost model
//! charges accesses after translation — so enabling or disabling the TLB
//! cannot change any event stream or simulated clock; only host wall-clock
//! time differs.

use crate::ept::{Ept, EptPerm};
use crate::mem::{Gfn, Gpa, GuestMemory, Gva, PAGE_SIZE};
use crate::paging::{self, PageFault};
use crate::snap::{SnapError, SnapReader, SnapWriter};

/// Number of direct-mapped TLB slots per vCPU (a power of two).
const TLB_SLOTS: usize = 1024;

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    /// Address space the translation belongs to.
    cr3: Gpa,
    /// Virtual page number (GVA / page size).
    vpn: u64,
    /// Base of the guest-physical frame the page maps to.
    frame: Gpa,
    /// Frame holding the page-directory entry the walk read.
    pd_gfn: Gfn,
    /// Frame holding the page-table entry the walk read.
    pt_gfn: Gfn,
    /// `mem.paging_gen()` when the entry was filled: both dependency frames
    /// were last written at or before this generation.
    fill_gen: u64,
    /// `mem.paging_gen()` when the entry was last validated. When this
    /// equals the current generation no page table anywhere has changed and
    /// the per-frame checks can be skipped.
    snap_gen: u64,
    /// Cached EPT permission of `frame`.
    perm: EptPerm,
    /// `ept.generation()` when `perm` was cached.
    ept_gen: u64,
}

/// Hit/miss counters for one TLB (or an aggregate over several).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell back to a page-table walk (including faults).
    pub misses: u64,
    /// Successful walks whose result was cached.
    pub fills: u64,
    /// Full flushes (CR3 loads).
    pub flushes: u64,
}

impl TlbStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &TlbStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.fills += other.fills;
        self.flushes += other.flushes;
    }
}

/// A per-vCPU software TLB. See the module documentation for the
/// invalidation rules.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<Option<TlbEntry>>,
    stats: TlbStats,
}

impl Default for Tlb {
    fn default() -> Self {
        Tlb::new()
    }
}

impl Tlb {
    /// An empty TLB.
    pub fn new() -> Self {
        Tlb { entries: vec![None; TLB_SLOTS], stats: TlbStats::default() }
    }

    /// Drops every cached translation (a CR3 load).
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
        self.stats.flushes += 1;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Serializes the cached translations and counters. Restoring the full
    /// entry array (not just flushing) keeps hit/miss statistics bit-exact
    /// across a snapshot/restore cycle.
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        w.varint(self.stats.hits);
        w.varint(self.stats.misses);
        w.varint(self.stats.fills);
        w.varint(self.stats.flushes);
        let present = self.entries.iter().filter(|e| e.is_some()).count();
        w.varint(present as u64);
        for (i, e) in self.entries.iter().enumerate() {
            let Some(e) = e else { continue };
            w.varint(i as u64);
            w.varint(e.cr3.value());
            w.varint(e.vpn);
            w.varint(e.frame.value());
            w.varint(e.pd_gfn.value());
            w.varint(e.pt_gfn.value());
            w.varint(e.fill_gen);
            w.varint(e.snap_gen);
            w.byte(e.perm.to_bits());
            w.varint(e.ept_gen);
        }
    }

    /// Restores state saved by [`Tlb::save`].
    pub(crate) fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.stats = TlbStats {
            hits: r.varint()?,
            misses: r.varint()?,
            fills: r.varint()?,
            flushes: r.varint()?,
        };
        for e in &mut self.entries {
            *e = None;
        }
        let n = r.count(TLB_SLOTS, "tlb entry count")?;
        for _ in 0..n {
            let off = r.offset();
            let idx = r.varint()? as usize;
            if idx >= TLB_SLOTS {
                return Err(SnapError::BadValue { offset: off, what: "tlb slot" });
            }
            let cr3 = Gpa::new(r.varint()?);
            let vpn = r.varint()?;
            let frame = Gpa::new(r.varint()?);
            let pd_gfn = Gfn::new(r.varint()?);
            let pt_gfn = Gfn::new(r.varint()?);
            let fill_gen = r.varint()?;
            let snap_gen = r.varint()?;
            let off = r.offset();
            let perm = EptPerm::from_bits(r.byte()?)
                .ok_or(SnapError::BadValue { offset: off, what: "tlb permission" })?;
            let ept_gen = r.varint()?;
            self.entries[idx] = Some(TlbEntry {
                cr3,
                vpn,
                frame,
                pd_gfn,
                pt_gfn,
                fill_gen,
                snap_gen,
                perm,
                ept_gen,
            });
        }
        Ok(())
    }

    /// Translates `gva` under `cr3`, consulting the cache first. Returns the
    /// guest-physical address and the (current) EPT permission of its frame.
    ///
    /// Needs `&mut GuestMemory` only to mark paging-structure frames as
    /// tracked on the fill path; guest-visible memory contents are never
    /// modified.
    ///
    /// # Errors
    ///
    /// Returns the same [`PageFault`] a raw [`paging::walk`] would.
    #[inline]
    pub fn translate(
        &mut self,
        mem: &mut GuestMemory,
        ept: &Ept,
        cr3: Gpa,
        gva: Gva,
    ) -> Result<(Gpa, EptPerm), PageFault> {
        let vpn = gva.value() / PAGE_SIZE;
        let idx = (vpn as usize) & (TLB_SLOTS - 1);
        let paging_gen = mem.paging_gen();
        if let Some(e) = &mut self.entries[idx] {
            if e.cr3 == cr3 && e.vpn == vpn {
                // Valid if no page table anywhere changed since the last
                // validation, or (slow check) if neither structure this
                // entry walked through was written since the fill.
                let paging_ok = e.snap_gen == paging_gen
                    || (mem.frame_write_gen(e.pd_gfn) <= e.fill_gen
                        && mem.frame_write_gen(e.pt_gfn) <= e.fill_gen);
                if paging_ok {
                    e.snap_gen = paging_gen;
                    if e.ept_gen != ept.generation() {
                        e.perm = ept.perm(e.frame.gfn());
                        e.ept_gen = ept.generation();
                    }
                    self.stats.hits += 1;
                    return Ok((e.frame.offset(gva.page_offset()), e.perm));
                }
            }
        }
        self.stats.misses += 1;
        let t = paging::walk_traced(mem, cr3, gva)?;
        mem.track_paging_frame(t.pd_gfn);
        mem.track_paging_frame(t.pt_gfn);
        let frame = t.gpa.gfn().base();
        let perm = ept.perm(frame.gfn());
        let fill_gen = mem.paging_gen();
        self.entries[idx] = Some(TlbEntry {
            cr3,
            vpn,
            frame,
            pd_gfn: t.pd_gfn,
            pt_gfn: t.pt_gfn,
            fill_gen,
            snap_gen: fill_gen,
            perm,
            ept_gen: ept.generation(),
        });
        self.stats.fills += 1;
        Ok((t.gpa, perm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paging::{AddressSpaceBuilder, FrameAllocator};

    fn setup() -> (GuestMemory, Ept, FrameAllocator, AddressSpaceBuilder) {
        let mut mem = GuestMemory::new(64 << 20);
        let mut falloc = FrameAllocator::new(Gfn::new(16), Gfn::new((64 << 20) / PAGE_SIZE));
        let asb = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        (mem, Ept::new(), falloc, asb)
    }

    #[test]
    fn repeat_access_hits() {
        let (mut mem, ept, mut falloc, mut asb) = setup();
        let frame = falloc.alloc(&mut mem);
        asb.map(&mut mem, &mut falloc, Gva::new(0x40_0000), frame);
        let mut tlb = Tlb::new();
        let cr3 = asb.pdba();
        let (a, _) = tlb.translate(&mut mem, &ept, cr3, Gva::new(0x40_0010)).unwrap();
        let (b, _) = tlb.translate(&mut mem, &ept, cr3, Gva::new(0x40_0020)).unwrap();
        assert_eq!(a, frame.base().offset(0x10));
        assert_eq!(b, frame.base().offset(0x20));
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn flush_empties_the_cache() {
        let (mut mem, ept, mut falloc, mut asb) = setup();
        let frame = falloc.alloc(&mut mem);
        asb.map(&mut mem, &mut falloc, Gva::new(0x40_0000), frame);
        let mut tlb = Tlb::new();
        let cr3 = asb.pdba();
        tlb.translate(&mut mem, &ept, cr3, Gva::new(0x40_0000)).unwrap();
        tlb.flush();
        tlb.translate(&mut mem, &ept, cr3, Gva::new(0x40_0000)).unwrap();
        assert_eq!(tlb.stats().hits, 0);
        assert_eq!(tlb.stats().misses, 2);
        assert_eq!(tlb.stats().flushes, 1);
    }

    #[test]
    fn page_table_edit_invalidates() {
        let (mut mem, ept, mut falloc, mut asb) = setup();
        let f1 = falloc.alloc(&mut mem);
        let f2 = falloc.alloc(&mut mem);
        let gva = Gva::new(0x40_0000);
        asb.map(&mut mem, &mut falloc, gva, f1);
        let mut tlb = Tlb::new();
        let cr3 = asb.pdba();
        let (a, _) = tlb.translate(&mut mem, &ept, cr3, gva).unwrap();
        assert_eq!(a.gfn(), f1);
        // Remap the page: a guest store into the (tracked) page table.
        asb.map(&mut mem, &mut falloc, gva, f2);
        let (b, _) = tlb.translate(&mut mem, &ept, cr3, gva).unwrap();
        assert_eq!(b.gfn(), f2, "stale translation must not survive a PTE edit");
        assert_eq!(tlb.stats().misses, 2);
    }

    #[test]
    fn unrelated_writes_do_not_invalidate() {
        let (mut mem, ept, mut falloc, mut asb) = setup();
        let frame = falloc.alloc(&mut mem);
        asb.map(&mut mem, &mut falloc, Gva::new(0x40_0000), frame);
        let mut tlb = Tlb::new();
        let cr3 = asb.pdba();
        tlb.translate(&mut mem, &ept, cr3, Gva::new(0x40_0000)).unwrap();
        // Ordinary data writes — even to the mapped frame itself.
        mem.write_u64(frame.base(), 0xdead);
        tlb.translate(&mut mem, &ept, cr3, Gva::new(0x40_0000)).unwrap();
        assert_eq!(tlb.stats().hits, 1);
    }

    #[test]
    fn sibling_page_table_edit_revalidates_without_walk() {
        let (mut mem, ept, mut falloc, mut asb) = setup();
        let f1 = falloc.alloc(&mut mem);
        asb.map(&mut mem, &mut falloc, Gva::new(0x40_0000), f1);
        let mut tlb = Tlb::new();
        let cr3 = asb.pdba();
        tlb.translate(&mut mem, &ept, cr3, Gva::new(0x40_0000)).unwrap();
        // Map a page under a *different* directory entry: allocates a new
        // page table and writes an unrelated PDE slot (same PD frame, so the
        // global generation moves and the slow revalidation path runs).
        let f2 = falloc.alloc(&mut mem);
        asb.map(&mut mem, &mut falloc, Gva::new(0x80_0000), f2);
        // The PD frame itself was written, so the first entry is (correctly,
        // conservatively) invalidated at frame granularity.
        let (a, _) = tlb.translate(&mut mem, &ept, cr3, Gva::new(0x40_0000)).unwrap();
        assert_eq!(a.gfn(), f1);
        // But a pure data write elsewhere triggers only the fast path.
        mem.write_u64(Gpa::new(0x1000), 1);
        tlb.translate(&mut mem, &ept, cr3, Gva::new(0x40_0000)).unwrap();
        assert_eq!(tlb.stats().hits, 1);
    }

    #[test]
    fn ept_edit_refreshes_cached_permission() {
        let (mut mem, mut ept, mut falloc, mut asb) = setup();
        let frame = falloc.alloc(&mut mem);
        let gva = Gva::new(0x40_0000);
        asb.map(&mut mem, &mut falloc, gva, frame);
        let mut tlb = Tlb::new();
        let cr3 = asb.pdba();
        let (_, p0) = tlb.translate(&mut mem, &ept, cr3, gva).unwrap();
        assert!(p0.allows(crate::ept::AccessKind::Write));
        ept.set_perm(frame, EptPerm::RX);
        let (_, p1) = tlb.translate(&mut mem, &ept, cr3, gva).unwrap();
        assert!(!p1.allows(crate::ept::AccessKind::Write), "cached perm must track EPT edits");
        assert_eq!(tlb.stats().hits, 1, "permission refresh is not a TLB miss");
        ept.set_perm(frame, EptPerm::RWX);
        let (_, p2) = tlb.translate(&mut mem, &ept, cr3, gva).unwrap();
        assert!(p2.allows(crate::ept::AccessKind::Write));
    }

    #[test]
    fn cr3_conflict_misses() {
        let (mut mem, ept, mut falloc, mut asb) = setup();
        let mut asb2 = AddressSpaceBuilder::new(&mut mem, &mut falloc);
        let f1 = falloc.alloc(&mut mem);
        let f2 = falloc.alloc(&mut mem);
        let gva = Gva::new(0x40_0000);
        asb.map(&mut mem, &mut falloc, gva, f1);
        asb2.map(&mut mem, &mut falloc, gva, f2);
        let mut tlb = Tlb::new();
        let (a, _) = tlb.translate(&mut mem, &ept, asb.pdba(), gva).unwrap();
        let (b, _) = tlb.translate(&mut mem, &ept, asb2.pdba(), gva).unwrap();
        assert_eq!(a.gfn(), f1);
        assert_eq!(b.gfn(), f2, "same VPN under another CR3 is a different translation");
        assert_eq!(tlb.stats().hits, 0);
    }

    #[test]
    fn faults_are_not_cached() {
        let (mut mem, ept, mut falloc, mut asb) = setup();
        let gva = Gva::new(0x40_0000);
        let mut tlb = Tlb::new();
        let cr3 = asb.pdba();
        assert!(tlb.translate(&mut mem, &ept, cr3, gva).is_err());
        // Now map it; the next lookup must see the new mapping.
        let frame = falloc.alloc(&mut mem);
        asb.map(&mut mem, &mut falloc, gva, frame);
        let (a, _) = tlb.translate(&mut mem, &ept, cr3, gva).unwrap();
        assert_eq!(a.gfn(), frame);
        assert_eq!(tlb.stats().fills, 1);
    }

    #[test]
    fn freed_page_table_frame_invalidates_dependents() {
        let (mut mem, ept, mut falloc, mut asb) = setup();
        let frame = falloc.alloc(&mut mem);
        let gva = Gva::new(0x40_0000);
        asb.map(&mut mem, &mut falloc, gva, frame);
        let mut tlb = Tlb::new();
        let cr3 = asb.pdba();
        tlb.translate(&mut mem, &ept, cr3, gva).unwrap();
        // The kernel tears the address space down; the PT frame is zeroed.
        let pde = mem.read_u64(cr3.offset(0x40_0000 >> 21 << 3));
        let pt_gfn = Gpa::new(pde & !(PAGE_SIZE - 1)).gfn();
        mem.zero_frame(pt_gfn);
        assert!(
            tlb.translate(&mut mem, &ept, cr3, gva).is_err(),
            "translation through a freed page table must fault, not hit"
        );
    }
}
