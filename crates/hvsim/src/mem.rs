//! Guest-physical memory and the address newtypes.
//!
//! Memory is a flat table of 4 KiB frames, allocated lazily on first write.
//! All multi-byte accessors are little-endian, matching x86. Accesses may
//! cross page boundaries; they are split internally.
//!
//! Three address spaces are distinguished at the type level (the paper's
//! Section III uses the same terminology):
//!
//! * [`Gva`] — *guest virtual address*: what guest software uses; translated
//!   by the guest's own page tables (see [`crate::paging`]).
//! * [`Gpa`] — *guest-physical address*: what the guest believes is physical;
//!   translated by EPT (see [`crate::ept`]).
//! * [`Gfn`] — *guest frame number*: a [`Gpa`] shifted down by the page size;
//!   the granularity at which EPT permissions apply.
//!
//! # Hot path
//!
//! Frame lookup is a direct index into a `Vec<Option<Box<Frame>>>` rather
//! than a hash-map probe: one bounds check and one pointer chase per access.
//! The table also participates in TLB coherence (see [`crate::tlb`]): frames
//! holding paging structures can be *tracked* via
//! [`GuestMemory::track_paging_frame`]. Writes to tracked frames bump a
//! global paging generation and stamp the frame's own write generation, which
//! lets a software TLB detect page-table edits without snooping every store.

use crate::snap::{rle_compress, rle_decompress, SnapError, SnapReader, SnapWriter};
use std::fmt;

/// Size of a memory page/frame in bytes (4 KiB, as on x86).
pub const PAGE_SIZE: u64 = 4096;

type Frame = Box<[u8; PAGE_SIZE as usize]>;

/// A guest-virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gva(u64);

impl Gva {
    /// Creates a guest-virtual address from a raw value.
    pub const fn new(addr: u64) -> Self {
        Gva(addr)
    }

    /// The raw address value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The address of the start of the page containing this address.
    pub const fn page_base(self) -> Gva {
        Gva(self.0 & !(PAGE_SIZE - 1))
    }

    /// Byte offset of this address within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// This address displaced by `delta` bytes.
    pub const fn offset(self, delta: u64) -> Gva {
        Gva(self.0 + delta)
    }
}

impl fmt::Display for Gva {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gva:{:#012x}", self.0)
    }
}

impl fmt::LowerHex for Gva {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A guest-physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gpa(u64);

impl Gpa {
    /// The null guest-physical address.
    pub const NULL: Gpa = Gpa(0);

    /// Creates a guest-physical address from a raw value.
    pub const fn new(addr: u64) -> Self {
        Gpa(addr)
    }

    /// The raw address value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The frame containing this address.
    pub const fn gfn(self) -> Gfn {
        Gfn(self.0 / PAGE_SIZE)
    }

    /// Byte offset of this address within its frame.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// This address displaced by `delta` bytes.
    pub const fn offset(self, delta: u64) -> Gpa {
        Gpa(self.0 + delta)
    }
}

impl fmt::Display for Gpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpa:{:#012x}", self.0)
    }
}

impl fmt::LowerHex for Gpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A guest frame number (a [`Gpa`] divided by [`PAGE_SIZE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gfn(u64);

impl Gfn {
    /// Creates a frame number from a raw value.
    pub const fn new(n: u64) -> Self {
        Gfn(n)
    }

    /// The raw frame number.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The guest-physical address of the first byte of this frame.
    pub const fn base(self) -> Gpa {
        Gpa(self.0 * PAGE_SIZE)
    }
}

impl fmt::Display for Gfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gfn:{:#x}", self.0)
    }
}

/// Guest-physical memory with lazily allocated frames.
///
/// Frames are 4 KiB and zero-filled on first touch. `size` bounds the
/// guest-physical address space: accesses at or beyond it panic, because in
/// this simulator an out-of-range physical access is always a harness bug,
/// never a modelled guest behaviour (guest bugs manifest as page faults or
/// EPT violations before reaching physical memory).
#[derive(Debug, Clone)]
pub struct GuestMemory {
    /// Direct frame table indexed by frame number. Untouched frames are
    /// `None` and read as zeros.
    frames: Vec<Option<Frame>>,
    /// Number of `Some` entries in `frames`.
    resident: usize,
    size: u64,
    /// Frames currently known to hold paging structures (page directories or
    /// page tables) of some live address space. Writes to these frames are
    /// the only guest stores that can invalidate a TLB entry.
    tracked: Vec<bool>,
    /// Per-frame generation of the last write to a *tracked* frame. A TLB
    /// entry filled at generation `g` remains valid as long as both paging
    /// structures it walked through have `write_gens <= g`.
    write_gens: Vec<u64>,
    /// Global counter bumped on every write to a tracked frame. TLBs compare
    /// a snapshot of this against the current value to skip per-frame checks
    /// entirely when no page table anywhere has changed.
    paging_gen: u64,
}

impl GuestMemory {
    /// Creates `size` bytes of guest-physical memory (rounded up to a page).
    pub fn new(size: u64) -> Self {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let nframes = (size / PAGE_SIZE) as usize;
        GuestMemory {
            frames: vec![None; nframes],
            resident: 0,
            size,
            tracked: vec![false; nframes],
            write_gens: vec![0; nframes],
            paging_gen: 0,
        }
    }

    /// Total guest-physical memory size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of frames that have actually been touched.
    pub fn resident_frames(&self) -> usize {
        self.resident
    }

    fn check(&self, gpa: Gpa, len: u64) {
        assert!(
            gpa.value().checked_add(len).is_some_and(|end| end <= self.size),
            "guest-physical access out of range: {} len {} (memory size {:#x})",
            gpa,
            len,
            self.size
        );
    }

    /// Marks `gfn` as holding a paging structure. Idempotent. Called by the
    /// TLB fill path for every page directory and page table it walks
    /// through; never needs to be un-tracked explicitly because
    /// [`GuestMemory::zero_frame`] clears it when the frame is freed.
    pub fn track_paging_frame(&mut self, gfn: Gfn) {
        self.check(gfn.base(), PAGE_SIZE);
        self.tracked[gfn.value() as usize] = true;
    }

    /// The global paging-structure write generation.
    pub fn paging_gen(&self) -> u64 {
        self.paging_gen
    }

    /// Generation of the last tracked write to `gfn` (0 if never written
    /// while tracked).
    pub fn frame_write_gen(&self, gfn: Gfn) -> u64 {
        self.write_gens[gfn.value() as usize]
    }

    /// Reads `buf.len()` bytes starting at `gpa`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn read(&self, gpa: Gpa, buf: &mut [u8]) {
        self.check(gpa, buf.len() as u64);
        let mut addr = gpa.value();
        let mut done = 0usize;
        while done < buf.len() {
            let off = (addr % PAGE_SIZE) as usize;
            let n = usize::min(buf.len() - done, PAGE_SIZE as usize - off);
            match &self.frames[(addr / PAGE_SIZE) as usize] {
                Some(frame) => buf[done..done + n].copy_from_slice(&frame[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            addr += n as u64;
        }
    }

    /// Writes `buf` starting at `gpa`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn write(&mut self, gpa: Gpa, buf: &[u8]) {
        self.check(gpa, buf.len() as u64);
        let mut addr = gpa.value();
        let mut done = 0usize;
        while done < buf.len() {
            let idx = (addr / PAGE_SIZE) as usize;
            let off = (addr % PAGE_SIZE) as usize;
            let n = usize::min(buf.len() - done, PAGE_SIZE as usize - off);
            if self.tracked[idx] {
                self.paging_gen += 1;
                self.write_gens[idx] = self.paging_gen;
            }
            let slot = &mut self.frames[idx];
            if slot.is_none() {
                *slot = Some(Box::new([0u8; PAGE_SIZE as usize]));
                self.resident += 1;
            }
            let frame = slot.as_mut().expect("just ensured present");
            frame[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            addr += n as u64;
        }
    }

    /// Reads a little-endian `u64` at `gpa`.
    ///
    /// Non-page-crossing reads (the overwhelmingly common case: page-table
    /// entries are naturally aligned, and guest code mostly is too) take a
    /// direct path — one frame index, one 8-byte load.
    #[inline]
    pub fn read_u64(&self, gpa: Gpa) -> u64 {
        let off = gpa.page_offset() as usize;
        if off + 8 <= PAGE_SIZE as usize {
            self.check(gpa, 8);
            return match &self.frames[(gpa.value() / PAGE_SIZE) as usize] {
                Some(frame) => u64::from_le_bytes(frame[off..off + 8].try_into().unwrap()),
                None => 0,
            };
        }
        let mut buf = [0u8; 8];
        self.read(gpa, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian `u64` at `gpa`.
    ///
    /// Non-page-crossing writes take a direct path; the paging-structure
    /// generation bookkeeping is identical to [`GuestMemory::write`].
    #[inline]
    pub fn write_u64(&mut self, gpa: Gpa, value: u64) {
        let off = gpa.page_offset() as usize;
        if off + 8 <= PAGE_SIZE as usize {
            self.check(gpa, 8);
            let idx = (gpa.value() / PAGE_SIZE) as usize;
            if self.tracked[idx] {
                self.paging_gen += 1;
                self.write_gens[idx] = self.paging_gen;
            }
            let slot = &mut self.frames[idx];
            if slot.is_none() {
                *slot = Some(Box::new([0u8; PAGE_SIZE as usize]));
                self.resident += 1;
            }
            let frame = slot.as_mut().expect("just ensured present");
            frame[off..off + 8].copy_from_slice(&value.to_le_bytes());
            return;
        }
        self.write(gpa, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `gpa`.
    pub fn read_u32(&self, gpa: Gpa) -> u32 {
        let mut buf = [0u8; 4];
        self.read(gpa, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Writes a little-endian `u32` at `gpa`.
    pub fn write_u32(&mut self, gpa: Gpa, value: u32) {
        self.write(gpa, &value.to_le_bytes());
    }

    /// Serializes the whole guest-physical state: resident frames (RLE
    /// compressed, so untouched and zero pages cost almost nothing), the
    /// paging-structure tracking set, and the write generations that drive
    /// TLB invalidation.
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        w.varint(self.size);
        w.varint(self.paging_gen);
        let tracked: Vec<u64> =
            (0..self.tracked.len()).filter(|&i| self.tracked[i]).map(|i| i as u64).collect();
        w.varint(tracked.len() as u64);
        for gfn in tracked {
            w.varint(gfn);
        }
        let gens: Vec<(u64, u64)> = self
            .write_gens
            .iter()
            .enumerate()
            .filter(|(_, &g)| g != 0)
            .map(|(i, &g)| (i as u64, g))
            .collect();
        w.varint(gens.len() as u64);
        for (gfn, gen) in gens {
            w.varint(gfn);
            w.varint(gen);
        }
        w.varint(self.resident as u64);
        for (i, frame) in self.frames.iter().enumerate() {
            if let Some(frame) = frame {
                w.varint(i as u64);
                w.bytes(&rle_compress(&frame[..]));
            }
        }
    }

    /// Restores state saved by [`GuestMemory::save`]. The serialized size
    /// must match this memory's configured size.
    pub(crate) fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let off = r.offset();
        let size = r.varint()?;
        if size != self.size {
            return Err(SnapError::BadValue { offset: off, what: "memory size" });
        }
        let nframes = self.frames.len();
        self.paging_gen = r.varint()?;
        self.tracked.fill(false);
        let ntracked = r.count(nframes, "tracked frame count")?;
        for _ in 0..ntracked {
            let off = r.offset();
            let gfn = r.varint()? as usize;
            if gfn >= nframes {
                return Err(SnapError::BadValue { offset: off, what: "tracked frame" });
            }
            self.tracked[gfn] = true;
        }
        self.write_gens.fill(0);
        let ngens = r.count(nframes, "write generation count")?;
        for _ in 0..ngens {
            let off = r.offset();
            let gfn = r.varint()? as usize;
            if gfn >= nframes {
                return Err(SnapError::BadValue { offset: off, what: "write-gen frame" });
            }
            self.write_gens[gfn] = r.varint()?;
        }
        self.frames.fill_with(|| None);
        self.resident = 0;
        let nresident = r.count(nframes, "resident frame count")?;
        for _ in 0..nresident {
            let off = r.offset();
            let gfn = r.varint()? as usize;
            if gfn >= nframes {
                return Err(SnapError::BadValue { offset: off, what: "resident frame" });
            }
            let packed = r.bytes()?;
            let data = rle_decompress(packed, PAGE_SIZE as usize)?;
            let mut frame = Box::new([0u8; PAGE_SIZE as usize]);
            frame.copy_from_slice(&data);
            if self.frames[gfn].replace(frame).is_none() {
                self.resident += 1;
            }
        }
        Ok(())
    }

    /// Zero-fills one whole frame. Used when the guest kernel frees a page
    /// (e.g. a dead process's page directory), so that stale pointers into it
    /// fail translation instead of yielding ghost data. If the frame held a
    /// paging structure, the erasure counts as a paging-structure write (and
    /// tracking ends: the frame may be reused for ordinary data).
    pub fn zero_frame(&mut self, gfn: Gfn) {
        self.check(gfn.base(), PAGE_SIZE);
        let idx = gfn.value() as usize;
        if self.frames[idx].take().is_some() {
            self.resident -= 1;
        }
        if self.tracked[idx] {
            self.tracked[idx] = false;
            self.paging_gen += 1;
            self.write_gens[idx] = self.paging_gen;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_on_first_read() {
        let mem = GuestMemory::new(1 << 20);
        let mut buf = [0xffu8; 16];
        mem.read(Gpa::new(0x2000), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.write(Gpa::new(0x1234), b"hello");
        let mut buf = [0u8; 5];
        mem.read(Gpa::new(0x1234), &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn cross_page_access() {
        let mut mem = GuestMemory::new(1 << 20);
        let gpa = Gpa::new(PAGE_SIZE - 3);
        mem.write(gpa, &[1, 2, 3, 4, 5, 6]);
        let mut buf = [0u8; 6];
        mem.read(gpa, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6]);
        assert_eq!(mem.resident_frames(), 2);
    }

    #[test]
    fn u64_round_trip_little_endian() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.write_u64(Gpa::new(0x100), 0x1122334455667788);
        assert_eq!(mem.read_u64(Gpa::new(0x100)), 0x1122334455667788);
        let mut b = [0u8; 1];
        mem.read(Gpa::new(0x100), &mut b);
        assert_eq!(b[0], 0x88, "least significant byte first");
    }

    #[test]
    fn zero_frame_erases() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.write_u64(Gpa::new(0x3000), 42);
        mem.zero_frame(Gfn::new(3));
        assert_eq!(mem.read_u64(Gpa::new(0x3000)), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mem = GuestMemory::new(PAGE_SIZE);
        let mut buf = [0u8; 2];
        mem.read(Gpa::new(PAGE_SIZE - 1), &mut buf);
    }

    #[test]
    fn address_newtypes() {
        let gpa = Gpa::new(0x1abc);
        assert_eq!(gpa.gfn(), Gfn::new(1));
        assert_eq!(gpa.page_offset(), 0xabc);
        assert_eq!(gpa.gfn().base(), Gpa::new(0x1000));
        let gva = Gva::new(0x5fff);
        assert_eq!(gva.page_base(), Gva::new(0x5000));
        assert_eq!(gva.offset(1).value(), 0x6000);
    }

    #[test]
    fn size_rounds_up_to_page() {
        let mem = GuestMemory::new(1);
        assert_eq!(mem.size(), PAGE_SIZE);
    }

    #[test]
    fn untracked_writes_do_not_move_paging_gen() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.write_u64(Gpa::new(0x5000), 7);
        assert_eq!(mem.paging_gen(), 0);
    }

    #[test]
    fn tracked_writes_bump_generations() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.track_paging_frame(Gfn::new(4));
        let g0 = mem.paging_gen();
        mem.write_u64(Gpa::new(0x4000), 1);
        assert!(mem.paging_gen() > g0);
        assert_eq!(mem.frame_write_gen(Gfn::new(4)), mem.paging_gen());
        // Writes elsewhere leave the frame's own generation alone.
        let g1 = mem.frame_write_gen(Gfn::new(4));
        mem.write_u64(Gpa::new(0x8000), 2);
        assert_eq!(mem.frame_write_gen(Gfn::new(4)), g1);
    }

    #[test]
    fn zero_frame_ends_tracking_with_a_final_bump() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.track_paging_frame(Gfn::new(4));
        mem.write_u64(Gpa::new(0x4000), 1);
        let g = mem.paging_gen();
        mem.zero_frame(Gfn::new(4));
        assert!(mem.paging_gen() > g, "freeing a paging frame is an edit");
        // The frame is no longer tracked: ordinary reuse is invisible.
        let g2 = mem.paging_gen();
        mem.write_u64(Gpa::new(0x4000), 9);
        assert_eq!(mem.paging_gen(), g2);
    }

    #[test]
    fn cross_page_tracked_write_stamps_both_frames() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.track_paging_frame(Gfn::new(1));
        mem.track_paging_frame(Gfn::new(2));
        mem.write(Gpa::new(2 * PAGE_SIZE - 4), &[0xau8; 8]);
        assert!(mem.frame_write_gen(Gfn::new(1)) > 0);
        assert!(mem.frame_write_gen(Gfn::new(2)) > 0);
        assert_ne!(mem.frame_write_gen(Gfn::new(1)), mem.frame_write_gen(Gfn::new(2)));
    }
}
