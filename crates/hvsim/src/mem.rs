//! Guest-physical memory and the address newtypes.
//!
//! Memory is a sparse map of 4 KiB frames, allocated lazily on first write.
//! All multi-byte accessors are little-endian, matching x86. Accesses may
//! cross page boundaries; they are split internally.
//!
//! Three address spaces are distinguished at the type level (the paper's
//! Section III uses the same terminology):
//!
//! * [`Gva`] — *guest virtual address*: what guest software uses; translated
//!   by the guest's own page tables (see [`crate::paging`]).
//! * [`Gpa`] — *guest-physical address*: what the guest believes is physical;
//!   translated by EPT (see [`crate::ept`]).
//! * [`Gfn`] — *guest frame number*: a [`Gpa`] shifted down by the page size;
//!   the granularity at which EPT permissions apply.

use std::collections::HashMap;
use std::fmt;

/// Size of a memory page/frame in bytes (4 KiB, as on x86).
pub const PAGE_SIZE: u64 = 4096;

/// A guest-virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gva(u64);

impl Gva {
    /// Creates a guest-virtual address from a raw value.
    pub const fn new(addr: u64) -> Self {
        Gva(addr)
    }

    /// The raw address value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The address of the start of the page containing this address.
    pub const fn page_base(self) -> Gva {
        Gva(self.0 & !(PAGE_SIZE - 1))
    }

    /// Byte offset of this address within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// This address displaced by `delta` bytes.
    pub const fn offset(self, delta: u64) -> Gva {
        Gva(self.0 + delta)
    }
}

impl fmt::Display for Gva {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gva:{:#012x}", self.0)
    }
}

impl fmt::LowerHex for Gva {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A guest-physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gpa(u64);

impl Gpa {
    /// The null guest-physical address.
    pub const NULL: Gpa = Gpa(0);

    /// Creates a guest-physical address from a raw value.
    pub const fn new(addr: u64) -> Self {
        Gpa(addr)
    }

    /// The raw address value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The frame containing this address.
    pub const fn gfn(self) -> Gfn {
        Gfn(self.0 / PAGE_SIZE)
    }

    /// Byte offset of this address within its frame.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// This address displaced by `delta` bytes.
    pub const fn offset(self, delta: u64) -> Gpa {
        Gpa(self.0 + delta)
    }
}

impl fmt::Display for Gpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpa:{:#012x}", self.0)
    }
}

impl fmt::LowerHex for Gpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A guest frame number (a [`Gpa`] divided by [`PAGE_SIZE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gfn(u64);

impl Gfn {
    /// Creates a frame number from a raw value.
    pub const fn new(n: u64) -> Self {
        Gfn(n)
    }

    /// The raw frame number.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The guest-physical address of the first byte of this frame.
    pub const fn base(self) -> Gpa {
        Gpa(self.0 * PAGE_SIZE)
    }
}

impl fmt::Display for Gfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gfn:{:#x}", self.0)
    }
}

/// Sparse guest-physical memory.
///
/// Frames are 4 KiB and zero-filled on first touch. `size` bounds the
/// guest-physical address space: accesses at or beyond it panic, because in
/// this simulator an out-of-range physical access is always a harness bug,
/// never a modelled guest behaviour (guest bugs manifest as page faults or
/// EPT violations before reaching physical memory).
#[derive(Debug, Clone)]
pub struct GuestMemory {
    frames: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    size: u64,
}

impl GuestMemory {
    /// Creates `size` bytes of guest-physical memory (rounded up to a page).
    pub fn new(size: u64) -> Self {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        GuestMemory {
            frames: HashMap::new(),
            size,
        }
    }

    /// Total guest-physical memory size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of frames that have actually been touched.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    fn check(&self, gpa: Gpa, len: u64) {
        assert!(
            gpa.value().checked_add(len).is_some_and(|end| end <= self.size),
            "guest-physical access out of range: {} len {} (memory size {:#x})",
            gpa,
            len,
            self.size
        );
    }

    /// Reads `buf.len()` bytes starting at `gpa`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn read(&self, gpa: Gpa, buf: &mut [u8]) {
        self.check(gpa, buf.len() as u64);
        let mut addr = gpa.value();
        let mut done = 0usize;
        while done < buf.len() {
            let off = (addr % PAGE_SIZE) as usize;
            let n = usize::min(buf.len() - done, PAGE_SIZE as usize - off);
            match self.frames.get(&(addr / PAGE_SIZE)) {
                Some(frame) => buf[done..done + n].copy_from_slice(&frame[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            addr += n as u64;
        }
    }

    /// Writes `buf` starting at `gpa`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn write(&mut self, gpa: Gpa, buf: &[u8]) {
        self.check(gpa, buf.len() as u64);
        let mut addr = gpa.value();
        let mut done = 0usize;
        while done < buf.len() {
            let off = (addr % PAGE_SIZE) as usize;
            let n = usize::min(buf.len() - done, PAGE_SIZE as usize - off);
            let frame = self
                .frames
                .entry(addr / PAGE_SIZE)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
            frame[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            addr += n as u64;
        }
    }

    /// Reads a little-endian `u64` at `gpa`.
    pub fn read_u64(&self, gpa: Gpa) -> u64 {
        let mut buf = [0u8; 8];
        self.read(gpa, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian `u64` at `gpa`.
    pub fn write_u64(&mut self, gpa: Gpa, value: u64) {
        self.write(gpa, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `gpa`.
    pub fn read_u32(&self, gpa: Gpa) -> u32 {
        let mut buf = [0u8; 4];
        self.read(gpa, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Writes a little-endian `u32` at `gpa`.
    pub fn write_u32(&mut self, gpa: Gpa, value: u32) {
        self.write(gpa, &value.to_le_bytes());
    }

    /// Zero-fills one whole frame. Used when the guest kernel frees a page
    /// (e.g. a dead process's page directory), so that stale pointers into it
    /// fail translation instead of yielding ghost data.
    pub fn zero_frame(&mut self, gfn: Gfn) {
        self.check(gfn.base(), PAGE_SIZE);
        self.frames.remove(&gfn.value());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_on_first_read() {
        let mem = GuestMemory::new(1 << 20);
        let mut buf = [0xffu8; 16];
        mem.read(Gpa::new(0x2000), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.write(Gpa::new(0x1234), b"hello");
        let mut buf = [0u8; 5];
        mem.read(Gpa::new(0x1234), &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn cross_page_access() {
        let mut mem = GuestMemory::new(1 << 20);
        let gpa = Gpa::new(PAGE_SIZE - 3);
        mem.write(gpa, &[1, 2, 3, 4, 5, 6]);
        let mut buf = [0u8; 6];
        mem.read(gpa, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6]);
        assert_eq!(mem.resident_frames(), 2);
    }

    #[test]
    fn u64_round_trip_little_endian() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.write_u64(Gpa::new(0x100), 0x1122334455667788);
        assert_eq!(mem.read_u64(Gpa::new(0x100)), 0x1122334455667788);
        let mut b = [0u8; 1];
        mem.read(Gpa::new(0x100), &mut b);
        assert_eq!(b[0], 0x88, "least significant byte first");
    }

    #[test]
    fn zero_frame_erases() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.write_u64(Gpa::new(0x3000), 42);
        mem.zero_frame(Gfn::new(3));
        assert_eq!(mem.read_u64(Gpa::new(0x3000)), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mem = GuestMemory::new(PAGE_SIZE);
        let mut buf = [0u8; 2];
        mem.read(Gpa::new(PAGE_SIZE - 1), &mut buf);
    }

    #[test]
    fn address_newtypes() {
        let gpa = Gpa::new(0x1abc);
        assert_eq!(gpa.gfn(), Gfn::new(1));
        assert_eq!(gpa.page_offset(), 0xabc);
        assert_eq!(gpa.gfn().base(), Gpa::new(0x1000));
        let gva = Gva::new(0x5fff);
        assert_eq!(gva.page_base(), Gva::new(0x5000));
        assert_eq!(gva.offset(1).value(), 0x6000);
    }

    #[test]
    fn size_rounds_up_to_page() {
        let mem = GuestMemory::new(1);
        assert_eq!(mem.size(), PAGE_SIZE);
    }
}
