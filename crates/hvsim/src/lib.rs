//! # hypertap-hvsim — a deterministic Hardware-Assisted Virtualization simulator
//!
//! This crate is the hardware substrate of the HyperTap reproduction (DSN
//! 2014). The paper's framework relies on **hardware architectural
//! invariants** — properties enforced by the x86 architecture and its
//! virtualization extensions (Intel VT-x) that software inside a virtual
//! machine cannot violate:
//!
//! * the CR3 register always points to the page-directory base of the
//!   running process, and (with CR3-load exiting enabled) every write to it
//!   causes a `CR_ACCESS` VM Exit;
//! * the TR register always points to the Task-State Segment (TSS) of the
//!   running task, and the kernel stack pointer stored at `TSS.RSP0` is
//!   unique per thread — writes to an EPT write-protected TSS page cause
//!   `EPT_VIOLATION` VM Exits;
//! * ring transitions (system calls) must pass through architecturally
//!   defined gates: software interrupts (`EXCEPTION` VM Exits when selected
//!   by the exception bitmap) or `SYSENTER`, whose entry point lives in an
//!   MSR that can only be changed by a trapping `WRMSR` instruction;
//! * I/O must pass through port instructions (`IO_INST` exits), memory-mapped
//!   regions (`EPT_VIOLATION` exits) or interrupts (`EXTERNAL_INT` /
//!   `APIC_ACCESS` exits).
//!
//! Because real VT-x hardware is not available to this reproduction, the
//! simulator makes those invariants **structural**: guest code built on
//! [`cpu::CpuCtx`] has no way to switch address spaces, switch kernel stacks,
//! enter ring 0, or perform I/O except through the mediated operations that
//! raise the corresponding VM Exits. Guest *data* (page tables, task lists,
//! the TSS) lives in simulated guest-physical memory, so in-guest attacks can
//! corrupt operating-system state exactly as real rootkits do — while the
//! architectural layer stays trustworthy.
//!
//! The simulation is single-threaded, discrete-event, and fully
//! deterministic: simulated time is a [`clock::SimTime`] in nanoseconds, and
//! every mediated operation advances it according to a calibrated
//! [`cost::CostModel`], which is what makes the paper's performance
//! experiments (Fig. 7) meaningful in simulation.
//!
//! ## Quick tour
//!
//! ```
//! use hypertap_hvsim::prelude::*;
//!
//! // A trivial hypervisor that counts CR_ACCESS exits.
//! #[derive(Default)]
//! struct CountingHv {
//!     cr_writes: u64,
//! }
//! impl Hypervisor for CountingHv {
//!     fn handle_exit(&mut self, _vm: &mut VmState, exit: &VmExit) -> ExitAction {
//!         if matches!(exit.kind, VmExitKind::CrAccess { .. }) {
//!             self.cr_writes += 1;
//!         }
//!         ExitAction::Resume
//!     }
//! }
//!
//! // A trivial guest that writes CR3 once per step.
//! struct Guest;
//! impl GuestProgram for Guest {
//!     fn step(&mut self, cpu: &mut CpuCtx<'_>) -> StepOutcome {
//!         cpu.write_cr3(Gpa::new(0x1000));
//!         StepOutcome::Continue
//!     }
//! }
//!
//! let mut machine = Machine::new(VmConfig::new(1, 16 << 20), CountingHv::default());
//! machine.vm_mut().controls_mut().set_cr3_load_exiting(true);
//! machine.run_steps(&mut Guest, 10);
//! assert_eq!(machine.hypervisor().cr_writes, 10);
//! ```

pub mod clock;
pub mod cost;
pub mod cpu;
pub mod device;
pub mod ept;
pub mod exit;
pub mod machine;
pub mod mem;
pub mod paging;
pub mod snap;
pub mod tlb;
pub mod vcpu;

/// Convenient glob import of the types needed to assemble a simulated VM.
pub mod prelude {
    pub use crate::clock::{Duration, SimTime};
    pub use crate::cost::CostModel;
    pub use crate::cpu::{CpuCtx, StepOutcome};
    pub use crate::device::{Device, IoBus};
    pub use crate::ept::{AccessKind, Ept, EptPerm};
    pub use crate::exit::{ExitAction, ExitControls, ExitStats, VmExit, VmExitKind};
    pub use crate::machine::{GuestProgram, Hypervisor, Machine, VmConfig, VmLifecycle, VmState};
    pub use crate::mem::{Gfn, Gpa, GuestMemory, Gva, PAGE_SIZE};
    pub use crate::paging::{AddressSpaceBuilder, FrameAllocator, PageFault};
    pub use crate::snap::{SnapError, SnapReader, SnapWriter};
    pub use crate::tlb::{Tlb, TlbStats};
    pub use crate::vcpu::{Gpr, Msr, Vcpu, VcpuId};
}

pub use prelude::*;
