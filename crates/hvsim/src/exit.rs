//! VM Exits: the event-generation mechanism of Hardware-Assisted
//! Virtualization.
//!
//! When the guest attempts a restricted operation, the (simulated) processor
//! suspends the vCPU and transfers control to the hypervisor, delivering a
//! [`VmExit`] that carries the exit reason, its qualification data, and a
//! snapshot of the guest's architectural state (the VMCS guest-state area).
//! Which operations are restricted is programmable through [`ExitControls`],
//! mirroring the VMCS execution-control fields that HyperTap's interception
//! engines program:
//!
//! | Control | VT-x analogue | Used by |
//! |---|---|---|
//! | `cr3_load_exiting` | "CR3-load exiting" processor control | process tracking (Fig. 3A) |
//! | `exception_bitmap` | `EXCEPTION_BITMAP` | interrupt-based syscall interception (Fig. 3D) |
//! | `msr_write_exiting` | MSR bitmaps | fast-syscall interception (Fig. 3E) |
//!
//! EPT permission violations, I/O instructions, external interrupts and APIC
//! accesses exit unconditionally, as on real hardware.

use crate::clock::{Duration, SimTime};
use crate::ept::EptViolation;
use crate::mem::{Gpa, Gva};
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::vcpu::{Cpl, Gpr, Msr, Vcpu, VcpuId};
use std::fmt;

/// How the exiting exception was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionType {
    /// A software interrupt (`INT n`) — the legacy system-call gate.
    SoftwareInterrupt,
    /// A hardware-detected fault (e.g. a guest page fault).
    Fault,
}

/// The reason and qualification data of a VM Exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmExitKind {
    /// A control-register write (`CR_ACCESS`). For CR3 this is the process
    /// context-switch event.
    CrAccess {
        /// Which control register (3 for CR3).
        cr: u8,
        /// The value being loaded.
        value: u64,
    },
    /// A guest-physical access violated EPT permissions (`EPT_VIOLATION`).
    EptViolation(EptViolation),
    /// A write to a model-specific register (`WRMSR`).
    Wrmsr {
        /// The target MSR.
        msr: Msr,
        /// The value being written.
        value: u64,
    },
    /// An exception selected by the exception bitmap (`EXCEPTION`).
    Exception {
        /// Interrupt/exception vector number.
        vector: u8,
        /// How it was raised.
        ex_type: ExceptionType,
    },
    /// A port I/O instruction (`IO_INSTRUCTION`).
    IoInst {
        /// The I/O port.
        port: u16,
        /// True for `OUT`-family, false for `IN`-family.
        write: bool,
        /// The value written (for writes) or a placeholder (for reads).
        value: u64,
    },
    /// A hardware interrupt arrived while in guest mode (`EXTERNAL_INTERRUPT`).
    ExternalInterrupt {
        /// The interrupt vector.
        vector: u8,
    },
    /// An access to the virtual-APIC page (`APIC_ACCESS`).
    ApicAccess {
        /// Byte offset into the APIC page.
        offset: u16,
        /// True for a write.
        write: bool,
        /// The value written, if a write.
        value: u64,
    },
    /// The guest executed `HLT`.
    Hlt,
}

impl VmExitKind {
    /// The coarse exit-reason name, as the paper's Table I spells them.
    pub fn reason_name(&self) -> &'static str {
        match self {
            VmExitKind::CrAccess { .. } => "CR_ACCESS",
            VmExitKind::EptViolation(_) => "EPT_VIOLATION",
            VmExitKind::Wrmsr { .. } => "WRMSR",
            VmExitKind::Exception { .. } => "EXCEPTION",
            VmExitKind::IoInst { .. } => "IO_INST",
            VmExitKind::ExternalInterrupt { .. } => "EXTERNAL_INT",
            VmExitKind::ApicAccess { .. } => "APIC_ACCESS",
            VmExitKind::Hlt => "HLT",
        }
    }

    /// A small dense index for statistics arrays.
    pub(crate) fn stat_slot(&self) -> usize {
        match self {
            VmExitKind::CrAccess { .. } => 0,
            VmExitKind::EptViolation(_) => 1,
            VmExitKind::Wrmsr { .. } => 2,
            VmExitKind::Exception { .. } => 3,
            VmExitKind::IoInst { .. } => 4,
            VmExitKind::ExternalInterrupt { .. } => 5,
            VmExitKind::ApicAccess { .. } => 6,
            VmExitKind::Hlt => 7,
        }
    }

    /// Number of distinct statistic slots.
    pub(crate) const SLOTS: usize = 8;

    /// Names corresponding to each slot, for reports.
    pub const SLOT_NAMES: [&'static str; 8] = [
        "CR_ACCESS",
        "EPT_VIOLATION",
        "WRMSR",
        "EXCEPTION",
        "IO_INST",
        "EXTERNAL_INT",
        "APIC_ACCESS",
        "HLT",
    ];
}

impl fmt::Display for VmExitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmExitKind::CrAccess { cr, value } => write!(f, "CR_ACCESS cr{cr} <- {value:#x}"),
            VmExitKind::EptViolation(v) => {
                write!(f, "EPT_VIOLATION {} at {}", v.access, v.gpa)
            }
            VmExitKind::Wrmsr { msr, value } => write!(f, "WRMSR {msr} <- {value:#x}"),
            VmExitKind::Exception { vector, .. } => write!(f, "EXCEPTION vector {vector:#x}"),
            VmExitKind::IoInst { port, write, .. } => {
                write!(f, "IO_INST port {port:#x} {}", if *write { "out" } else { "in" })
            }
            VmExitKind::ExternalInterrupt { vector } => {
                write!(f, "EXTERNAL_INT vector {vector:#x}")
            }
            VmExitKind::ApicAccess { offset, .. } => write!(f, "APIC_ACCESS offset {offset:#x}"),
            VmExitKind::Hlt => f.write_str("HLT"),
        }
    }
}

/// The guest-state snapshot saved alongside an exit (the VMCS guest area).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VcpuSnapshot {
    /// Guest CR3 at exit time (before the exiting operation takes effect).
    pub cr3: Gpa,
    /// Guest TR base at exit time.
    pub tr_base: Gva,
    /// Guest RSP at exit time.
    pub rsp: Gva,
    /// Guest RIP at exit time.
    pub rip: Gva,
    /// Guest privilege level at exit time.
    pub cpl: Cpl,
    gprs: [u64; 7],
}

impl VcpuSnapshot {
    /// Captures the current state of a vCPU.
    pub fn capture(vcpu: &Vcpu) -> Self {
        let mut gprs = [0u64; 7];
        for (slot, r) in Gpr::ALL.iter().enumerate() {
            gprs[slot] = vcpu.gpr(*r);
        }
        VcpuSnapshot {
            cr3: vcpu.cr3(),
            tr_base: vcpu.tr_base(),
            rsp: vcpu.rsp(),
            rip: vcpu.rip(),
            cpl: vcpu.cpl(),
            gprs,
        }
    }

    /// Reads a general-purpose register from the snapshot.
    pub fn gpr(&self, r: Gpr) -> u64 {
        let slot = Gpr::ALL.iter().position(|g| *g == r).expect("all GPRs present");
        self.gprs[slot]
    }

    /// The raw GPR file, in [`Gpr::ALL`] order. Trace recorders serialize
    /// snapshots through this together with [`VcpuSnapshot::from_parts`].
    pub fn gprs_raw(&self) -> [u64; 7] {
        self.gprs
    }

    /// Rebuilds a snapshot from its serialized parts (`gprs` in
    /// [`Gpr::ALL`] order). The inverse of field access +
    /// [`VcpuSnapshot::gprs_raw`]; replay engines use it to reconstruct the
    /// trusted state captured at record time.
    pub fn from_parts(
        cr3: Gpa,
        tr_base: Gva,
        rsp: Gva,
        rip: Gva,
        cpl: Cpl,
        gprs: [u64; 7],
    ) -> Self {
        VcpuSnapshot { cr3, tr_base, rsp, rip, cpl, gprs }
    }
}

/// A VM Exit event, as delivered to the hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmExit {
    /// Which vCPU exited.
    pub vcpu: VcpuId,
    /// Simulated time of the exit.
    pub time: SimTime,
    /// Reason and qualification.
    pub kind: VmExitKind,
    /// Guest architectural state at the moment of the exit.
    pub state: VcpuSnapshot,
}

/// What the hypervisor wants done after handling an exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExitAction {
    /// Emulate the exiting operation (let its architectural effect happen)
    /// and resume the guest. The common case.
    #[default]
    Resume,
    /// Suppress the exiting operation: resume the guest *without* performing
    /// the operation's architectural effect. Used by enforcement policies.
    Suppress,
}

/// The programmable exit controls (VMCS execution controls + MSR/exception
/// bitmaps).
#[derive(Debug, Clone)]
pub struct ExitControls {
    cr3_load_exiting: bool,
    exception_bitmap: [u64; 4],
    msr_write_exiting: [bool; Msr::ALL.len()],
}

impl Default for ExitControls {
    fn default() -> Self {
        ExitControls {
            cr3_load_exiting: false,
            exception_bitmap: [0; 4],
            msr_write_exiting: [false; Msr::ALL.len()],
        }
    }
}

impl ExitControls {
    /// Creates controls with nothing optional enabled (a plain EPT guest:
    /// CR3 loads, exceptions and MSR writes do not exit).
    pub fn new() -> Self {
        ExitControls::default()
    }

    /// Whether CR3 loads cause `CR_ACCESS` exits.
    pub fn cr3_load_exiting(&self) -> bool {
        self.cr3_load_exiting
    }

    /// Enables or disables CR3-load exiting.
    pub fn set_cr3_load_exiting(&mut self, on: bool) {
        self.cr3_load_exiting = on;
    }

    /// Whether the given exception vector causes `EXCEPTION` exits.
    pub fn exception_exiting(&self, vector: u8) -> bool {
        self.exception_bitmap[(vector / 64) as usize] & (1u64 << (vector % 64)) != 0
    }

    /// Selects whether `vector` causes `EXCEPTION` exits.
    pub fn set_exception_exiting(&mut self, vector: u8, on: bool) {
        let (word, bit) = ((vector / 64) as usize, vector % 64);
        if on {
            self.exception_bitmap[word] |= 1u64 << bit;
        } else {
            self.exception_bitmap[word] &= !(1u64 << bit);
        }
    }

    /// Whether writes to `msr` cause `WRMSR` exits.
    pub fn msr_write_exiting(&self, msr: Msr) -> bool {
        self.msr_write_exiting[msr_slot(msr)]
    }

    /// Selects whether writes to `msr` cause `WRMSR` exits.
    pub fn set_msr_write_exiting(&mut self, msr: Msr, on: bool) {
        self.msr_write_exiting[msr_slot(msr)] = on;
    }

    /// Serializes the programmed controls.
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        w.boolean(self.cr3_load_exiting);
        for word in self.exception_bitmap {
            w.varint(word);
        }
        for on in self.msr_write_exiting {
            w.boolean(on);
        }
    }

    /// Restores state saved by [`ExitControls::save`].
    pub(crate) fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cr3_load_exiting = r.boolean()?;
        for word in &mut self.exception_bitmap {
            *word = r.varint()?;
        }
        for on in &mut self.msr_write_exiting {
            *on = r.boolean()?;
        }
        Ok(())
    }
}

fn msr_slot(msr: Msr) -> usize {
    Msr::ALL.iter().position(|m| *m == msr).expect("all MSRs present")
}

/// Running statistics over VM Exits: counts per reason and the cumulative
/// world-switch overhead charged to the guest. The Fig. 7 performance
/// experiments read these.
#[derive(Debug, Clone, Default)]
pub struct ExitStats {
    counts: [u64; VmExitKind::SLOTS],
    overhead: Duration,
}

impl ExitStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        ExitStats::default()
    }

    pub(crate) fn record(&mut self, kind: &VmExitKind, cost: Duration) {
        self.counts[kind.stat_slot()] += 1;
        self.overhead += cost;
    }

    /// Number of exits whose reason matches `name` (one of
    /// [`VmExitKind::SLOT_NAMES`]).
    pub fn count_by_name(&self, name: &str) -> u64 {
        VmExitKind::SLOT_NAMES.iter().position(|n| *n == name).map(|i| self.counts[i]).unwrap_or(0)
    }

    /// Total number of exits of all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Cumulative world-switch overhead charged to guest time.
    pub fn overhead(&self) -> Duration {
        self.overhead
    }

    /// Serializes the per-reason counters and cumulative overhead.
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        for c in self.counts {
            w.varint(c);
        }
        w.varint(self.overhead.as_nanos());
    }

    /// Restores state saved by [`ExitStats::save`].
    pub(crate) fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for c in &mut self.counts {
            *c = r.varint()?;
        }
        self.overhead = Duration::from_nanos(r.varint()?);
        Ok(())
    }

    /// Iterates `(reason name, count)` pairs for non-zero reasons.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        VmExitKind::SLOT_NAMES
            .iter()
            .zip(self.counts.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(n, &c)| (*n, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ept::AccessKind;

    #[test]
    fn controls_default_off() {
        let c = ExitControls::new();
        assert!(!c.cr3_load_exiting());
        assert!(!c.exception_exiting(0x80));
        assert!(!c.msr_write_exiting(Msr::SysenterEip));
    }

    #[test]
    fn exception_bitmap_bits_are_independent() {
        let mut c = ExitControls::new();
        c.set_exception_exiting(0x80, true);
        c.set_exception_exiting(0x2e, true);
        assert!(c.exception_exiting(0x80));
        assert!(c.exception_exiting(0x2e));
        assert!(!c.exception_exiting(0x81));
        c.set_exception_exiting(0x80, false);
        assert!(!c.exception_exiting(0x80));
        assert!(c.exception_exiting(0x2e));
    }

    #[test]
    fn exception_bitmap_covers_all_vectors() {
        let mut c = ExitControls::new();
        c.set_exception_exiting(255, true);
        c.set_exception_exiting(0, true);
        assert!(c.exception_exiting(255));
        assert!(c.exception_exiting(0));
        assert!(!c.exception_exiting(128));
    }

    #[test]
    fn msr_bitmap_per_register() {
        let mut c = ExitControls::new();
        c.set_msr_write_exiting(Msr::SysenterEip, true);
        assert!(c.msr_write_exiting(Msr::SysenterEip));
        assert!(!c.msr_write_exiting(Msr::SysenterEsp));
    }

    #[test]
    fn stats_record_and_query() {
        let mut s = ExitStats::new();
        s.record(&VmExitKind::Hlt, Duration::from_nanos(100));
        s.record(&VmExitKind::CrAccess { cr: 3, value: 0x1000 }, Duration::from_nanos(200));
        s.record(&VmExitKind::CrAccess { cr: 3, value: 0x2000 }, Duration::from_nanos(200));
        assert_eq!(s.count_by_name("CR_ACCESS"), 2);
        assert_eq!(s.count_by_name("HLT"), 1);
        assert_eq!(s.count_by_name("WRMSR"), 0);
        assert_eq!(s.total(), 3);
        assert_eq!(s.overhead().as_nanos(), 500);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![("CR_ACCESS", 2), ("HLT", 1)]);
    }

    #[test]
    fn reason_names_match_table1_vocabulary() {
        assert_eq!(VmExitKind::CrAccess { cr: 3, value: 0 }.reason_name(), "CR_ACCESS");
        assert_eq!(
            VmExitKind::EptViolation(EptViolation {
                gpa: Gpa::new(0),
                gva: None,
                access: AccessKind::Write,
                value: None,
            })
            .reason_name(),
            "EPT_VIOLATION"
        );
        assert_eq!(
            VmExitKind::Exception { vector: 0x80, ex_type: ExceptionType::SoftwareInterrupt }
                .reason_name(),
            "EXCEPTION"
        );
    }

    #[test]
    fn snapshot_captures_gprs() {
        let mut v = Vcpu::new(VcpuId(0));
        v.set_gpr(Gpr::Rax, 5);
        v.set_gpr(Gpr::Rbx, 6);
        let snap = VcpuSnapshot::capture(&v);
        assert_eq!(snap.gpr(Gpr::Rax), 5);
        assert_eq!(snap.gpr(Gpr::Rbx), 6);
        assert_eq!(snap.cpl, Cpl::Kernel);
    }
}
