//! Virtual CPUs: the architectural register state the hypervisor can trust.
//!
//! On VM Exit, VT-x saves the guest's register state into the VMCS; the
//! hypervisor reads fields such as the guest CR3, TR base and RSP from there.
//! The paper's notation `vcpu.CR3` refers to exactly this host-side view. In
//! the simulator the [`Vcpu`] struct *is* that view: guest code can only
//! modify it through the mediated operations of [`crate::cpu::CpuCtx`], so
//! its contents are architectural ground truth — the "root of trust" of
//! HyperTap's monitoring stack.

use crate::clock::SimTime;
use crate::mem::{Gpa, Gva};
use crate::snap::{SnapError, SnapReader, SnapWriter};
use std::fmt;

/// Index of a virtual CPU within its VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VcpuId(pub usize);

impl fmt::Display for VcpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vcpu{}", self.0)
    }
}

/// General-purpose registers (the subset system calls use for arguments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gpr {
    /// Accumulator — carries the system-call number by convention.
    Rax,
    /// First syscall argument.
    Rbx,
    /// Second syscall argument.
    Rcx,
    /// Third syscall argument.
    Rdx,
    /// Fourth syscall argument.
    Rsi,
    /// Fifth syscall argument.
    Rdi,
    /// Frame/base register.
    Rbp,
}

impl Gpr {
    /// All general-purpose registers, in definition order.
    pub const ALL: [Gpr; 7] =
        [Gpr::Rax, Gpr::Rbx, Gpr::Rcx, Gpr::Rdx, Gpr::Rsi, Gpr::Rdi, Gpr::Rbp];

    fn index(self) -> usize {
        match self {
            Gpr::Rax => 0,
            Gpr::Rbx => 1,
            Gpr::Rcx => 2,
            Gpr::Rdx => 3,
            Gpr::Rsi => 4,
            Gpr::Rdi => 5,
            Gpr::Rbp => 6,
        }
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Gpr::Rax => "rax",
            Gpr::Rbx => "rbx",
            Gpr::Rcx => "rcx",
            Gpr::Rdx => "rdx",
            Gpr::Rsi => "rsi",
            Gpr::Rdi => "rdi",
            Gpr::Rbp => "rbp",
        })
    }
}

/// Model-Specific Registers relevant to the monitored invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Msr {
    /// `IA32_SYSENTER_CS` — code segment loaded by `SYSENTER`.
    SysenterCs,
    /// `IA32_SYSENTER_ESP` — kernel stack pointer loaded by `SYSENTER`.
    SysenterEsp,
    /// `IA32_SYSENTER_EIP` — the fast-system-call entry point. Writes to
    /// this MSR are what the paper's Fig. 3E interception algorithm traps.
    SysenterEip,
    /// `IA32_EFER` — mode control (modelled for completeness).
    Efer,
}

impl Msr {
    /// All modelled MSRs.
    pub const ALL: [Msr; 4] = [Msr::SysenterCs, Msr::SysenterEsp, Msr::SysenterEip, Msr::Efer];

    /// The architectural MSR index (as used by `RDMSR`/`WRMSR`).
    pub const fn index(self) -> u32 {
        match self {
            Msr::SysenterCs => 0x174,
            Msr::SysenterEsp => 0x175,
            Msr::SysenterEip => 0x176,
            Msr::Efer => 0xC000_0080,
        }
    }

    fn slot(self) -> usize {
        match self {
            Msr::SysenterCs => 0,
            Msr::SysenterEsp => 1,
            Msr::SysenterEip => 2,
            Msr::Efer => 3,
        }
    }
}

impl fmt::Display for Msr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Msr::SysenterCs => "IA32_SYSENTER_CS",
            Msr::SysenterEsp => "IA32_SYSENTER_ESP",
            Msr::SysenterEip => "IA32_SYSENTER_EIP",
            Msr::Efer => "IA32_EFER",
        })
    }
}

/// Current privilege level of a vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Cpl {
    /// Ring 0 — kernel mode (the boot state).
    #[default]
    Kernel,
    /// Ring 3 — user mode.
    User,
}

impl fmt::Display for Cpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cpl::Kernel => "ring0",
            Cpl::User => "ring3",
        })
    }
}

/// One virtual CPU's architectural state plus its local clock.
#[derive(Debug, Clone)]
pub struct Vcpu {
    id: VcpuId,
    /// Local simulated clock of this vCPU.
    pub clock: SimTime,
    cr3: Gpa,
    tr_base: Gva,
    rsp: Gva,
    rip: Gva,
    cpl: Cpl,
    gprs: [u64; 7],
    msrs: [u64; 4],
    /// Interrupts-enabled flag (IF in RFLAGS).
    pub interrupts_enabled: bool,
    /// Pending external interrupt vectors, in arrival order.
    pub(crate) pending_irqs: Vec<u8>,
    /// True while the vCPU executes HLT waiting for an interrupt.
    pub(crate) halted: bool,
}

impl Vcpu {
    /// Creates a vCPU in its power-on state.
    pub fn new(id: VcpuId) -> Self {
        Vcpu {
            id,
            clock: SimTime::ZERO,
            cr3: Gpa::NULL,
            tr_base: Gva::new(0),
            rsp: Gva::new(0),
            rip: Gva::new(0),
            cpl: Cpl::Kernel,
            gprs: [0; 7],
            msrs: [0; 4],
            interrupts_enabled: true,
            pending_irqs: Vec::new(),
            halted: false,
        }
    }

    /// This vCPU's index.
    pub fn id(&self) -> VcpuId {
        self.id
    }

    /// Guest CR3: the Page-Directory Base Address of the running process.
    /// This is the invariant behind the paper's process tracking (§VI-A1).
    pub fn cr3(&self) -> Gpa {
        self.cr3
    }

    /// Host-side write of guest CR3 (a VMCS guest-state write).
    pub fn set_cr3(&mut self, value: Gpa) {
        self.cr3 = value;
    }

    /// Guest TR base: the virtual address of the running task's TSS.
    /// This is the invariant behind thread tracking (§VI-A2).
    pub fn tr_base(&self) -> Gva {
        self.tr_base
    }

    /// Host-side write of guest TR base (a VMCS guest-state write).
    pub fn set_tr_base(&mut self, value: Gva) {
        self.tr_base = value;
    }

    /// Guest stack pointer.
    pub fn rsp(&self) -> Gva {
        self.rsp
    }

    /// Host-side write of the guest stack pointer.
    pub fn set_rsp(&mut self, value: Gva) {
        self.rsp = value;
    }

    /// Guest instruction pointer (coarse: the simulator tracks it at the
    /// granularity of mediated operations, enough for `/proc` side channels).
    pub fn rip(&self) -> Gva {
        self.rip
    }

    /// Host-side write of the guest instruction pointer.
    pub fn set_rip(&mut self, value: Gva) {
        self.rip = value;
    }

    /// Current privilege level.
    pub fn cpl(&self) -> Cpl {
        self.cpl
    }

    /// Host-side write of the guest privilege level.
    pub fn set_cpl(&mut self, cpl: Cpl) {
        self.cpl = cpl;
    }

    /// Reads a general-purpose register.
    pub fn gpr(&self, r: Gpr) -> u64 {
        self.gprs[r.index()]
    }

    /// Writes a general-purpose register. Public because register writes are
    /// not privileged and cause no exits; guest convenience.
    pub fn set_gpr(&mut self, r: Gpr, value: u64) {
        self.gprs[r.index()] = value;
    }

    /// Reads an MSR (the host side may do this freely; the guest reads via
    /// `RDMSR`, which this simulator does not trap).
    pub fn msr(&self, m: Msr) -> u64 {
        self.msrs[m.slot()]
    }

    /// Host-side write of an MSR (a VMCS guest-state write).
    pub fn set_msr(&mut self, m: Msr, value: u64) {
        self.msrs[m.slot()] = value;
    }

    /// Whether this vCPU is halted waiting for an interrupt.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Whether an external interrupt is queued for delivery.
    pub fn has_pending_irq(&self) -> bool {
        !self.pending_irqs.is_empty()
    }

    /// Serializes the full architectural state of this vCPU.
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        w.varint(self.id.0 as u64);
        w.varint(self.clock.as_nanos());
        w.varint(self.cr3.value());
        w.varint(self.tr_base.value());
        w.varint(self.rsp.value());
        w.varint(self.rip.value());
        w.byte(match self.cpl {
            Cpl::Kernel => 0,
            Cpl::User => 1,
        });
        for g in self.gprs {
            w.varint(g);
        }
        for m in self.msrs {
            w.varint(m);
        }
        w.boolean(self.interrupts_enabled);
        w.varint(self.pending_irqs.len() as u64);
        for v in &self.pending_irqs {
            w.byte(*v);
        }
        w.boolean(self.halted);
    }

    /// Restores state saved by [`Vcpu::save`]. The serialized vCPU index
    /// must match this vCPU's.
    pub(crate) fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let off = r.offset();
        let id = r.varint()? as usize;
        if id != self.id.0 {
            return Err(SnapError::BadValue { offset: off, what: "vcpu index" });
        }
        self.clock = SimTime::from_nanos(r.varint()?);
        self.cr3 = Gpa::new(r.varint()?);
        self.tr_base = Gva::new(r.varint()?);
        self.rsp = Gva::new(r.varint()?);
        self.rip = Gva::new(r.varint()?);
        let off = r.offset();
        self.cpl = match r.byte()? {
            0 => Cpl::Kernel,
            1 => Cpl::User,
            _ => return Err(SnapError::BadValue { offset: off, what: "cpl" }),
        };
        for g in &mut self.gprs {
            *g = r.varint()?;
        }
        for m in &mut self.msrs {
            *m = r.varint()?;
        }
        self.interrupts_enabled = r.boolean()?;
        let n = r.count(4096, "pending irq count")?;
        self.pending_irqs.clear();
        for _ in 0..n {
            self.pending_irqs.push(r.byte()?);
        }
        self.halted = r.boolean()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_on_state() {
        let v = Vcpu::new(VcpuId(0));
        assert_eq!(v.cpl(), Cpl::Kernel);
        assert_eq!(v.cr3(), Gpa::NULL);
        assert!(v.interrupts_enabled);
        assert!(!v.is_halted());
        assert_eq!(v.clock, SimTime::ZERO);
        for r in Gpr::ALL {
            assert_eq!(v.gpr(r), 0);
        }
        for m in Msr::ALL {
            assert_eq!(v.msr(m), 0);
        }
    }

    #[test]
    fn gpr_slots_are_independent() {
        let mut v = Vcpu::new(VcpuId(1));
        for (i, r) in Gpr::ALL.iter().enumerate() {
            v.set_gpr(*r, i as u64 + 100);
        }
        for (i, r) in Gpr::ALL.iter().enumerate() {
            assert_eq!(v.gpr(*r), i as u64 + 100);
        }
    }

    #[test]
    fn msr_indices_match_architecture() {
        assert_eq!(Msr::SysenterCs.index(), 0x174);
        assert_eq!(Msr::SysenterEsp.index(), 0x175);
        assert_eq!(Msr::SysenterEip.index(), 0x176);
    }

    #[test]
    fn display_impls() {
        assert_eq!(VcpuId(3).to_string(), "vcpu3");
        assert_eq!(Gpr::Rax.to_string(), "rax");
        assert_eq!(Msr::SysenterEip.to_string(), "IA32_SYSENTER_EIP");
        assert_eq!(Cpl::User.to_string(), "ring3");
    }
}
