//! Emulated I/O devices and the bus that routes accesses to them.
//!
//! The hypervisor multiplexes I/O for its guests: port I/O instructions exit
//! unconditionally (`IO_INST`), and memory-mapped I/O regions are left
//! unbacked in EPT so that accesses exit as `EPT_VIOLATION`s. After the exit
//! is delivered (and HyperTap's Event Forwarder has logged it), the machine
//! routes the access to the [`Device`] registered for that port or region.

use crate::mem::Gpa;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use std::any::Any;
use std::fmt;
use std::ops::Range;

/// An emulated device.
///
/// Implementations model only what the monitoring experiments need: byte
/// counters, request queues, interrupt raising. A device that does not
/// support a given access style may rely on the default implementations
/// (reads return the floating-bus value, writes are ignored).
pub trait Device: fmt::Debug {
    /// Human-readable device name (for reports).
    fn name(&self) -> &str;

    /// Handles an `IN` from one of the device's ports.
    fn pio_read(&mut self, _port: u16) -> u64 {
        0xFF
    }

    /// Handles an `OUT` to one of the device's ports.
    fn pio_write(&mut self, _port: u16, _value: u64) {}

    /// Handles a read from the device's MMIO region.
    fn mmio_read(&mut self, _gpa: Gpa) -> u64 {
        0xFF
    }

    /// Handles a write to the device's MMIO region.
    fn mmio_write(&mut self, _gpa: Gpa, _value: u64) {}

    /// Downcasting support so harnesses can inspect device state.
    fn as_any(&mut self) -> &mut dyn Any;

    /// Serializes this device's mutable state for a machine snapshot. The
    /// default (an empty blob) suits stateless devices.
    fn snapshot_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state produced by [`Device::snapshot_state`]. The default
    /// accepts only the empty blob the default `snapshot_state` produces.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(SnapError::Unsupported { what: format!("device '{}' state", self.name()) })
        }
    }
}

/// Identifier of a registered device within an [`IoBus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(usize);

/// Routes port and MMIO accesses to registered devices.
#[derive(Debug, Default)]
pub struct IoBus {
    devices: Vec<Box<dyn Device>>,
    pio_map: Vec<(Range<u16>, DeviceId)>,
    mmio_map: Vec<(Range<u64>, DeviceId)>,
}

impl IoBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        IoBus::default()
    }

    /// Registers a device, returning its id for mapping calls.
    pub fn register(&mut self, device: Box<dyn Device>) -> DeviceId {
        let id = DeviceId(self.devices.len());
        self.devices.push(device);
        id
    }

    /// Maps a half-open port range to a device.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing port mapping.
    pub fn map_pio(&mut self, ports: Range<u16>, id: DeviceId) {
        assert!(
            !self.pio_map.iter().any(|(r, _)| r.start < ports.end && ports.start < r.end),
            "overlapping port mapping {ports:?}"
        );
        self.pio_map.push((ports, id));
    }

    /// Maps a half-open guest-physical range to a device's MMIO window.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing MMIO mapping.
    pub fn map_mmio(&mut self, range: Range<u64>, id: DeviceId) {
        assert!(
            !self.mmio_map.iter().any(|(r, _)| r.start < range.end && range.start < r.end),
            "overlapping MMIO mapping {range:?}"
        );
        self.mmio_map.push((range, id));
    }

    /// The device mapped at a port, if any.
    pub fn pio_device(&mut self, port: u16) -> Option<&mut dyn Device> {
        let id = self.pio_map.iter().find(|(r, _)| r.contains(&port)).map(|(_, id)| *id)?;
        Some(self.devices[id.0].as_mut())
    }

    /// Whether a guest-physical address falls in any MMIO window.
    #[inline]
    pub fn is_mmio(&self, gpa: Gpa) -> bool {
        self.mmio_map.iter().any(|(r, _)| r.contains(&gpa.value()))
    }

    /// The device mapped at a guest-physical address, if any.
    pub fn mmio_device(&mut self, gpa: Gpa) -> Option<&mut dyn Device> {
        let id = self.mmio_map.iter().find(|(r, _)| r.contains(&gpa.value())).map(|(_, id)| *id)?;
        Some(self.devices[id.0].as_mut())
    }

    /// Mutable access to a registered device by id (for harness inspection).
    pub fn device_mut(&mut self, id: DeviceId) -> &mut dyn Device {
        self.devices[id.0].as_mut()
    }

    /// Number of registered devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Serializes every registered device's state, in registration order.
    /// The port/MMIO maps are *not* serialized: a restore target re-registers
    /// the same devices in the same order (device topology is part of the VM
    /// recipe), then this blob refills their mutable state.
    pub fn save_devices(&self, w: &mut SnapWriter) {
        w.varint(self.devices.len() as u64);
        for dev in &self.devices {
            w.string(dev.name());
            w.bytes(&dev.snapshot_state());
        }
    }

    /// Restores device state saved by [`IoBus::save_devices`]. The bus must
    /// already hold the same devices in the same order.
    pub fn load_devices(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let off = r.offset();
        let n = r.varint()? as usize;
        if n != self.devices.len() {
            return Err(SnapError::BadValue { offset: off, what: "device count" });
        }
        for dev in &mut self.devices {
            let off = r.offset();
            let name = r.string()?;
            if name != dev.name() {
                return Err(SnapError::BadValue { offset: off, what: "device name" });
            }
            let bytes = r.bytes()?;
            dev.restore_state(bytes)?;
        }
        Ok(())
    }
}

/// A trivial device that remembers the last value written and serves it back;
/// useful for tests and as a template for real device models.
#[derive(Debug, Default)]
pub struct LatchDevice {
    /// The most recently written value.
    pub latch: u64,
    /// Total number of accesses of any kind.
    pub accesses: u64,
}

impl Device for LatchDevice {
    fn name(&self) -> &str {
        "latch"
    }

    fn pio_read(&mut self, _port: u16) -> u64 {
        self.accesses += 1;
        self.latch
    }

    fn pio_write(&mut self, _port: u16, value: u64) {
        self.accesses += 1;
        self.latch = value;
    }

    fn mmio_read(&mut self, _gpa: Gpa) -> u64 {
        self.accesses += 1;
        self.latch
    }

    fn mmio_write(&mut self, _gpa: Gpa, value: u64) {
        self.accesses += 1;
        self.latch = value;
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_pio_by_port_range() {
        let mut bus = IoBus::new();
        let id = bus.register(Box::<LatchDevice>::default());
        bus.map_pio(0x60..0x64, id);
        bus.pio_device(0x61).unwrap().pio_write(0x61, 42);
        assert_eq!(bus.pio_device(0x63).unwrap().pio_read(0x63), 42);
        assert!(bus.pio_device(0x64).is_none(), "end of range is exclusive");
    }

    #[test]
    fn routes_mmio_by_gpa_range() {
        let mut bus = IoBus::new();
        let id = bus.register(Box::<LatchDevice>::default());
        bus.map_mmio(0xfee0_0000..0xfee0_1000, id);
        assert!(bus.is_mmio(Gpa::new(0xfee0_0800)));
        assert!(!bus.is_mmio(Gpa::new(0xfee0_1000)));
        bus.mmio_device(Gpa::new(0xfee0_0800)).unwrap().mmio_write(Gpa::new(0xfee0_0800), 7);
        assert_eq!(
            bus.mmio_device(Gpa::new(0xfee0_0000)).unwrap().mmio_read(Gpa::new(0xfee0_0000)),
            7
        );
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_pio_rejected() {
        let mut bus = IoBus::new();
        let a = bus.register(Box::<LatchDevice>::default());
        let b = bus.register(Box::<LatchDevice>::default());
        bus.map_pio(0x10..0x20, a);
        bus.map_pio(0x1f..0x30, b);
    }

    #[test]
    fn downcast_via_as_any() {
        let mut bus = IoBus::new();
        let id = bus.register(Box::<LatchDevice>::default());
        bus.map_pio(0..1, id);
        bus.pio_device(0).unwrap().pio_write(0, 5);
        let dev = bus.device_mut(id).as_any().downcast_mut::<LatchDevice>().unwrap();
        assert_eq!(dev.latch, 5);
        assert_eq!(dev.accesses, 1);
    }
}
