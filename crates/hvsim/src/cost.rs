//! The simulated-time cost model.
//!
//! The paper's performance evaluation (Fig. 7) measures how much guest
//! slowdown each HyperTap auditor induces. In this reproduction that
//! slowdown has to come from somewhere: every mediated guest operation and
//! every VM Exit advances the executing vCPU's clock by a configurable cost.
//! The defaults below are calibrated to mid-2010s hardware figures (a VM
//! Exit/Entry round trip of roughly 1.3 µs, device-emulating I/O exits a few
//! µs) so that *relative* overheads land in the regimes the paper reports;
//! absolute numbers are explicitly not the goal.

use crate::clock::Duration;
use crate::exit::VmExitKind;

/// Per-operation and per-exit simulated-time costs.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Base cost of any VM Exit + VM Entry world switch.
    pub exit_base: Duration,
    /// Extra handling cost for an EPT violation (page-walk + emulation).
    pub ept_violation_extra: Duration,
    /// Extra handling cost for a CR access exit.
    pub cr_access_extra: Duration,
    /// Extra handling cost for a WRMSR exit.
    pub wrmsr_extra: Duration,
    /// Extra handling cost for an exception exit.
    pub exception_extra: Duration,
    /// Extra handling cost for an I/O-instruction exit (device emulation).
    pub io_extra: Duration,
    /// Extra handling cost for an external-interrupt exit.
    pub external_int_extra: Duration,
    /// Extra handling cost for an APIC-access exit.
    pub apic_extra: Duration,
    /// Extra handling cost for a HLT exit.
    pub hlt_extra: Duration,
    /// Base cost of a guest memory access (one translated load/store).
    pub mem_op: Duration,
    /// Additional per-byte cost of guest memory accesses.
    pub mem_per_byte_ns: u64,
    /// Cost of one abstract compute unit (`CpuCtx::compute`).
    pub compute_unit: Duration,
    /// Cost of a non-exiting privileged register operation.
    pub reg_op: Duration,
}

impl CostModel {
    /// The calibrated default model (see module docs).
    pub fn calibrated() -> Self {
        CostModel {
            exit_base: Duration::from_nanos(1_300),
            ept_violation_extra: Duration::from_nanos(400),
            cr_access_extra: Duration::from_nanos(250),
            wrmsr_extra: Duration::from_nanos(250),
            exception_extra: Duration::from_nanos(400),
            io_extra: Duration::from_nanos(2_200),
            external_int_extra: Duration::from_nanos(600),
            apic_extra: Duration::from_nanos(400),
            hlt_extra: Duration::from_nanos(200),
            mem_op: Duration::from_nanos(30),
            mem_per_byte_ns: 0,
            compute_unit: Duration::from_nanos(1),
            reg_op: Duration::from_nanos(20),
        }
    }

    /// A free model: every cost is zero. Useful for logic-only tests where
    /// simulated time is irrelevant.
    pub fn free() -> Self {
        CostModel {
            exit_base: Duration::ZERO,
            ept_violation_extra: Duration::ZERO,
            cr_access_extra: Duration::ZERO,
            wrmsr_extra: Duration::ZERO,
            exception_extra: Duration::ZERO,
            io_extra: Duration::ZERO,
            external_int_extra: Duration::ZERO,
            apic_extra: Duration::ZERO,
            hlt_extra: Duration::ZERO,
            mem_op: Duration::ZERO,
            mem_per_byte_ns: 0,
            compute_unit: Duration::ZERO,
            reg_op: Duration::ZERO,
        }
    }

    /// Total cost charged for one VM Exit of the given kind.
    pub fn exit_cost(&self, kind: &VmExitKind) -> Duration {
        let extra = match kind {
            VmExitKind::CrAccess { .. } => self.cr_access_extra,
            VmExitKind::EptViolation(_) => self.ept_violation_extra,
            VmExitKind::Wrmsr { .. } => self.wrmsr_extra,
            VmExitKind::Exception { .. } => self.exception_extra,
            VmExitKind::IoInst { .. } => self.io_extra,
            VmExitKind::ExternalInterrupt { .. } => self.external_int_extra,
            VmExitKind::ApicAccess { .. } => self.apic_extra,
            VmExitKind::Hlt => self.hlt_extra,
        };
        self.exit_base + extra
    }

    /// Cost of a guest memory access of `bytes` bytes.
    #[inline]
    pub fn mem_cost(&self, bytes: u64) -> Duration {
        self.mem_op + Duration::from_nanos(self.mem_per_byte_ns * bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_cost_includes_base_and_extra() {
        let m = CostModel::calibrated();
        let c = m.exit_cost(&VmExitKind::Hlt);
        assert_eq!(c, m.exit_base + m.hlt_extra);
        let io = m.exit_cost(&VmExitKind::IoInst { port: 0, write: true, value: 0 });
        assert!(io > c, "I/O exits cost more than HLT exits");
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(m.exit_cost(&VmExitKind::Hlt), Duration::ZERO);
        assert_eq!(m.mem_cost(4096), Duration::ZERO);
    }

    #[test]
    fn mem_cost_scales_with_bytes() {
        let mut m = CostModel::calibrated();
        m.mem_per_byte_ns = 2;
        assert_eq!(m.mem_cost(10), m.mem_op + Duration::from_nanos(20));
    }
}
