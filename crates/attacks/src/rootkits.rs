//! The real-world rootkits of the paper's Table II, modelled by hiding
//! technique.
//!
//! HRKD's claim is *technique independence*: because the trusted view is
//! assembled from CR3 loads and `TSS.RSP0` writes, it does not matter
//! whether a rootkit unlinks kernel objects (DKOM), hijacks the
//! enumeration syscalls, or patches kernel memory through `/dev/kmem` —
//! the hidden process still has to be scheduled to run, and scheduling is
//! architecturally visible. Each entry below reproduces the corruption its
//! real counterpart performs.

use hypertap_guestos::module::{HideMechanism, ModuleSpec};

/// All ten rootkits of Table II, in the paper's order.
pub fn all_rootkits() -> Vec<ModuleSpec> {
    use HideMechanism::*;
    vec![
        ModuleSpec::new("FU", "Win XP, Vista", vec![Dkom]),
        ModuleSpec::new("HideProc", "Win XP, Vista", vec![Dkom]),
        ModuleSpec::new("AFX", "Win XP, Vista", vec![SyscallHijack]),
        ModuleSpec::new("HideToolz", "Win XP, Vista, 7", vec![SyscallHijack]),
        ModuleSpec::new("HE4Hook", "Win XP", vec![SyscallHijack]),
        ModuleSpec::new("BH-Rootkit-NT", "Win XP, Vista", vec![SyscallHijack]),
        ModuleSpec::new("Ivyl's Rootkit", "Linux >2.6.29", vec![SyscallHijack]),
        ModuleSpec::new("Enyelkm 1.2", "Linux 2.6", vec![KmemPatch, SyscallHijack]),
        ModuleSpec::new("SucKIT", "Linux 2.6", vec![KmemPatch, Dkom]),
        ModuleSpec::new("PhalanX", "Linux 2.6", vec![KmemPatch, Dkom]),
    ]
}

/// Looks up a Table II rootkit by name.
pub fn rootkit_by_name(name: &str) -> Option<ModuleSpec> {
    all_rootkits().into_iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_rootkits_as_in_table2() {
        let r = all_rootkits();
        assert_eq!(r.len(), 10);
        // Spot-check techniques against the paper's table.
        assert_eq!(rootkit_by_name("FU").unwrap().mechanisms, vec![HideMechanism::Dkom]);
        assert!(rootkit_by_name("SucKIT").unwrap().mechanisms.contains(&HideMechanism::KmemPatch));
        assert!(rootkit_by_name("AFX").unwrap().mechanisms.contains(&HideMechanism::SyscallHijack));
        assert!(rootkit_by_name("nonexistent").is_none());
    }

    #[test]
    fn oses_cover_windows_and_linux() {
        let r = all_rootkits();
        assert!(r.iter().any(|s| s.target_os.contains("Win")));
        assert!(r.iter().any(|s| s.target_os.contains("Linux")));
    }
}
