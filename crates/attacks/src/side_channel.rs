//! The `/proc` side channel: predicting a passive monitor's schedule
//! (paper §VIII-C1, Table III).
//!
//! `/proc/PID/stat` exposes any process's scheduler state and instruction
//! pointer. An unprivileged attacker polls the monitor's entry and records
//! the sleep→run transitions — each one is the start of a check. The gaps
//! between consecutive wake-ups *are* the monitoring interval, measured to
//! sub-millisecond precision; a transient attack launched right after a
//! wake-up then has almost the whole interval to finish undetected.

use hypertap_guestos::kernel::ProcStat;
use hypertap_guestos::program::{UserOp, UserProgram, UserView};
use hypertap_guestos::syscalls::Sysno;

/// Mailbox tag emitted at each observed wake-up (detail = observation time
/// in nanoseconds).
pub const WAKE_TAG: &str = "ninja-wake";

/// The prober: polls the target's `/proc` stat and reports wake-ups.
#[derive(Debug)]
pub struct SideChannelProber {
    target_pid: u64,
    poll_gap_ns: u64,
    max_wakes: u64,
    wakes_seen: u64,
    last_state: Option<u64>,
    pending_emit: Option<u64>,
    gap_due: bool,
}

impl SideChannelProber {
    /// Probes `target_pid` every `poll_gap_ns`, reporting up to `max_wakes`
    /// wake-ups before exiting.
    pub fn new(target_pid: u64, poll_gap_ns: u64, max_wakes: u64) -> Self {
        SideChannelProber {
            target_pid,
            poll_gap_ns,
            max_wakes,
            wakes_seen: 0,
            last_state: None,
            pending_emit: None,
            gap_due: false,
        }
    }
}

impl UserProgram for SideChannelProber {
    fn next_op(&mut self, view: &UserView<'_>) -> UserOp {
        if let Some(t) = self.pending_emit.take() {
            return UserOp::Emit(WAKE_TAG.into(), format!("{t}"));
        }
        if self.wakes_seen >= self.max_wakes {
            return UserOp::Exit(0);
        }
        // Interpret the previous stat (if the last op was a stat).
        if let Some(stat) = ProcStat::unpack(view.last_ret) {
            let state = stat.state;
            if self.last_state == Some(1) && state == 0 {
                // Sleep -> Run: the monitor just woke for a check.
                self.wakes_seen += 1;
                self.last_state = Some(state);
                self.pending_emit = None;
                // Emit first, then resume polling.
                return UserOp::Emit(WAKE_TAG.into(), format!("{}", view.now.as_nanos()));
            }
            self.last_state = Some(state);
        }
        if self.poll_gap_ns > 0 && self.gap_due {
            // Busy-wait between polls (compute, not sleep: keeps the
            // prober's own wake-up latency negligible).
            self.gap_due = false;
            return UserOp::Compute(self.poll_gap_ns);
        }
        self.gap_due = true;
        UserOp::sys(Sysno::ReadProcStat, &[self.target_pid])
    }
}

/// Interval statistics recovered from observed wake-up times.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalEstimate {
    /// Number of gaps measured.
    pub samples: usize,
    /// Mean gap in seconds.
    pub mean_s: f64,
    /// Minimum gap in seconds.
    pub min_s: f64,
    /// Maximum gap in seconds.
    pub max_s: f64,
    /// Standard deviation in seconds.
    pub sd_s: f64,
}

impl IntervalEstimate {
    /// Computes the estimate from wake-up timestamps (nanoseconds).
    /// Returns `None` with fewer than two observations.
    pub fn from_wakes(wakes_ns: &[u64]) -> Option<IntervalEstimate> {
        if wakes_ns.len() < 2 {
            return None;
        }
        let gaps: Vec<f64> = wakes_ns.windows(2).map(|w| (w[1] - w[0]) as f64 / 1e9).collect();
        let n = gaps.len() as f64;
        let mean = gaps.iter().sum::<f64>() / n;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
        Some(IntervalEstimate {
            samples: gaps.len(),
            mean_s: mean,
            min_s: gaps.iter().copied().fold(f64::INFINITY, f64::min),
            max_s: gaps.iter().copied().fold(0.0, f64::max),
            sd_s: var.sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypertap_hvsim::clock::SimTime;

    fn view_at(ret: u64, now_ns: u64) -> UserView<'static> {
        UserView {
            last_ret: ret,
            now: SimTime::from_nanos(now_ns),
            pid: 50,
            uid: 1000,
            euid: 1000,
            procs: &[],
        }
    }

    #[test]
    fn detects_sleep_to_run_transitions() {
        use hypertap_guestos::kernel::pack_proc_stat;
        let mut p = SideChannelProber::new(9, 0, 2);
        // First op: stat.
        assert!(matches!(p.next_op(&view_at(0, 0)), UserOp::Syscall(Sysno::ReadProcStat, _)));
        // Target sleeping.
        let sleeping = pack_proc_stat(0, 0, 1, 0);
        assert!(matches!(p.next_op(&view_at(sleeping, 100)), UserOp::Syscall(..)));
        // Target now running: wake observed, emitted with the time.
        let running = pack_proc_stat(0, 0, 0, 5);
        let op = p.next_op(&view_at(running, 1_000));
        assert_eq!(op, UserOp::Emit(WAKE_TAG.into(), "1000".into()));
        // Running again: no new wake.
        assert!(matches!(p.next_op(&view_at(running, 2_000)), UserOp::Syscall(..)));
        // Sleep, then run: second wake; prober then exits (max_wakes = 2).
        assert!(matches!(p.next_op(&view_at(sleeping, 3_000)), UserOp::Syscall(..)));
        assert!(matches!(p.next_op(&view_at(running, 4_000)), UserOp::Emit(..)));
        assert_eq!(p.next_op(&view_at(running, 5_000)), UserOp::Exit(0));
    }

    #[test]
    fn interval_statistics() {
        let wakes = [0u64, 1_000_000_000, 2_000_400_000, 3_000_000_000];
        let est = IntervalEstimate::from_wakes(&wakes).unwrap();
        assert_eq!(est.samples, 3);
        assert!((est.mean_s - 1.0).abs() < 0.01);
        assert!(est.min_s <= 1.0 && est.max_s >= 1.0);
        assert!(est.sd_s < 0.01);
        assert!(IntervalEstimate::from_wakes(&[5]).is_none());
    }
}
