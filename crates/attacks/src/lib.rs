//! # hypertap-attacks — rootkits, exploits and attack strategies
//!
//! The offensive side of the evaluation:
//!
//! * [`rootkits`] — the ten real-world rootkits of the paper's Table II,
//!   modelled by their hiding technique (DKOM task-list unlinking, syscall
//!   hijacking, kmem patching);
//! * [`exploit`] — the privilege-escalation attack program (standing in for
//!   CVE-2010-3847 / CVE-2013-1763 exploitation) with configurable timing:
//!   transient, rootkit-combined, and spam-assisted variants;
//! * [`side_channel`] — the `/proc`-based prober that measures a passive
//!   monitor's checking interval (Table III; the paper's reference 37).
//!
//! These are *models for defensive evaluation inside a simulator*: every
//! "attack" manipulates only the simulated guest's in-memory structures.

pub mod exploit;
pub mod rootkits;
pub mod side_channel;

/// Glob import of the attack toolbox.
pub mod prelude {
    pub use crate::exploit::{AttackConfig, AttackProgram, ATTACK_DONE_TAG};
    pub use crate::rootkits::{all_rootkits, rootkit_by_name};
    pub use crate::side_channel::{IntervalEstimate, SideChannelProber, WAKE_TAG};
}

pub use prelude::*;
